//! # siro-analysis — the static-analysis client substrate
//!
//! The paper evaluates Siro by feeding translated IR to an existing
//! value-flow bug detector (Pinpoint, §6.3). This crate is that detector's
//! reproduction:
//!
//! * [`mod@cfg`] / [`dom`] — control-flow graphs and dominator trees (also two
//!   of the "representative built-in analyses" tracked by the §6.1 study);
//! * [`taint`] — sparse SSA value-flow closures (deliberately opaque
//!   through memory, which is what makes differently-shaped IR of the same
//!   program yield overlapping-but-distinct reports);
//! * [`detect`] — the NPD / UAF / FDL / ML detectors of Tab. 4;
//! * [`report`] — bug traces and the new/miss/shared diffing methodology;
//! * [`callgraph`] — type-based indirect-call resolution (the function
//!   pointer analysis the kernel client builds on).

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod detect;
pub mod dom;
pub mod report;
pub mod taint;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use detect::analyze_module;
pub use dom::DomTree;
pub use report::{BugKind, BugReport, ReportDiff, TraceStep};
pub use taint::FlowSet;
