//! The Pinpoint-style value-flow bug detectors (§6.3 of the paper): NPD,
//! UAF, FDL, and ML, implemented over the sparse value-flow closure of
//! [`crate::taint`] with CFG-reachability ordering and dominance-based
//! null-check suppression.

use siro_ir::{BlockId, Function, InstId, Module, Opcode, ValueRef};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::report::{BugKind, BugReport, TraceStep};
use crate::taint::{calls_to, null_seeds, FlowSet};

/// Runs all four detectors over every function of `module`.
pub fn analyze_module(module: &Module) -> Vec<BugReport> {
    let mut out = Vec::new();
    for fid in module.func_ids() {
        let func = module.func(fid);
        if func.is_external {
            continue;
        }
        let cfg = Cfg::build(func);
        let dom = DomTree::build(&cfg);
        let ctx = FnCtx {
            module,
            func,
            cfg,
            dom,
        };
        detect_npd(&ctx, &mut out);
        detect_uaf(&ctx, &mut out);
        detect_fdl(&ctx, &mut out);
        detect_ml(&ctx, &mut out);
    }
    out
}

struct FnCtx<'a> {
    module: &'a Module,
    func: &'a Function,
    cfg: Cfg,
    dom: DomTree,
}

impl FnCtx<'_> {
    /// The live instructions, in block order (the arena may hold orphans
    /// left behind by transformations such as `siro-opt`).
    fn live_insts(&self) -> Vec<InstId> {
        self.func
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .collect()
    }

    /// The `(block, position)` of an instruction.
    fn position(&self, inst: InstId) -> Option<(BlockId, usize)> {
        for b in self.func.block_ids() {
            if let Some(pos) = self.func.block(b).insts.iter().position(|&i| i == inst) {
                return Some((b, pos));
            }
        }
        None
    }

    /// The stable source-location label of an instruction (its name, which
    /// the workload frontends use like debug line info).
    fn label(&self, inst: InstId) -> String {
        if let Some(name) = &self.func.inst(inst).name {
            return name.clone();
        }
        match self.position(inst) {
            Some((b, pos)) => format!("{}:{}", self.func.block(b).name, pos),
            None => format!("inst{}", inst.raw()),
        }
    }

    fn step(&self, inst: InstId, desc: &str) -> TraceStep {
        TraceStep {
            func: self.func.name.clone(),
            label: self.label(inst),
            desc: desc.to_string(),
        }
    }

    /// Whether `a` comes before `b` in some execution (same block earlier,
    /// or `b`'s block reachable from `a`'s block).
    fn may_precede(&self, a: InstId, b: InstId) -> bool {
        let (Some((ba, pa)), Some((bb, pb))) = (self.position(a), self.position(b)) else {
            return false;
        };
        if ba == bb {
            return pa < pb;
        }
        self.cfg.reachable(ba, bb)
    }
}

/// Null-pointer dereference: a null constant flows (through SSA) into the
/// pointer operand of a load/store that no null-check dominates.
fn detect_npd(ctx: &FnCtx<'_>, out: &mut Vec<BugReport>) {
    let seeds = null_seeds(ctx.func);
    if seeds.is_empty() {
        return;
    }
    let flow = FlowSet::forward(ctx.func, seeds.iter().copied());
    // Dominating null-checks: icmp of a tainted value against null.
    let checks: Vec<InstId> = ctx
        .live_insts()
        .into_iter()
        .filter(|&i| {
            let inst = ctx.func.inst(i);
            inst.opcode == Opcode::ICmp
                && inst.operands.iter().any(|&v| flow.contains(v))
                && inst.operands.iter().any(|v| matches!(v, ValueRef::Null(_)))
        })
        .collect();
    for sink in ctx.live_insts() {
        let inst = ctx.func.inst(sink);
        let ptr = match inst.opcode {
            Opcode::Load => inst.operands[0],
            Opcode::Store => inst.operands[1],
            _ => continue,
        };
        if !flow.contains(ptr) {
            continue;
        }
        // Suppress if any null-check dominates the sink.
        let guarded = checks
            .iter()
            .any(|&chk| match (ctx.position(chk), ctx.position(sink)) {
                (Some((cb, cp)), Some((sb, sp))) => {
                    (cb == sb && cp < sp) || (cb != sb && ctx.dom.dominates(cb, sb))
                }
                _ => false,
            });
        if guarded {
            continue;
        }
        out.push(BugReport {
            kind: BugKind::Npd,
            steps: vec![ctx.step(sink, "null pointer dereferenced")],
        });
    }
}

/// Use after free: the freed pointer (or a value flowing from it) is used
/// by an instruction that may execute after the `free`.
fn detect_uaf(ctx: &FnCtx<'_>, out: &mut Vec<BugReport>) {
    for (free_id, free_inst) in calls_to(ctx.module, ctx.func, "free") {
        let Some(&ptr) = free_inst.call_args().first() else {
            continue;
        };
        let flow = FlowSet::forward(ctx.func, [ptr]);
        for sink in ctx.live_insts() {
            let inst = ctx.func.inst(sink);
            if sink == free_id {
                continue;
            }
            let uses_freed = match inst.opcode {
                Opcode::Load => flow.contains(inst.operands[0]),
                Opcode::Store => flow.contains(inst.operands[1]),
                Opcode::Call => {
                    // Passing a freed pointer onward (except to free, which
                    // is a double free — out of scope for Tab. 4).
                    let to_free = matches!(inst.callee(), Some(ValueRef::Func(f))
                        if ctx.module.func(f).name == "free");
                    !to_free && inst.call_args().iter().any(|&a| flow.contains(a))
                }
                _ => false,
            };
            if uses_freed && ctx.may_precede(free_id, sink) {
                out.push(BugReport {
                    kind: BugKind::Uaf,
                    steps: vec![
                        ctx.step(free_id, "pointer freed here"),
                        ctx.step(sink, "freed pointer used"),
                    ],
                });
            }
        }
    }
}

/// File-descriptor leak: an `open` whose descriptor never reaches a
/// `close`.
fn detect_fdl(ctx: &FnCtx<'_>, out: &mut Vec<BugReport>) {
    let closes = calls_to(ctx.module, ctx.func, "close");
    for (open_id, _) in calls_to(ctx.module, ctx.func, "open") {
        let flow = FlowSet::forward(ctx.func, [ValueRef::Inst(open_id)]);
        let closed = closes
            .iter()
            .any(|(_, c)| c.call_args().iter().any(|&a| flow.contains(a)));
        if !closed {
            out.push(BugReport {
                kind: BugKind::Fdl,
                steps: vec![ctx.step(open_id, "descriptor opened but never closed")],
            });
        }
    }
}

/// Memory leak: a `malloc` result that is never freed and does not escape
/// (returned, stored to a global, or passed to another function).
fn detect_ml(ctx: &FnCtx<'_>, out: &mut Vec<BugReport>) {
    let mut allocs = calls_to(ctx.module, ctx.func, "malloc");
    allocs.extend(calls_to(ctx.module, ctx.func, "calloc"));
    for (alloc_id, _) in allocs {
        let flow = FlowSet::forward(ctx.func, [ValueRef::Inst(alloc_id)]);
        let mut freed = false;
        let mut escapes = false;
        for inst in ctx.live_insts().into_iter().map(|i| ctx.func.inst(i)) {
            match inst.opcode {
                Opcode::Call => {
                    let callee_name = match inst.callee() {
                        Some(ValueRef::Func(f)) => ctx.module.func(f).name.clone(),
                        _ => String::new(),
                    };
                    let touches = inst.call_args().iter().any(|&a| flow.contains(a));
                    if touches {
                        if callee_name == "free" {
                            freed = true;
                        } else {
                            escapes = true;
                        }
                    }
                }
                Opcode::Ret
                    if inst.operands.iter().any(|&v| flow.contains(v)) => {
                        escapes = true;
                    }
                Opcode::Store
                    // Storing the pointer into a *global* publishes it;
                    // storing into a local slot loses it (the value-flow
                    // opacity driving the Tab. 4 miss column).
                    if flow.contains(inst.operands[0])
                        && matches!(inst.operands[1], ValueRef::Global(_))
                    => {
                        escapes = true;
                    }
                _ => {}
            }
        }
        if !freed && !escapes {
            out.push(BugReport {
                kind: BugKind::Ml,
                steps: vec![ctx.step(alloc_id, "allocation never freed")],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, FuncId, Function as IrFunction, IntPredicate, IrVersion, Param};

    struct Externs {
        malloc: FuncId,
        free: FuncId,
        open: FuncId,
        close: FuncId,
    }

    fn module_with_externs() -> (Module, Externs) {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let void = m.types.void();
        let malloc = m.add_func(IrFunction::external(
            "malloc",
            p8,
            vec![Param {
                name: "n".into(),
                ty: i64t,
            }],
        ));
        let free = m.add_func(IrFunction::external(
            "free",
            void,
            vec![Param {
                name: "p".into(),
                ty: p8,
            }],
        ));
        let open = m.add_func(IrFunction::external("open", i32t, vec![]));
        let close = m.add_func(IrFunction::external(
            "close",
            void,
            vec![Param {
                name: "fd".into(),
                ty: i32t,
            }],
        ));
        (
            m,
            Externs {
                malloc,
                free,
                open,
                close,
            },
        )
    }

    fn kinds(reports: &[BugReport]) -> Vec<BugKind> {
        reports.iter().map(|r| r.kind).collect()
    }

    #[test]
    fn npd_reported_and_check_suppresses() {
        let (mut m, _) = module_with_externs();
        let i32t = m.types.i32();
        let p32 = m.types.ptr(i32t);
        // Unchecked deref.
        let f = FuncBuilder::define(&mut m, "bad", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.load(i32t, ValueRef::Null(p32));
        b.ret(Some(v));
        // Checked deref.
        let g = FuncBuilder::define(
            &mut m,
            "good",
            i32t,
            vec![Param {
                name: "p".into(),
                ty: p32,
            }],
        );
        let mut b = FuncBuilder::new(&mut m, g);
        let e = b.add_block("entry");
        let ok = b.add_block("ok");
        let bail = b.add_block("bail");
        b.position_at_end(e);
        let c = b.icmp(IntPredicate::Eq, ValueRef::Null(p32), ValueRef::Arg(0));
        b.cond_br(c, bail, ok);
        b.position_at_end(ok);
        let v = b.load(i32t, ValueRef::Null(p32)); // contrived but dominated by the check
        b.ret(Some(v));
        b.position_at_end(bail);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let reports = analyze_module(&m);
        assert_eq!(kinds(&reports), vec![BugKind::Npd]);
        assert_eq!(reports[0].sink().func, "bad");
    }

    #[test]
    fn uaf_requires_order() {
        let (mut m, ex) = module_with_externs();
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let void = m.types.void();
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.call(
            p8,
            ValueRef::Func(ex.malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        // Use before free: fine.
        b.load(i8t, p);
        b.call(void, ValueRef::Func(ex.free), vec![p]);
        // Use after free: bug.
        b.load(i8t, p);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let reports = analyze_module(&m);
        let uafs: Vec<_> = reports.iter().filter(|r| r.kind == BugKind::Uaf).collect();
        assert_eq!(uafs.len(), 1);
        assert_eq!(uafs[0].steps.len(), 2);
    }

    #[test]
    fn fdl_only_without_close() {
        let (mut m, ex) = module_with_externs();
        let i32t = m.types.i32();
        let void = m.types.void();
        let f = FuncBuilder::define(&mut m, "leaky", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.call(i32t, ValueRef::Func(ex.open), vec![]);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let g = FuncBuilder::define(&mut m, "fine", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, g);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let fd = b.call(i32t, ValueRef::Func(ex.open), vec![]);
        b.call(void, ValueRef::Func(ex.close), vec![fd]);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let reports = analyze_module(&m);
        let fdls: Vec<_> = reports.iter().filter(|r| r.kind == BugKind::Fdl).collect();
        assert_eq!(fdls.len(), 1);
        assert_eq!(fdls[0].sink().func, "leaky");
    }

    #[test]
    fn ml_respects_free_and_escape() {
        let (mut m, ex) = module_with_externs();
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let void = m.types.void();
        // Leak.
        let f = FuncBuilder::define(&mut m, "leak", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.call(
            p8,
            ValueRef::Func(ex.malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        // Freed: fine.
        let g = FuncBuilder::define(&mut m, "freed", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, g);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.call(
            p8,
            ValueRef::Func(ex.malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        b.call(void, ValueRef::Func(ex.free), vec![p]);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        // Escapes via return: fine.
        let h = FuncBuilder::define(&mut m, "escapes", p8, vec![]);
        let mut b = FuncBuilder::new(&mut m, h);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.call(
            p8,
            ValueRef::Func(ex.malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        b.ret(Some(p));
        let reports = analyze_module(&m);
        let mls: Vec<_> = reports.iter().filter(|r| r.kind == BugKind::Ml).collect();
        assert_eq!(mls.len(), 1);
        assert_eq!(mls[0].sink().func, "leak");
        let _ = i8t;
    }

    #[test]
    fn memory_opacity_hides_indirect_flows() {
        // The mechanism behind Tab. 4's `miss` column: free through a
        // reloaded slot is not connected to the allocation.
        let (mut m, ex) = module_with_externs();
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let pp8 = m.types.ptr(p8);
        let void = m.types.void();
        let f = FuncBuilder::define(&mut m, "slotty", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.call(
            p8,
            ValueRef::Func(ex.malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        let slot = b.alloca(p8);
        b.store(p, slot);
        let q = b.load(p8, slot);
        b.call(void, ValueRef::Func(ex.free), vec![q]);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let reports = analyze_module(&m);
        // The analyzer cannot connect q to p, so it reports a leak.
        assert!(reports.iter().any(|r| r.kind == BugKind::Ml));
        let _ = pp8;
    }
}
