//! Sparse value-flow closure over SSA values — the core of the
//! Pinpoint-style detectors.
//!
//! The closure follows *value-preserving* instructions (`phi`, `select`,
//! casts, `getelementptr`, `freeze`) and deliberately does **not** track
//! flow through memory (`store`/`load`): that opacity is exactly what makes
//! analyses report different bugs on differently-shaped IR of the same
//! program (the new/miss dynamics of Tab. 4).

use std::collections::HashSet;

use siro_ir::{Function, InstId, Opcode, ValueRef};

/// Opcodes that forward their operand value to their result.
pub fn is_value_preserving(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Phi
            | Opcode::Select
            | Opcode::BitCast
            | Opcode::AddrSpaceCast
            | Opcode::GetElementPtr
            | Opcode::Freeze
            | Opcode::PtrToInt
            | Opcode::IntToPtr
    )
}

/// The forward value-flow closure of a seed set inside one function.
#[derive(Debug, Clone)]
pub struct FlowSet {
    values: HashSet<ValueRef>,
}

impl FlowSet {
    /// Computes the closure of `seeds` in `func`.
    pub fn forward(func: &Function, seeds: impl IntoIterator<Item = ValueRef>) -> Self {
        let mut values: HashSet<ValueRef> = seeds.into_iter().collect();
        let live: Vec<InstId> = func
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &iid in &live {
                let inst = func.inst(iid);
                let out = ValueRef::Inst(iid);
                if values.contains(&out) || !is_value_preserving(inst.opcode) {
                    continue;
                }
                // `select` forwards only its data operands, not the
                // condition; `phi` skips the incoming block labels.
                let data_operands: Vec<ValueRef> = match inst.opcode {
                    Opcode::Select => inst.operands[1..].to_vec(),
                    Opcode::Phi => inst.phi_incoming().into_iter().map(|(v, _)| v).collect(),
                    Opcode::GetElementPtr => vec![inst.operands[0]],
                    _ => inst.operands.to_vec(),
                };
                if data_operands.iter().any(|v| values.contains(v)) {
                    values.insert(out);
                    changed = true;
                }
            }
        }
        FlowSet { values }
    }

    /// Whether `v` is in the closure.
    pub fn contains(&self, v: ValueRef) -> bool {
        self.values.contains(&v)
    }

    /// Number of values in the closure.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the closure is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the closure.
    pub fn iter(&self) -> impl Iterator<Item = &ValueRef> {
        self.values.iter()
    }
}

/// All `Null` constants appearing as operands anywhere in `func`.
pub fn null_seeds(func: &Function) -> Vec<ValueRef> {
    let mut out = Vec::new();
    for block in &func.blocks {
        for inst in block.insts.iter().map(|&i| func.inst(i)) {
            for &op in &inst.operands {
                if matches!(op, ValueRef::Null(_)) && !out.contains(&op) {
                    out.push(op);
                }
            }
        }
    }
    out
}

/// Instruction indices of direct calls to the named external function.
pub fn calls_to<'f>(
    module: &siro_ir::Module,
    func: &'f Function,
    callee_name: &str,
) -> Vec<(InstId, &'f siro_ir::Instruction)> {
    let mut out = Vec::new();
    for block in &func.blocks {
        for &iid in &block.insts {
            let inst = func.inst(iid);
            if inst.opcode != Opcode::Call {
                continue;
            }
            if let Some(ValueRef::Func(f)) = inst.callee() {
                if module.func(f).name == callee_name {
                    out.push((iid, inst));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, IrVersion, Module};

    #[test]
    fn closure_follows_casts_and_gep_but_not_memory() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let p32 = m.types.ptr(i32t);
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let null = ValueRef::Null(p32);
        let g = b.gep(i32t, null, vec![ValueRef::const_int(i64t, 1)], p32);
        let slot = b.alloca(p32);
        b.store(g, slot);
        let reloaded = b.load(p32, slot);
        let v = b.load(i32t, g);
        b.ret(Some(v));
        let func = m.func(f);
        let flow = FlowSet::forward(func, null_seeds(func));
        assert!(flow.contains(null));
        assert!(flow.contains(g), "gep forwards the base");
        assert!(!flow.contains(reloaded), "memory is opaque");
    }

    #[test]
    fn phi_and_select_forward_data_only() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let p32 = m.types.ptr(i32t);
        let i1 = m.types.i1();
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let null = ValueRef::Null(p32);
        let other = b.alloca(i32t);
        let cond = ValueRef::const_int(i1, 1);
        let sel = b.select(cond, null, other);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let func = m.func(f);
        let flow = FlowSet::forward(func, [null]);
        assert!(flow.contains(sel));
        // The condition does not become tainted by being an operand.
        let flow2 = FlowSet::forward(func, [cond]);
        assert!(!flow2.contains(sel));
    }

    #[test]
    fn calls_to_finds_externals() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let i64t = m.types.i64();
        let malloc = m.add_func(siro_ir::Function::external(
            "malloc",
            p8,
            vec![siro_ir::Param {
                name: "n".into(),
                ty: i64t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.call(
            p8,
            ValueRef::Func(malloc),
            vec![ValueRef::const_int(i64t, 8)],
        );
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let func = m.func(f);
        assert_eq!(calls_to(&m, func, "malloc").len(), 1);
        assert_eq!(calls_to(&m, func, "free").len(), 0);
    }
}
