//! Call graphs with type-based indirect-call resolution — the
//! "function pointer analysis" substrate the paper's kernel bug detector
//! builds on (its reference \[67\] is MLTA-style indirect-call refinement).

use std::collections::{BTreeSet, HashMap};

use siro_ir::{FuncId, Module, Opcode, Type, TypeId, ValueRef};

/// The call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct and (resolved) indirect callees per function.
    edges: HashMap<FuncId, BTreeSet<FuncId>>,
    /// Address-taken functions (candidates for indirect calls).
    address_taken: BTreeSet<FuncId>,
}

impl CallGraph {
    /// Builds the call graph: direct edges from `call`/`invoke`/`callbr`
    /// callees; indirect call sites resolve to every address-taken function
    /// with a matching signature (ret type + arity).
    pub fn build(module: &Module) -> Self {
        let mut address_taken = BTreeSet::new();
        for f in module.func_ids() {
            let func = module.func(f);
            for inst in &func.insts {
                // A function used anywhere except as a direct callee is
                // address-taken.
                for (i, op) in inst.operands.iter().enumerate() {
                    if let ValueRef::Func(g) = op {
                        let is_direct_callee = i == 0
                            && matches!(
                                inst.opcode,
                                Opcode::Call | Opcode::Invoke | Opcode::CallBr
                            );
                        if !is_direct_callee {
                            address_taken.insert(*g);
                        }
                    }
                }
            }
        }
        let mut edges: HashMap<FuncId, BTreeSet<FuncId>> = HashMap::new();
        for f in module.func_ids() {
            let func = module.func(f);
            let entry = edges.entry(f).or_default();
            for inst in &func.insts {
                if !matches!(inst.opcode, Opcode::Call | Opcode::Invoke | Opcode::CallBr) {
                    continue;
                }
                match inst.callee() {
                    Some(ValueRef::Func(g)) => {
                        entry.insert(g);
                    }
                    Some(ValueRef::InlineAsm(_)) | None => {}
                    Some(_) => {
                        // Indirect: resolve by type signature.
                        let argc = inst.call_args().len();
                        for g in &address_taken {
                            let callee = module.func(*g);
                            if callee.params.len() == argc
                                && same_type_shape(module, callee.ret_ty, inst.ty)
                            {
                                entry.insert(*g);
                            }
                        }
                    }
                }
            }
        }
        CallGraph {
            edges,
            address_taken,
        }
    }

    /// Callees of `f`.
    pub fn callees(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.edges.get(&f).into_iter().flatten().copied()
    }

    /// Whether `f` is address-taken.
    pub fn is_address_taken(&self, f: FuncId) -> bool {
        self.address_taken.contains(&f)
    }

    /// Functions transitively reachable from `root` (including it).
    pub fn reachable_from(&self, root: FuncId) -> BTreeSet<FuncId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                stack.extend(self.callees(f));
            }
        }
        seen
    }
}

/// Structural type comparison good enough for signature matching (both type
/// ids live in the same module table here, so id equality would suffice;
/// kept structural for robustness across merged modules).
fn same_type_shape(module: &Module, a: TypeId, b: TypeId) -> bool {
    if a == b {
        return true;
    }
    matches!(
        (module.types.get(a), module.types.get(b)),
        (Type::Int(x), Type::Int(y)) if x == y
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, IrVersion};

    #[test]
    fn direct_and_indirect_edges() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        // Two candidate targets with the same signature.
        let t1 = FuncBuilder::define(&mut m, "t1", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, t1);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        let t2 = FuncBuilder::define(&mut m, "t2", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, t2);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 2)));
        // Caller stores t1 (address-taken) and calls through a pointer.
        let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, main);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let fnty = b.module().types.func(i32t, vec![]);
        let pfn = b.module().types.ptr(fnty);
        let slot = b.alloca(pfn);
        b.store(ValueRef::Func(t1), slot);
        let fp = b.load(pfn, slot);
        let r1 = b.call(i32t, fp, vec![]);
        let r2 = b.call(i32t, ValueRef::Func(t2), vec![]);
        let s = b.add(r1, r2);
        b.ret(Some(s));
        let cg = CallGraph::build(&m);
        assert!(cg.is_address_taken(t1));
        assert!(!cg.is_address_taken(t2));
        let callees: Vec<FuncId> = cg.callees(main).collect();
        // Direct edge to t2 and type-resolved indirect edge to t1.
        assert!(callees.contains(&t1));
        assert!(callees.contains(&t2));
        let reach = cg.reachable_from(main);
        assert!(reach.contains(&t1) && reach.contains(&t2) && reach.contains(&main));
    }
}
