//! Control-flow graphs over IR functions.

use std::collections::VecDeque;

use siro_ir::{BlockId, Function};

/// Predecessor/successor structure of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block (by index).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block (by index).
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `func` from its terminators.
    pub fn build(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in func.block_ids() {
            if let Some(term) = func.terminator(b) {
                for s in term.successors() {
                    succs[b.index()].push(s);
                    preds[s.index()].push(b);
                }
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse post-order from the entry.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::new(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succ = self.successors(b);
            if *i < succ.len() {
                let s = succ[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Whether `to` is reachable from `from` (following successor edges;
    /// `from` reaches itself).
    pub fn reachable(&self, from: BlockId, to: BlockId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        seen[from.index()] = true;
        q.push_back(from);
        while let Some(b) = q.pop_front() {
            for &s in self.successors(b) {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    q.push_back(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, IntPredicate, IrVersion, Module, ValueRef};

    fn diamond() -> (Module, siro_ir::FuncId) {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        let x = b.add_block("exit");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.br(x);
        b.position_at_end(el);
        b.br(x);
        b.position_at_end(x);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        (m, f)
    }

    #[test]
    fn diamond_edges() {
        let (m, f) = diamond();
        let cfg = Cfg::build(m.func(f));
        assert_eq!(
            cfg.successors(BlockId::new(0)),
            &[BlockId::new(1), BlockId::new(2)]
        );
        assert_eq!(
            cfg.predecessors(BlockId::new(3)),
            &[BlockId::new(1), BlockId::new(2)]
        );
        assert!(cfg.successors(BlockId::new(3)).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (m, f) = diamond();
        let cfg = Cfg::build(m.func(f));
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId::new(0));
        assert_eq!(*rpo.last().unwrap(), BlockId::new(3));
    }

    #[test]
    fn reachability() {
        let (m, f) = diamond();
        let cfg = Cfg::build(m.func(f));
        assert!(cfg.reachable(BlockId::new(0), BlockId::new(3)));
        assert!(cfg.reachable(BlockId::new(1), BlockId::new(3)));
        assert!(!cfg.reachable(BlockId::new(1), BlockId::new(2)));
        assert!(cfg.reachable(BlockId::new(2), BlockId::new(2)));
    }
}
