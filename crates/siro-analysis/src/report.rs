//! Bug reports and the report-diffing used by the Tab. 4 methodology: two
//! reports denote the same bug when every step matches by function,
//! source-location label, and description.

use std::collections::BTreeSet;
use std::fmt;

/// The four bug classes of Tab. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugKind {
    /// Null pointer dereference.
    Npd,
    /// Use after free.
    Uaf,
    /// File-descriptor leak.
    Fdl,
    /// Memory leak.
    Ml,
}

impl BugKind {
    /// All kinds, in Tab. 4 column order.
    pub const ALL: [BugKind; 4] = [BugKind::Npd, BugKind::Uaf, BugKind::Fdl, BugKind::Ml];

    /// The short name used in the paper's table.
    pub const fn short_name(self) -> &'static str {
        match self {
            BugKind::Npd => "NPD",
            BugKind::Uaf => "UAF",
            BugKind::Fdl => "FDL",
            BugKind::Ml => "ML",
        }
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One step of a bug trace (source, intermediate flows, sink).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceStep {
    /// Enclosing function.
    pub func: String,
    /// Source-location label (instruction name; survives compilation and
    /// translation like debug line info).
    pub label: String,
    /// Human-readable description.
    pub desc: String,
}

/// A reported bug.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BugReport {
    /// Bug class.
    pub kind: BugKind,
    /// The trace from source to sink.
    pub steps: Vec<TraceStep>,
}

impl BugReport {
    /// The identity used for cross-setting comparison: the full trace.
    pub fn key(&self) -> (BugKind, Vec<(String, String, String)>) {
        (
            self.kind,
            self.steps
                .iter()
                .map(|s| (s.func.clone(), s.label.clone(), s.desc.clone()))
                .collect(),
        )
    }

    /// The sink step (last trace entry).
    pub fn sink(&self) -> &TraceStep {
        self.steps.last().expect("report without steps")
    }
}

/// The outcome of comparing reports from two settings (paper columns of
/// Tab. 4): `new` are only in the *translating* setting, `missing` only in
/// the *compiling* setting, `shared` in both.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// Reported only by the translating setting.
    pub new: Vec<BugReport>,
    /// Reported only by the compiling setting.
    pub missing: Vec<BugReport>,
    /// Reported by both.
    pub shared: Vec<BugReport>,
}

impl ReportDiff {
    /// Diffs `translating` against `compiling`.
    pub fn compare(translating: &[BugReport], compiling: &[BugReport]) -> Self {
        let tk: BTreeSet<_> = translating.iter().map(BugReport::key).collect();
        let ck: BTreeSet<_> = compiling.iter().map(BugReport::key).collect();
        let mut diff = ReportDiff::default();
        for r in translating {
            if ck.contains(&r.key()) {
                diff.shared.push(r.clone());
            } else {
                diff.new.push(r.clone());
            }
        }
        for r in compiling {
            if !tk.contains(&r.key()) {
                diff.missing.push(r.clone());
            }
        }
        diff
    }

    /// `(new, missing, shared)` counts restricted to one bug kind.
    pub fn counts_for(&self, kind: BugKind) -> (usize, usize, usize) {
        let count = |v: &[BugReport]| v.iter().filter(|r| r.kind == kind).count();
        (count(&self.new), count(&self.missing), count(&self.shared))
    }

    /// The overlap accuracy the paper reports: `shared / (shared + new)`
    /// over all kinds, i.e. how many of the translating setting's reports
    /// the compiling setting confirms.
    pub fn overlap_ratio(&self) -> f64 {
        let s = self.shared.len() as f64;
        let n = self.new.len() as f64;
        if s + n == 0.0 {
            1.0
        } else {
            s / (s + n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: BugKind, func: &str, label: &str) -> BugReport {
        BugReport {
            kind,
            steps: vec![TraceStep {
                func: func.into(),
                label: label.into(),
                desc: "sink".into(),
            }],
        }
    }

    #[test]
    fn diff_classifies_new_missing_shared() {
        let translating = vec![
            report(BugKind::Npd, "f", "l1"),
            report(BugKind::Npd, "f", "l2"),
            report(BugKind::Ml, "g", "l3"),
        ];
        let compiling = vec![
            report(BugKind::Npd, "f", "l1"),
            report(BugKind::Uaf, "h", "l9"),
        ];
        let d = ReportDiff::compare(&translating, &compiling);
        assert_eq!(d.shared.len(), 1);
        assert_eq!(d.new.len(), 2);
        assert_eq!(d.missing.len(), 1);
        assert_eq!(d.counts_for(BugKind::Npd), (1, 0, 1));
        assert_eq!(d.counts_for(BugKind::Uaf), (0, 1, 0));
        assert_eq!(d.counts_for(BugKind::Ml), (1, 0, 0));
    }

    #[test]
    fn traces_must_match_fully() {
        let mut a = report(BugKind::Npd, "f", "l1");
        a.steps.insert(
            0,
            TraceStep {
                func: "f".into(),
                label: "src".into(),
                desc: "null born here".into(),
            },
        );
        let b = report(BugKind::Npd, "f", "l1");
        let d = ReportDiff::compare(&[a], &[b]);
        assert!(d.shared.is_empty());
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.missing.len(), 1);
    }

    #[test]
    fn overlap_ratio() {
        let t = vec![
            report(BugKind::Npd, "f", "a"),
            report(BugKind::Npd, "f", "b"),
        ];
        let c = vec![report(BugKind::Npd, "f", "a")];
        let d = ReportDiff::compare(&t, &c);
        assert!((d.overlap_ratio() - 0.5).abs() < 1e-9);
    }
}
