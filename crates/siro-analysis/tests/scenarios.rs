//! Detector scenarios over realistic multi-function modules, plus the
//! analyzer-on-translated-IR invariant that underpins the whole paper.

use siro_analysis::{analyze_module, BugKind, CallGraph};
use siro_core::{ReferenceTranslator, Skeleton};
use siro_ir::IrVersion;

#[test]
fn analyzer_reports_are_stable_under_translation() {
    // The central promise: running the analyzer on translated IR yields
    // the same reports as on the original, for every workload project.
    let skel = Skeleton::new(IrVersion::V3_6);
    for spec in siro_workloads::table4_projects() {
        let m = siro_workloads::compile_project(
            &spec,
            siro_workloads::Frontend::High,
            IrVersion::V12_0,
        );
        let before = analyze_module(&m);
        let t = skel.translate_module(&m, &ReferenceTranslator).unwrap();
        let after = analyze_module(&t);
        let key = |r: &siro_analysis::BugReport| r.key();
        let mut a: Vec<_> = before.iter().map(key).collect();
        let mut b: Vec<_> = after.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{}", spec.name);
    }
}

#[test]
fn per_kind_totals_follow_the_census() {
    // Independent of the diff methodology: the absolute report counts on
    // each setting follow the generator's plan.
    let spec = siro_workloads::table4_projects()
        .into_iter()
        .find(|p| p.name == "tmux")
        .unwrap();
    let low =
        siro_workloads::compile_project(&spec, siro_workloads::Frontend::Low, IrVersion::V3_6);
    let reports = analyze_module(&low);
    let count = |k: BugKind| reports.iter().filter(|r| r.kind == k).count();
    // Low setting sees shared + miss instances.
    assert_eq!(count(BugKind::Npd), 85); // 85 shared (new invisible in low)
    assert_eq!(count(BugKind::Uaf), 14 + 3);
    assert_eq!(count(BugKind::Ml), 105 + 5);
    let high =
        siro_workloads::compile_project(&spec, siro_workloads::Frontend::High, IrVersion::V12_0);
    let reports = analyze_module(&high);
    let count = |k: BugKind| reports.iter().filter(|r| r.kind == k).count();
    // High setting sees shared + new instances.
    assert_eq!(count(BugKind::Npd), 85 + 2);
    assert_eq!(count(BugKind::Uaf), 14);
    assert_eq!(count(BugKind::Ml), 105 + 9);
}

#[test]
fn callgraph_scales_to_kernel_modules() {
    let build = &siro_kernel::kernel_builds()[0];
    let m = siro_kernel::build_kernel(build);
    let cg = CallGraph::build(&m);
    // Every defined driver function calls at least one external.
    let mut with_callees = 0;
    for f in m.func_ids() {
        if m.func(f).is_external {
            continue;
        }
        if cg.callees(f).next().is_some() {
            with_callees += 1;
        }
    }
    assert!(with_callees > 100, "only {with_callees} callers");
}

#[test]
fn benign_filler_produces_no_reports() {
    // A plan with zero bugs must analyze clean in both settings.
    let spec = siro_workloads::table4_projects()
        .into_iter()
        .find(|p| p.name == "pbzip")
        .unwrap();
    for fe in [
        siro_workloads::Frontend::Low,
        siro_workloads::Frontend::High,
    ] {
        let m = siro_workloads::compile_project(&spec, fe, IrVersion::V12_0);
        let reports = analyze_module(&m);
        assert!(reports.is_empty(), "{fe:?}: {reports:?}");
    }
}
