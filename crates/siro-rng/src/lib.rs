//! # siro-rng — a dependency-free deterministic PRNG
//!
//! The evaluation harness only needs *reproducible* pseudo-randomness: the
//! same seed must always produce the same project corpus, PoC bytes, and
//! generated test programs. This crate provides that with a SplitMix64
//! generator behind an API surface shaped like the parts of `rand` the
//! workspace uses ([`rngs::StdRng`], [`Rng::gen_range`], [`SeedableRng`],
//! [`seq::SliceRandom`]), so the corpus builders stay idiomatic while the
//! workspace builds with no registry dependencies.
//!
//! The stream is *not* cryptographic and does not match `rand`'s `StdRng`
//! bit-for-bit; every consumer in this workspace derives its expectations
//! from the generated artifacts themselves (interpreter-computed oracles,
//! planted-bug censuses), so only self-consistency matters.

#![warn(missing_docs)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps a random word into `lo..hi` (which must be non-empty).
    fn from_word(word: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_word(word: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128) - (lo as i128);
                assert!(span > 0, "gen_range called with an empty range");
                ((lo as i128) + (word as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::from_word(self.next_u64(), range.start, range.end)
    }

    /// A uniformly random boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0..0x80u8);
            assert!(u < 0x80);
            let w = rng.gen_range(3..4usize);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
