//! The profilers of §4.3.1 and the profile table of Def. 4.3.
//!
//! Three profilers run over each test case:
//!
//! * the **location profiler** assigns each instruction a unique location
//!   (its index in the skeleton's deterministic traversal order);
//! * the **kind profiler** records the instruction's opcode;
//! * the **sub-kind profiler** evaluates every predicate getter of that
//!   kind, recording the conjunction σ& of their runtime values.

use siro_api::{ApiRegistry, ApiResult, PredConj, TranslationCtx};
use siro_ir::{BlockId, FuncId, InstId, Module, Opcode};

/// One row of the profile table: `l -> (k, σ&)` plus the coordinates needed
/// to re-locate the instruction.
#[derive(Debug, Clone)]
pub struct ProfiledInst {
    /// Unique location (traversal index).
    pub loc: usize,
    /// Owning function.
    pub func: FuncId,
    /// Owning block.
    pub block: BlockId,
    /// The instruction.
    pub inst: InstId,
    /// The kind profiler's result.
    pub kind: Opcode,
    /// The sub-kind profiler's result.
    pub conj: PredConj,
}

/// The profile table τ_t of one test case.
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    /// Rows in traversal (location) order.
    pub rows: Vec<ProfiledInst>,
}

impl ProfileTable {
    /// Number of instructions profiled.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct kinds appearing in the table, in first-appearance order.
    pub fn kinds(&self) -> Vec<Opcode> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.kind) {
                seen.push(r.kind);
            }
        }
        seen
    }
}

/// Profiles every instruction of `module` in the exact order the
/// translation skeleton will visit them (functions in id order, external
/// functions skipped, blocks in layout order, instructions in block order).
///
/// # Errors
///
/// Propagates predicate-getter failures (should not occur on verified
/// modules).
pub fn profile_module(registry: &ApiRegistry, module: &Module) -> ApiResult<ProfileTable> {
    let mut ctx = TranslationCtx::new(module, registry.tgt_version);
    let mut table = ProfileTable::default();
    let mut loc = 0usize;
    // Sub-kind getters need a current source function; target side is a
    // scratch shell.
    for fid in module.func_ids() {
        let f = module.func(fid);
        if f.is_external {
            continue;
        }
        let tgt_f = ctx.clone_signature(fid);
        ctx.begin_function(fid, tgt_f);
        for b in f.block_ids() {
            for &iid in &f.block(b).insts {
                let kind = f.inst(iid).opcode;
                let conj = registry.subkind_profile(&mut ctx, kind, iid)?;
                table.rows.push(ProfiledInst {
                    loc,
                    func: fid,
                    block: b,
                    inst: iid,
                    kind,
                    conj,
                });
                loc += 1;
            }
        }
    }
    siro_trace::counter("synth.profile_rows", table.rows.len() as u64);
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::PredValue;
    use siro_ir::{FuncBuilder, IntPredicate, IrVersion, ValueRef};

    fn registry() -> ApiRegistry {
        ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6)
    }

    #[test]
    fn profiles_locations_kinds_and_subkinds() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("t");
        let el = b.add_block("e");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        b.position_at_end(el);
        b.br(t);
        let reg = registry();
        let table = profile_module(&reg, &m).unwrap();
        assert_eq!(table.len(), 4);
        assert_eq!(table.rows[0].kind, Opcode::ICmp);
        assert_eq!(table.rows[1].kind, Opcode::Br);
        assert_eq!(
            table.rows[1].conj.get("is_unconditional"),
            Some(&PredValue::Bool(false))
        );
        assert_eq!(table.rows[2].kind, Opcode::Ret);
        assert_eq!(
            table.rows[2].conj.get("is_void_return"),
            Some(&PredValue::Bool(false))
        );
        assert_eq!(
            table.rows[3].conj.get("is_unconditional"),
            Some(&PredValue::Bool(true))
        );
        // Locations are dense and ordered.
        for (i, r) in table.rows.iter().enumerate() {
            assert_eq!(r.loc, i);
        }
    }

    #[test]
    fn external_functions_are_skipped() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        m.add_func(siro_ir::Function::external("ext", i32t, vec![]));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let table = profile_module(&registry(), &m).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn kinds_lists_in_first_appearance_order() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.add(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 2));
        let y = b.add(x, x);
        b.ret(Some(y));
        let table = profile_module(&registry(), &m).unwrap();
        assert_eq!(table.kinds(), vec![Opcode::Add, Opcode::Ret]);
    }
}
