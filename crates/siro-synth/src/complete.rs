//! Skeleton completion (§4.3.5, step ➎ of Alg. 2): turning the refined
//! mapping `M*` into final instruction translators and rendering them as
//! source code.
//!
//! For each kind: if one candidate survives under *every* observed
//! conjunction, the kind has a single sub-kind and gets `[true -> λ]`.
//! Otherwise a minimum set of candidates covering all observed conjunctions
//! is selected (greedy set cover) and each selected candidate's covered
//! conjunctions are OR-ed into its guard. Conjunctions never observed fall
//! through to the generated warning branch that asks the user for a new
//! test case.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

use siro_api::{ApiProgram, ApiRegistry, PredConj};
use siro_core::{KindTranslator, SynthesizedTranslator, TranslatorArm};
use siro_ir::Opcode;

use crate::refine::{CandIdx, MStar};

/// Builds the [`KindTranslator`] for one kind from its refined mapping.
///
/// Returns `None` if the kind has no observed conjunction (no test coverage
/// — the kind gets a pure warning translator).
pub fn complete_kind(
    mstar: &MStar,
    kind: Opcode,
    candidates: &[ApiProgram],
) -> Option<KindTranslator> {
    let entries = mstar.entries(kind)?;
    if entries.is_empty() {
        return None;
    }
    // A candidate surviving under every conjunction => single sub-kind.
    let mut universal: Option<CandIdx> = None;
    'outer: for &c in entries.values().next().unwrap() {
        for set in entries.values() {
            if !set.contains(&c) {
                continue 'outer;
            }
        }
        universal = Some(c);
        break;
    }
    if let Some(c) = universal {
        return Some(KindTranslator::single(candidates[c].clone()));
    }
    // Greedy minimum cover of the observed conjunctions.
    let mut uncovered: Vec<&PredConj> = entries.keys().collect();
    let mut arms = Vec::new();
    while !uncovered.is_empty() {
        // Pick the candidate covering the most uncovered conjunctions
        // (ties: smallest index for determinism).
        let mut best: Option<(CandIdx, Vec<usize>)> = None;
        let all_cands: BTreeSet<CandIdx> = entries.values().flatten().copied().collect();
        for &c in &all_cands {
            let covered: Vec<usize> = uncovered
                .iter()
                .enumerate()
                .filter(|(_, conj)| entries[**conj].contains(&c))
                .map(|(i, _)| i)
                .collect();
            let better = match &best {
                None => !covered.is_empty(),
                Some((_, b)) => covered.len() > b.len(),
            };
            if better {
                best = Some((c, covered));
            }
        }
        let (cand, covered_idx) = best?;
        // OR the covered conjunctions into this arm's guard.
        let covers: Vec<PredConj> = covered_idx.iter().map(|&i| uncovered[i].clone()).collect();
        for &i in covered_idx.iter().rev() {
            uncovered.remove(i);
        }
        arms.push(TranslatorArm {
            covers,
            program: candidates[cand].clone(),
        });
    }
    Some(KindTranslator { arms })
}

/// Completes the whole translator: one [`KindTranslator`] per common kind
/// (kinds without coverage get an empty translator whose only behaviour is
/// the unseen-predicate warning).
pub fn complete_translator(
    registry: Arc<ApiRegistry>,
    mstar: &MStar,
    per_kind: &HashMap<Opcode, Vec<ApiProgram>>,
) -> SynthesizedTranslator {
    let mut out = SynthesizedTranslator::new(Arc::clone(&registry));
    for kind in registry
        .src_version
        .common_instructions(registry.tgt_version)
    {
        let kt = per_kind
            .get(&kind)
            .and_then(|cands| complete_kind(mstar, kind, cands))
            .unwrap_or_default();
        out.insert(kind, kt);
    }
    out
}

/// Renders the finished translator as human-readable source in the style of
/// the paper's Fig. 4 listings, including the warning branch.
pub fn render_translator(translator: &SynthesizedTranslator) -> String {
    let reg = &translator.registry;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// IR translator {} -> {} (synthesized by Siro)",
        reg.src_version, reg.tgt_version
    );
    for kind in translator.covered_kinds() {
        let kt = &translator.kinds[&kind];
        let _ = writeln!(
            out,
            "\nfn translate_{}(inst: {}_s) -> {}_t {{",
            kind.name(),
            camel(kind.name()),
            camel(kind.name())
        );
        if kt.arms.is_empty() {
            let _ = writeln!(
                out,
                "    warn_unseen_predicate!(); // no test case covered `{kind}`"
            );
        }
        for (i, arm) in kt.arms.iter().enumerate() {
            if arm.covers.is_empty() {
                let _ = writeln!(out, "    // predicate: true");
                let _ = writeln!(out, "    return {};", arm.program.summary(reg));
            } else {
                let guard = arm
                    .covers
                    .iter()
                    .map(render_conj)
                    .collect::<Vec<_>>()
                    .join(" || ");
                let kw = if i == 0 { "if" } else { "else if" };
                let _ = writeln!(out, "    {kw} {guard} {{");
                let _ = writeln!(out, "        return {};", arm.program.summary(reg));
                let _ = writeln!(out, "    }}");
            }
        }
        if kt.arms.iter().any(|a| !a.covers.is_empty()) {
            let _ = writeln!(
                out,
                "    else {{ warn_unseen_predicate!(); /* add a test case */ }}"
            );
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn render_conj(conj: &PredConj) -> String {
    if conj.is_empty() {
        return "true".into();
    }
    let parts: Vec<String> = conj
        .iter()
        .map(|(name, v)| match v {
            siro_api::PredValue::Bool(true) => format!("inst.{name}()"),
            siro_api::PredValue::Bool(false) => format!("!inst.{name}()"),
            siro_api::PredValue::Enum(i) => format!("inst.{name}() == #{i}"),
        })
        .collect();
    format!("({})", parts.join(" && "))
}

fn camel(name: &str) -> String {
    let mut out = String::new();
    let mut up = true;
    for ch in name.chars() {
        if ch == '_' {
            up = true;
            continue;
        }
        if up {
            out.extend(ch.to_uppercase());
            up = false;
        } else {
            out.push(ch);
        }
    }
    out
}

/// Lines of code of a rendered candidate set — the paper's `#Atomic Trans
/// (LOC)` / `#Inst Trans (LOC)` columns of Tab. 3.
pub fn candidate_loc(registry: &ApiRegistry, per_kind: &HashMap<Opcode, Vec<ApiProgram>>) -> usize {
    per_kind
        .values()
        .flatten()
        .map(|p| p.render(registry).lines().count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::PredValue;

    fn prog(kind: Opcode, marker: usize) -> ApiProgram {
        // Distinguishable dummy programs (marker = number of steps).
        ApiProgram {
            kind,
            steps: vec![
                siro_api::ApiCall {
                    api: siro_api::ApiId(0),
                    args: vec![]
                };
                marker
            ],
        }
    }

    fn conj(v: bool) -> PredConj {
        let mut c = PredConj::new();
        c.insert("is_unconditional".into(), PredValue::Bool(v));
        c
    }

    #[test]
    fn single_subkind_collapses_to_true_arm() {
        let mut m = MStar::new();
        let survivors: BTreeSet<usize> = [0, 1].into_iter().collect();
        m.refine(Opcode::Add, &PredConj::new(), &survivors);
        let cands = vec![prog(Opcode::Add, 1), prog(Opcode::Add, 2)];
        let kt = complete_kind(&m, Opcode::Add, &cands).unwrap();
        assert_eq!(kt.arms.len(), 1);
        assert!(kt.arms[0].covers.is_empty()); // the `true` predicate
        assert_eq!(kt.arms[0].program.steps.len(), 1); // lowest index picked
    }

    #[test]
    fn two_subkinds_produce_guarded_arms() {
        let mut m = MStar::new();
        m.refine(Opcode::Br, &conj(true), &[0].into_iter().collect());
        m.refine(Opcode::Br, &conj(false), &[1].into_iter().collect());
        let cands = vec![prog(Opcode::Br, 1), prog(Opcode::Br, 2)];
        let kt = complete_kind(&m, Opcode::Br, &cands).unwrap();
        assert_eq!(kt.arms.len(), 2);
        // Each arm covers exactly one conjunction.
        for arm in &kt.arms {
            assert_eq!(arm.covers.len(), 1);
        }
        // Selection works at runtime.
        assert!(kt.select(&conj(true)).is_some());
        assert!(kt.select(&conj(false)).is_some());
        let mut other = PredConj::new();
        other.insert("is_unconditional".into(), PredValue::Enum(3));
        assert!(kt.select(&other).is_none(), "unseen conjunction must warn");
    }

    #[test]
    fn universal_candidate_wins_over_cover() {
        // Candidate 2 survives under both conjunctions -> single arm.
        let mut m = MStar::new();
        m.refine(Opcode::Ret, &conj(true), &[0, 2].into_iter().collect());
        m.refine(Opcode::Ret, &conj(false), &[1, 2].into_iter().collect());
        let cands = vec![
            prog(Opcode::Ret, 1),
            prog(Opcode::Ret, 2),
            prog(Opcode::Ret, 3),
        ];
        let kt = complete_kind(&m, Opcode::Ret, &cands).unwrap();
        assert_eq!(kt.arms.len(), 1);
        assert_eq!(kt.arms[0].program.steps.len(), 3);
    }
}
