//! Binary encoding primitives for the persistent translator store.
//!
//! Mirrors the hand-rolled style of `siro-serve`'s wire protocol: all
//! integers big-endian, strings length-prefixed, no external dependencies.
//! On top of the cursor pair this module provides [`fnv1a64`], the stable
//! checksum the store format uses — [`std::collections::hash_map::DefaultHasher`]
//! makes no cross-toolchain promises, and a store entry written by one
//! build of siro must still verify under the next.

use std::fmt;

/// Appends big-endian primitives into a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Decoding failure: the byte stream is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn short(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

/// A checked cursor over an immutable byte slice; every read validates the
/// remaining length, so corrupt input becomes a [`DecodeError`], never a
/// panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(short(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a one-byte bool; any value other than `0`/`1` is malformed.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(short(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| short("string is not valid UTF-8"))
    }

    /// Asserts every byte has been consumed — trailing garbage after a
    /// structurally valid entry is corruption, not padding.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when bytes remain.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(short(format!(
                "{} trailing bytes after the entry",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// FNV-1a 64-bit hash: tiny, dependency-free, and — unlike
/// `DefaultHasher` — specified, so checksums and file names derived from
/// it are stable across builds and toolchains.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_u128(1 << 90);
        w.put_bool(true);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.u128().unwrap(), 1 << 90);
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("truncate me");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.string().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_malformed() {
        let mut r = ByteReader::new(&[9]);
        assert!(r.bool().is_err());
        // Length 1, then an invalid UTF-8 byte.
        let mut r = ByteReader::new(&[0, 0, 0, 1, 0xFF]);
        assert!(r.string().is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
