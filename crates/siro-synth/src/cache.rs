//! Process-wide memoization of synthesis outcomes.
//!
//! Synthesizing a translator for a version pair is by far the most
//! expensive operation in the evaluation pipeline, and the benchmarks
//! (Tab. 3/4/5, the kernel campaign, the fuzzing campaign) all need the
//! same handful of pairs. [`TranslatorCache`] keys a finished
//! [`SynthesisOutcome`] by the version pair, a fingerprint of the oracle
//! corpus, and every config knob that can change the outcome — so each
//! pair is synthesized exactly once per process and every later consumer
//! gets the shared [`Arc`] back.
//!
//! The storage is **sharded** [`CACHE_SHARDS`] ways by key hash: each
//! shard has its own map lock and its own hit/miss counters, so hot-path
//! lookups for different pairs proceed in parallel instead of serializing
//! on one process-wide mutex (the serving event loop hits this from every
//! worker core at once). [`TranslatorCache::snapshot`] and
//! [`TranslatorCache::reset`] take every shard lock together, so
//! cross-shard reads stay atomic.
//!
//! The `threads` knob is deliberately **excluded** from the key:
//! refinement takes set unions over the passing assignments and both the
//! probe and validation fan-outs preserve sequential order, so the
//! synthesized translator is independent of the worker count.
//!
//! Failures are cached too: the same key means the same inputs, which
//! deterministically reproduce the same [`SynthError`], so retrying a
//! failed pair would only burn the same CPU again.
//!
//! When a persistent [`crate::store::TranslatorStore`] is attached (via
//! [`crate::store::set_active_store`]), a miss first consults the store —
//! a validated entry is adopted without synthesizing — and a cold
//! synthesis writes its outcome back, so the *next* process starts warm.
//! Failures and fault-injected configs never touch the store.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use siro_ir::IrVersion;

use crate::candgen::GenLimits;
use crate::driver::{SynthError, SynthesisConfig, SynthesisOutcome, Synthesizer};
use crate::pertest::OracleTest;
use crate::refine::SynthFault;

/// Everything that can change what `Synthesizer::synthesize` produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    source: IrVersion,
    target: IrVersion,
    corpus_fingerprint: u64,
    opt_equivalence: bool,
    opt_memoization: bool,
    opt_ordering: bool,
    limits: GenLimits,
    max_assignments_per_test: u128,
    fault: Option<SynthFault>,
}

impl CacheKey {
    fn new(config: &SynthesisConfig, tests: &[OracleTest]) -> Self {
        Self::with_fingerprint(config, corpus_fingerprint(tests))
    }

    fn with_fingerprint(config: &SynthesisConfig, corpus_fingerprint: u64) -> Self {
        CacheKey {
            source: config.source,
            target: config.target,
            corpus_fingerprint,
            opt_equivalence: config.opt_equivalence,
            opt_memoization: config.opt_memoization,
            opt_ordering: config.opt_ordering,
            limits: config.limits,
            max_assignments_per_test: config.max_assignments_per_test,
            fault: config.fault,
        }
    }
}

/// Fingerprints an oracle corpus: test names, oracle values, and the full
/// rendered text of every test module. Any edit to any test — renaming,
/// changing an oracle, touching the module body — changes the fingerprint
/// and therefore misses the cache.
pub fn corpus_fingerprint(tests: &[OracleTest]) -> u64 {
    let mut h = DefaultHasher::new();
    tests.len().hash(&mut h);
    for t in tests {
        t.name.hash(&mut h);
        t.oracle.hash(&mut h);
        siro_ir::write::write_module(&t.module).hash(&mut h);
    }
    h.finish()
}

/// One slot per key; the per-key `OnceLock` means two distinct pairs can
/// synthesize concurrently while two racers on the *same* pair serialize,
/// with the loser reusing the winner's result.
type Slot = Arc<OnceLock<Result<Arc<SynthesisOutcome>, SynthError>>>;

/// Number of independent cache shards. Keys spread by hash, so hot-path
/// lookups for different pairs almost never contend on the same lock.
/// Power of two so the modulo compiles to a mask.
pub const CACHE_SHARDS: usize = 16;

/// One shard: its own map lock plus its own hit/miss counters, so a
/// lookup touches exactly one lock and two shard-local atomics.
struct CacheShard {
    map: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static CACHE: OnceLock<[CacheShard; CACHE_SHARDS]> = OnceLock::new();

fn shards() -> &'static [CacheShard; CACHE_SHARDS] {
    CACHE.get_or_init(|| {
        std::array::from_fn(|_| CacheShard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    })
}

fn shard_of(key: &CacheKey) -> &'static CacheShard {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    &shards()[(h.finish() as usize) & (CACHE_SHARDS - 1)]
}

/// Locks every shard in index order and returns the guards. Holding all
/// guards at once is what makes [`TranslatorCache::snapshot`] and
/// [`TranslatorCache::reset`] mutually atomic across shards: a snapshot
/// racing a reset sees either the whole pre-reset state or the whole
/// post-reset state, never a mix of shards from different epochs.
fn lock_all() -> Vec<std::sync::MutexGuard<'static, HashMap<CacheKey, Slot>>> {
    shards()
        .iter()
        .map(|s| s.map.lock().expect("translator cache poisoned"))
        .collect()
}

/// Hit/miss counters since process start (or the last [`TranslatorCache::reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waiting on an in-flight
    /// synthesis of the same key).
    pub hits: u64,
    /// Lookups that ran a synthesis.
    pub misses: u64,
}

/// Point-in-time view of the whole cache: the hit/miss counters plus the
/// shape of the stored map. This is the one source of truth that both the
/// benchmark JSON dumps and `siro-serve`'s `STATS` endpoint read, so the
/// two can never disagree about what the cache did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a synthesis.
    pub misses: u64,
    /// Distinct keys currently stored (successes, failures, and slots
    /// whose first synthesis is still in flight).
    pub entries: usize,
    /// Stored keys whose memoized outcome is a [`SynthError`].
    pub failures: usize,
}

/// Point-in-time view of one cache shard, for the per-shard serving
/// funnel (`STATS` / `METRICS` in `siro-serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Shard index in `0..CACHE_SHARDS`.
    pub index: usize,
    /// Lookups this shard answered from its map.
    pub hits: u64,
    /// Lookups that ran a synthesis in this shard.
    pub misses: u64,
    /// Distinct keys currently stored in this shard.
    pub entries: usize,
}

/// Result of a cache lookup: the shared outcome plus whether this call is
/// the one that actually synthesized it.
#[derive(Debug, Clone)]
pub struct CacheLookup {
    /// The memoized outcome.
    pub outcome: Arc<SynthesisOutcome>,
    /// `true` when this call performed the synthesis (a miss), `false`
    /// when the outcome was already cached (in memory or in the
    /// persistent store).
    pub fresh: bool,
    /// `true` when this call populated the in-memory slot from the
    /// persistent store instead of synthesizing.
    pub from_store: bool,
}

/// The process-wide translator cache. All methods are associated
/// functions on a unit struct; the storage lives in statics.
#[derive(Debug)]
pub struct TranslatorCache;

impl TranslatorCache {
    /// Returns the memoized outcome for `(config, tests)`, synthesizing it
    /// first if this key has never been seen.
    ///
    /// # Errors
    ///
    /// Propagates the (equally memoized) [`SynthError`] of the underlying
    /// synthesis.
    pub fn get_or_synthesize(
        config: SynthesisConfig,
        tests: &[OracleTest],
    ) -> Result<Arc<SynthesisOutcome>, SynthError> {
        Self::lookup_or_synthesize(config, tests).map(|l| l.outcome)
    }

    /// Like [`TranslatorCache::get_or_synthesize`] but also reports
    /// whether the call hit or missed, for per-pair bench records.
    ///
    /// # Errors
    ///
    /// Propagates the memoized [`SynthError`] of the underlying synthesis.
    pub fn lookup_or_synthesize(
        config: SynthesisConfig,
        tests: &[OracleTest],
    ) -> Result<CacheLookup, SynthError> {
        let key = CacheKey::new(&config, tests);
        let fingerprint = key.corpus_fingerprint;
        let shard = shard_of(&key);
        let slot = {
            let mut map = shard.map.lock().expect("translator cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        // Fault-injected configs never touch the persistent store: a
        // deliberately broken translator must not outlive this process.
        let store = if config.fault.is_none() {
            crate::store::active_store()
        } else {
            None
        };
        let ran = std::cell::Cell::new(false);
        let loaded = std::cell::Cell::new(false);
        let result = slot.get_or_init(|| {
            if let Some(store) = &store {
                let skey = crate::store::StoreKey::new(&config, fingerprint);
                let sp = siro_trace::span!("store.load", "{}->{}", config.source, config.target);
                let hit = store.load(&skey, tests);
                drop(sp);
                if let Some(outcome) = hit {
                    loaded.set(true);
                    return Ok(outcome);
                }
            }
            ran.set(true);
            let result = Synthesizer::new(config.clone())
                .synthesize(tests)
                .map(Arc::new);
            if let (Some(store), Ok(outcome)) = (&store, &result) {
                let skey = crate::store::StoreKey::new(&config, fingerprint);
                let sp = siro_trace::span!("store.save", "{}->{}", config.source, config.target);
                if store.save(&skey, outcome).is_err() {
                    siro_trace::counter("store.save_errors", 1);
                }
                drop(sp);
            }
            result
        });
        let fresh = ran.get();
        let from_store = loaded.get();
        // First population in this process (cold synthesis or store
        // adoption): attach the compiled tier — load the `.sirx` sibling,
        // or lower eagerly and write it back. Memory hits skip this; their
        // outcome already carries its compiled slot.
        if fresh || from_store {
            if let (Some(store), Ok(outcome)) = (&store, result) {
                let skey = crate::store::StoreKey::new(&config, fingerprint);
                attach_compiled(store, &skey, outcome);
            }
        }
        if fresh {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("cache.misses", 1);
        } else {
            // Store loads count as hits: the lookup was answered by a
            // previous synthesis, just one from another process.
            shard.hits.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("cache.hits", 1);
        }
        result.clone().map(|outcome| CacheLookup {
            outcome,
            fresh,
            from_store,
        })
    }

    /// Pre-populates the in-memory slot for `(config, tests)` from the
    /// attached persistent store *without ever synthesizing*: no entry (or
    /// a corrupt one) just returns `false`. Returns `true` when the slot
    /// is populated — whether by this call or already beforehand — so
    /// callers know a subsequent lookup will hit.
    pub fn warm_from_store(config: &SynthesisConfig, tests: &[OracleTest]) -> bool {
        if config.fault.is_some() {
            return false;
        }
        let Some(store) = crate::store::active_store() else {
            return false;
        };
        let key = CacheKey::new(config, tests);
        let shard = shard_of(&key);
        {
            let map = shard.map.lock().expect("translator cache poisoned");
            if map.get(&key).is_some_and(|slot| slot.get().is_some()) {
                return true;
            }
        }
        let skey = crate::store::StoreKey::new(config, key.corpus_fingerprint);
        let sp = siro_trace::span!("store.load", "{}->{} (warm)", config.source, config.target);
        let outcome = store.load(&skey, tests);
        drop(sp);
        let Some(outcome) = outcome else {
            return false;
        };
        attach_compiled(&store, &skey, &outcome);
        let slot = {
            let mut map = shard.map.lock().expect("translator cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        // A concurrent lookup may have raced us into the slot; either way
        // the slot is populated now.
        if slot.set(Ok(outcome)).is_ok() {
            crate::store::note_warm_loaded();
        }
        true
    }

    /// Whether the in-memory slot for `(config, tests)` already holds a
    /// *successful* outcome — no store probe, no synthesis, no counter
    /// bump. The version-graph router uses this to classify an edge as
    /// hot (answerable at memory speed) without perturbing the edge.
    pub fn is_warm(config: &SynthesisConfig, tests: &[OracleTest]) -> bool {
        Self::is_warm_fingerprint(config, corpus_fingerprint(tests))
    }

    /// Like [`TranslatorCache::is_warm`], but with a precomputed
    /// [`corpus_fingerprint`]. The version-graph router probes every
    /// catalog edge each time it plans, and re-hashing a full corpus per
    /// probe would dwarf the lookup itself — callers that hold a corpus
    /// fixed should fingerprint it once and probe with this.
    pub fn is_warm_fingerprint(config: &SynthesisConfig, corpus_fingerprint: u64) -> bool {
        let key = CacheKey::with_fingerprint(config, corpus_fingerprint);
        let map = shard_of(&key)
            .map
            .lock()
            .expect("translator cache poisoned");
        map.get(&key)
            .is_some_and(|slot| matches!(slot.get(), Some(Ok(_))))
    }

    /// Current hit/miss counters, summed over every shard.
    pub fn stats() -> CacheStats {
        let mut stats = CacheStats { hits: 0, misses: 0 };
        for s in shards() {
            stats.hits += s.hits.load(Ordering::Relaxed);
            stats.misses += s.misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-shard counters and entry counts, for the serving funnel. Each
    /// shard is read under its own lock; use [`TranslatorCache::snapshot`]
    /// when you need all shards from one atomic epoch.
    pub fn shard_snapshots() -> Vec<CacheShardStats> {
        shards()
            .iter()
            .enumerate()
            .map(|(index, s)| {
                let map = s.map.lock().expect("translator cache poisoned");
                CacheShardStats {
                    index,
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    entries: map.len(),
                }
            })
            .collect()
    }

    /// Full snapshot: counters plus stored-entry shape. Every shard lock
    /// is held while the counters and maps are read, so a snapshot racing
    /// a [`TranslatorCache::reset`] sees either the whole pre-reset state
    /// or the whole post-reset state — never non-zero counters over an
    /// empty map, and never a mix of reset and un-reset shards.
    /// (Snapshotting before the lock was a real bug: a reader could
    /// observe `hits + misses > 0` with `entries == 0`.)
    ///
    /// ```
    /// use siro_synth::TranslatorCache;
    /// let snap = TranslatorCache::snapshot();
    /// // Failures are a subset of the stored entries, and every lookup is
    /// // either a hit or a miss.
    /// assert!(snap.failures <= snap.entries);
    /// assert_eq!(snap.hits + snap.misses, TranslatorCache::stats().hits
    ///     + TranslatorCache::stats().misses);
    /// ```
    pub fn snapshot() -> CacheSnapshot {
        let guards = lock_all();
        let mut snap = CacheSnapshot {
            hits: 0,
            misses: 0,
            entries: 0,
            failures: 0,
        };
        for (shard, map) in shards().iter().zip(&guards) {
            snap.hits += shard.hits.load(Ordering::Relaxed);
            snap.misses += shard.misses.load(Ordering::Relaxed);
            snap.entries += map.len();
            snap.failures += map
                .values()
                .filter(|slot| matches!(slot.get(), Some(Err(_))))
                .count();
        }
        snap
    }

    /// Drops every cached outcome and zeroes the counters — all shard
    /// locks are held at once, so concurrent [`TranslatorCache::snapshot`]s
    /// never observe cleared entries with stale counters (or a half-reset
    /// subset of shards). Meant for benchmarks that measure cold runs;
    /// in-flight lookups keep their `Arc`s alive, so this is always safe.
    pub fn reset() {
        let mut guards = lock_all();
        for (shard, map) in shards().iter().zip(guards.iter_mut()) {
            map.clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }
}

/// Attaches the compiled tier of a just-populated outcome: adopt the
/// validated `.sirx` sibling when one exists, otherwise lower eagerly and
/// write it back so the *next* process warms straight to the compiled
/// tier. Every failure mode degrades (fresh lowering, or the interpreter)
/// — never errors out of the lookup.
fn attach_compiled(
    store: &crate::store::TranslatorStore,
    skey: &crate::store::StoreKey,
    outcome: &SynthesisOutcome,
) {
    if !crate::compile::compile_enabled() {
        return;
    }
    if let Some(compiled) = store.load_compiled(skey) {
        outcome.seed_compiled(compiled);
        return;
    }
    if let Some(compiled) = outcome.compiled() {
        let sp = siro_trace::span!("store.save_compiled", "{}->{}", skey.source, skey.target);
        if store.save_compiled(skey, &compiled).is_err() {
            siro_trace::counter("store.save_errors", 1);
        }
        drop(sp);
    }
}

/// Fans a batch of synthesis jobs out over scoped worker threads, one per
/// job (the per-job internals parallelize further on their own
/// `config.threads`). Results come back in job order. Each job goes
/// through [`TranslatorCache`], so duplicate pairs in one batch are
/// synthesized once.
pub fn synthesize_all(
    jobs: &[(SynthesisConfig, Vec<OracleTest>)],
) -> Vec<Result<Arc<SynthesisOutcome>, SynthError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(config, tests)| {
                scope.spawn(move || TranslatorCache::get_or_synthesize(config.clone(), tests))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("synthesis worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Synthesizer;
    use siro_ir::IrVersion;

    fn tests_subset(src: IrVersion, tgt: IrVersion, names: &[&str]) -> Vec<OracleTest> {
        siro_testcases::corpus_for_pair(src, tgt)
            .into_iter()
            .filter(|c| names.contains(&c.name))
            .map(|c| OracleTest {
                name: c.name.to_string(),
                module: c.build(src),
                oracle: c.oracle,
            })
            .collect()
    }

    const NAMES: &[&str] = &["ret_const", "add_asym", "sub_asym"];

    // NOTE: the cache and its counters are process-global and the test
    // harness runs tests concurrently, so every test below uses its own
    // distinct key (different config knobs or corpus) and asserts via the
    // per-call `fresh` flag / pointer identity, never via exact global
    // counter values.

    #[test]
    fn synthesis_is_deterministic_across_runs_and_thread_counts() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_subset(src, tgt, NAMES);
        let mut one = SynthesisConfig::new(src, tgt);
        one.threads = 1;
        let mut many = SynthesisConfig::new(src, tgt);
        many.threads = 8;
        let a = Synthesizer::new(one.clone()).synthesize(&tests).unwrap();
        let b = Synthesizer::new(one).synthesize(&tests).unwrap();
        let c = Synthesizer::new(many).synthesize(&tests).unwrap();
        // Same pair twice: byte-identical rendered translators; and the
        // outcome is independent of the worker count, which is why
        // `threads` is not part of the cache key.
        assert_eq!(a.rendered, b.rendered);
        assert_eq!(a.rendered, c.rendered);
    }

    #[test]
    fn cache_hit_returns_the_cold_outcome() {
        let (src, tgt) = (IrVersion::V12_0, IrVersion::V3_6);
        let tests = tests_subset(src, tgt, NAMES);
        let config = SynthesisConfig::new(src, tgt);
        let cold = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).unwrap();
        let warm = TranslatorCache::lookup_or_synthesize(config, &tests).unwrap();
        assert!(!warm.fresh, "second lookup must hit");
        assert!(
            Arc::ptr_eq(&cold.outcome, &warm.outcome),
            "hit must return the very same outcome"
        );
        // And the memoized outcome equals a from-scratch synthesis.
        let scratch = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        assert_eq!(cold.outcome.rendered, scratch.rendered);
        let stats = TranslatorCache::stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }

    #[test]
    fn corpus_fingerprint_separates_different_corpora() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let a = tests_subset(src, tgt, NAMES);
        let b = tests_subset(src, tgt, &["ret_const", "add_asym"]);
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&a.clone()));
    }

    #[test]
    fn fan_out_shares_duplicate_pairs() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_0);
        let tests = tests_subset(src, tgt, NAMES);
        let jobs: Vec<_> = (0..3)
            .map(|_| (SynthesisConfig::new(src, tgt), tests.clone()))
            .collect();
        let results = synthesize_all(&jobs);
        let first = results[0].as_ref().unwrap();
        for r in &results[1..] {
            assert!(Arc::ptr_eq(first, r.as_ref().unwrap()));
        }
    }

    #[test]
    fn snapshot_tracks_entries_and_failures() {
        // Unique key for this test: a corpus subset no other test uses.
        let (src, tgt) = (IrVersion::V14_0, IrVersion::V3_0);
        let tests = tests_subset(src, tgt, &["ret_const", "add_asym"]);
        let config = SynthesisConfig::new(src, tgt);
        let before = TranslatorCache::snapshot();
        TranslatorCache::get_or_synthesize(config.clone(), &tests).unwrap();
        let after = TranslatorCache::snapshot();
        assert!(after.entries > before.entries, "new key must be stored");
        assert!(after.misses > before.misses, "cold lookup is a miss");
        TranslatorCache::get_or_synthesize(config, &tests).unwrap();
        let warm = TranslatorCache::snapshot();
        assert_eq!(warm.entries, after.entries, "hit stores nothing new");
        assert!(warm.hits > after.hits);

        // A failing synthesis is stored and counted as a failure entry
        // (same blow-up recipe as `failures_are_memoized_too`, distinct
        // pair so the two tests never share a key).
        let mut bad = SynthesisConfig::new(src, tgt);
        bad.opt_equivalence = false;
        bad.opt_memoization = false;
        bad.max_assignments_per_test = 10_000;
        let fail_tests = tests_subset(src, tgt, &["switch_both", "gep_struct"]);
        let outcome = TranslatorCache::lookup_or_synthesize(bad, &fail_tests);
        assert!(outcome.is_err(), "blow-up recipe must fail");
        let failed = TranslatorCache::snapshot();
        assert!(failed.failures > after.failures, "failure must be stored");
    }

    #[test]
    fn failures_are_memoized_too() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_subset(src, tgt, &["switch_both", "gep_struct"]);
        let mut config = SynthesisConfig::new(src, tgt);
        config.opt_equivalence = false;
        config.opt_memoization = false;
        config.max_assignments_per_test = 10_000;
        let cold = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).unwrap_err();
        assert!(matches!(cold, SynthError::Blowup { .. }));
        let warm = TranslatorCache::lookup_or_synthesize(config, &tests).unwrap_err();
        assert_eq!(cold, warm);
    }
}
