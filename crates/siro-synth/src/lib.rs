//! # siro-synth — the Siro instruction-translator synthesis system
//!
//! Implements §4 of the paper: an iterative, continuously shrinking search
//! over candidate instruction translators.
//!
//! * [`typegraph`] — the IR type graph (Def. 4.1) and backward
//!   reachability (Def. 4.2);
//! * [`candgen`] — type-guided candidate generation (➊);
//! * [`profile`] — the location / kind / sub-kind profilers and the profile
//!   table (Def. 4.3, ➋);
//! * [`pertest`] — per-test translators (Alg. 3 / Def. 4.4) and their
//!   differential-testing validation (Fig. 6, ➌);
//! * [`refine`] — the conservative mapping `M*` (Alg. 4, ➍);
//! * [`complete`] — skeleton completion and source rendering (➎);
//! * [`driver`] — [`Synthesizer`], wiring Alg. 2 together with the three
//!   optimizations of §4.4 (equivalence, memoization, test ordering) and
//!   parallel probing + validation (§5 "Speeding up Synthesis Process");
//! * [`cache`] — the process-wide [`TranslatorCache`] memoizing finished
//!   outcomes per `(pair, corpus fingerprint, config)` and the
//!   [`synthesize_all`] multi-pair fan-out;
//! * [`persist`] + [`store`] — the on-disk [`TranslatorStore`]: a
//!   versioned, checksummed binary format persisting outcomes across
//!   processes, with load-time validation against the oracle corpus and
//!   LRU-ish garbage collection;
//! * [`router`] — the version-graph router: any `(from, to)` request over
//!   the full catalog answered by cheapest-path composition of pairwise
//!   translators, with composed chains memoized and persisted under their
//!   own keys;
//! * [`compile`] — the AOT execution tier: validated translators lowered
//!   through a [`TranslatorBackend`] into flat, pre-resolved instruction
//!   streams (dense opcode dispatch, direct function indices, pre-bound
//!   operand slots), persisted as `.sirx` siblings of the store's `.sirt`
//!   entries, with transparent interpreter fallback.
//!
//! ## Example
//!
//! ```no_run
//! use siro_ir::IrVersion;
//! use siro_synth::{OracleTest, Synthesizer};
//!
//! let tests: Vec<OracleTest> = siro_testcases::corpus_for_pair(IrVersion::V13_0, IrVersion::V3_6)
//!     .into_iter()
//!     .map(|c| OracleTest {
//!         name: c.name.to_string(),
//!         module: c.build(IrVersion::V13_0),
//!         oracle: c.oracle,
//!     })
//!     .collect();
//! let outcome = Synthesizer::for_pair(IrVersion::V13_0, IrVersion::V3_6)
//!     .synthesize(&tests)
//!     .unwrap();
//! println!("{}", outcome.rendered);
//! ```

#![deny(missing_docs)]

pub mod bridge;
pub mod cache;
pub mod candgen;
pub mod compile;
pub mod complete;
pub mod driver;
pub mod persist;
pub mod pertest;
pub mod profile;
pub mod refine;
pub mod router;
pub mod store;
pub mod typegraph;
pub mod wir;

pub use bridge::{
    bridge_cached, bridge_is_hot, bridge_store_name, is_anchor_pair, lower_module, raise_module,
    reset_bridge_cache, siro_behaviour, validate_bridge, wir_behaviour, BridgeError, BridgeOutcome,
    BridgeStats, XBehaviour, BRIDGE_ANCHORS, BRIDGE_FUEL, BRIDGE_SEEDS,
};
pub use cache::{
    corpus_fingerprint, synthesize_all, CacheLookup, CacheShardStats, CacheSnapshot, CacheStats,
    TranslatorCache, CACHE_SHARDS,
};
pub use candgen::{generate_all, generate_for_kind, GenLimits};
pub use compile::{
    compile_enabled, compile_stats, reset_compile_stats, set_compile_enabled,
    translate_module_owned_tiered, translate_module_tiered, CompileError, CompileStats,
    CompiledKind, CompiledTranslator, StreamBackend, TranslatorBackend,
};
pub use driver::{
    resolve_threads, threads_from_override, StageTimings, SynthError, SynthesisConfig,
    SynthesisOutcome, SynthesisReport, Synthesizer, TestStats,
};
pub use pertest::{OracleTest, PerTestTranslator};
pub use profile::{profile_module, ProfileTable, ProfiledInst};
pub use refine::{CandIdx, MStar, SynthFault};
pub use router::{
    chain_hops_if_whole, chain_persist_key, reset_router_stats, router_stats, Acquired,
    ComposedHop, ComposedTranslator, EdgeClass, EdgeInfo, HopKind, RouteOutcome, RoutePlan, Router,
    RouterStats, VersionGraph, COST_COLD_US, COST_HOT_US, COST_WARM_US, OBSERVED_CAP_US,
};
pub use store::{
    active_store, oracle_corpus, reset_store_stats, set_active_store, store_stats, GcReport,
    StoreConfig, StoreEntry, StoreKey, StoreStats, TranslatorStore, ValidationMode, VerifyOutcome,
};
pub use typegraph::TypeGraph;
pub use wir::{
    reset_wir_cache, synthesize_wir, validate_wir_translator, wir_pair_is_hot, wir_store_name,
    wir_translator_cached, WirOutcome, WirSynthError, WirSynthStats, WirTranslator,
};
