//! The version-graph router: any-to-any translation over the catalog.
//!
//! The paper's headline scenario is a set of IR versions with *any-to-any*
//! compatibility. Direct synthesis can serve every pair, but it is the
//! most expensive way to answer a request whose endpoints are already
//! bridged by warm translators. This module models the catalog as a
//! directed graph — nodes are [`IrVersion::CATALOG`], an edge `a -> b` is
//! the pairwise translator for `(a, b)` — and answers a `(from, to)`
//! request by cheapest-path composition over that graph.
//!
//! ## Edge-cost formula
//!
//! Each edge is classified by how much work acquiring its translator
//! costs *right now*:
//!
//! * **Hot** — a successful outcome sits in the in-memory
//!   [`TranslatorCache`] ([`COST_HOT_US`] ≈ an `Arc` clone);
//! * **Warm** — a persisted `.sirt` entry exists in the attached
//!   [`TranslatorStore`] ([`COST_WARM_US`] ≈ read + validate);
//! * **Cold** — the translator must be synthesized ([`COST_COLD_US`] ≈
//!   a measured full-corpus synthesis).
//!
//! `cost(edge) = class_cost_us + observed_hop_us`, where `observed_hop_us`
//! is the mean duration of `route.hop` / `serve.translate` spans recorded
//! by [`siro_trace`] for that pair (zero when tracing is off or the pair
//! has no traffic yet). The unit is "expected microseconds to serve one
//! request through this edge", so path costs add meaningfully.
//!
//! ## Fallback ladder
//!
//! 1. cheapest path over the graph (direct edges compete on cost like any
//!    other path);
//! 2. if acquiring any hop of a composed path fails, fall back to direct
//!    synthesis of the full pair;
//! 3. if direct synthesis also fails, the error propagates to the caller.
//!
//! Composed chains are memoized per process (the router's composed cache)
//! and persisted as first-class store entries: a [`ComposedTranslator`]
//! has its own persist key and a plaintext `.sirc` manifest naming each
//! hop's `.sirt` entry (see [`TranslatorStore::save_chain`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use siro_ir::{IrVersion, Module};

use crate::cache::{CacheLookup, TranslatorCache};
use crate::driver::{SynthError, SynthesisConfig, SynthesisOutcome};
use crate::persist::fnv1a64;
use crate::pertest::OracleTest;
use crate::store::{active_store, oracle_corpus, StoreKey, TranslatorStore};

/// Cost (µs) of an edge whose translator is in the in-memory cache.
pub const COST_HOT_US: u64 = 10;
/// Cost (µs) of an edge whose translator is persisted in the store.
pub const COST_WARM_US: u64 = 2_000;
/// Cost (µs) of an edge whose translator must be synthesized.
pub const COST_COLD_US: u64 = 50_000;
/// Cap on the observed-latency term, so one pathological trace sample
/// cannot make a hot edge look colder than synthesis.
pub const OBSERVED_CAP_US: u64 = COST_COLD_US / 2;

/// How an edge's translator would be acquired right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// In the in-memory [`TranslatorCache`].
    Hot,
    /// Persisted in the attached [`TranslatorStore`].
    Warm,
    /// Must be synthesized.
    Cold,
}

impl std::fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EdgeClass::Hot => "hot",
            EdgeClass::Warm => "warm",
            EdgeClass::Cold => "cold",
        })
    }
}

/// One edge of the version graph, with its cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Source version of the hop.
    pub from: IrVersion,
    /// Target version of the hop.
    pub to: IrVersion,
    /// Acquisition class at snapshot time.
    pub class: EdgeClass,
    /// Mean observed per-hop translate latency (µs) from trace spans,
    /// when any traffic has been recorded.
    pub observed_us: Option<u64>,
    /// Total edge cost: class cost + capped observed latency.
    pub cost_us: u64,
}

/// A snapshot of the version graph: every node of the catalog (or a
/// custom node set) and every synthesizable edge with its current cost.
#[derive(Debug, Clone)]
pub struct VersionGraph {
    nodes: Vec<IrVersion>,
    edges: HashMap<(IrVersion, IrVersion), EdgeInfo>,
}

impl VersionGraph {
    /// Builds a graph from an explicit edge set. [`Router::graph`] builds
    /// the live snapshot; this constructor exists for planners and tests
    /// that need a synthetic cost landscape (e.g. difftest fuzzing path
    /// selection over randomized warm/cold mixes).
    pub fn from_edges(nodes: Vec<IrVersion>, edges: Vec<EdgeInfo>) -> Self {
        VersionGraph {
            nodes,
            edges: edges.into_iter().map(|e| ((e.from, e.to), e)).collect(),
        }
    }

    /// The node set.
    pub fn nodes(&self) -> &[IrVersion] {
        &self.nodes
    }

    /// The edge `from -> to`, if it exists in this snapshot.
    pub fn edge(&self, from: IrVersion, to: IrVersion) -> Option<&EdgeInfo> {
        self.edges.get(&(from, to))
    }

    /// Number of edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Cheapest path `from -> to` by summed edge cost (Dijkstra; ties
    /// broken toward fewer hops, then lower version order, so plans are
    /// deterministic). `from == to` yields an empty-hop plan.
    pub fn cheapest_path(&self, from: IrVersion, to: IrVersion) -> Option<RoutePlan> {
        if !self.nodes.contains(&from) || !self.nodes.contains(&to) {
            return None;
        }
        if from == to {
            return Some(RoutePlan {
                from,
                to,
                hops: Vec::new(),
                cost_us: 0,
            });
        }
        // dist: node -> (cost, hops); prev: node -> predecessor.
        let mut dist: HashMap<IrVersion, (u64, usize)> = HashMap::new();
        let mut prev: HashMap<IrVersion, IrVersion> = HashMap::new();
        let mut done: Vec<IrVersion> = Vec::new();
        dist.insert(from, (0, 0));
        loop {
            let (&node, &(cost, hops)) = dist
                .iter()
                .filter(|(v, _)| !done.contains(v))
                .min_by_key(|(v, &(c, h))| (c, h, **v))?;
            if node == to {
                let mut hops_rev = Vec::new();
                let mut cur = to;
                while cur != from {
                    let p = prev[&cur];
                    hops_rev.push(self.edges[&(p, cur)]);
                    cur = p;
                }
                hops_rev.reverse();
                return Some(RoutePlan {
                    from,
                    to,
                    hops: hops_rev,
                    cost_us: cost,
                });
            }
            done.push(node);
            for (&(a, b), e) in &self.edges {
                if a != node {
                    continue;
                }
                let next = (cost + e.cost_us, hops + 1);
                let better = match dist.get(&b) {
                    None => true,
                    Some(&(c, h)) => next < (c, h),
                };
                if better {
                    dist.insert(b, next);
                    prev.insert(b, node);
                }
            }
        }
    }
}

/// The route chosen for one `(from, to)` request.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// Requested source version.
    pub from: IrVersion,
    /// Requested target version.
    pub to: IrVersion,
    /// The hops, in order; empty for `from == to`, one entry for a
    /// direct route.
    pub hops: Vec<EdgeInfo>,
    /// Summed edge cost.
    pub cost_us: u64,
}

impl RoutePlan {
    /// Number of hops (0 = identity, 1 = direct, 2+ = composed).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Whether this plan needs no composition.
    pub fn is_direct(&self) -> bool {
        self.hops.len() <= 1
    }

    /// One-line rendering, e.g. `13.0 -> 12.0 -> 3.6 (2 hops, cost 2010us)`.
    pub fn describe(&self) -> String {
        let mut path = self.from.to_string();
        for hop in &self.hops {
            path.push_str(&format!(" -> {}", hop.to));
        }
        format!(
            "{path} ({} hop{}, cost {}us)",
            self.hop_count(),
            if self.hop_count() == 1 { "" } else { "s" },
            self.cost_us
        )
    }
}

/// One leg of a composed translator.
#[derive(Debug, Clone)]
pub struct ComposedHop {
    /// Hop source version.
    pub from: IrVersion,
    /// Hop target version.
    pub to: IrVersion,
    /// The hop's synthesized translator.
    pub outcome: Arc<SynthesisOutcome>,
    /// The hop's `.sirt` entry file name (its persistent identity).
    pub entry_file: String,
}

/// A chain of pairwise translators serving one `(from, to)` pair by
/// module-level composition: the module is translated hop by hop, each
/// hop running the full skeleton translation into its own target version.
#[derive(Debug, Clone)]
pub struct ComposedTranslator {
    /// Composed source version.
    pub from: IrVersion,
    /// Composed target version.
    pub to: IrVersion,
    /// The legs, in application order.
    pub hops: Vec<ComposedHop>,
    /// The plan this chain was built from.
    pub plan: RoutePlan,
}

impl ComposedTranslator {
    /// Number of legs.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Translates a whole module through every hop in order.
    ///
    /// # Errors
    ///
    /// Propagates the first hop's [`siro_core::TranslateError`].
    pub fn translate_module(&self, module: &Module) -> siro_core::TranslateResult<Module> {
        self.translate_module_owned(module.clone())
    }

    /// [`ComposedTranslator::translate_module`] for an *owned* module:
    /// every hop consumes the previous hop's output through the tiered
    /// path ([`crate::translate_module_owned_tiered`]), so a fully
    /// compiled chain rewrites one module in place hop after hop — no
    /// per-hop target module, no intermediate clones.
    ///
    /// # Errors
    ///
    /// Propagates the first hop's [`siro_core::TranslateError`].
    pub fn translate_module_owned(&self, module: Module) -> siro_core::TranslateResult<Module> {
        let mut current = module;
        for hop in &self.hops {
            let sp = siro_trace::span!("route.hop", "{}->{}", hop.from, hop.to);
            let next =
                crate::compile::translate_module_owned_tiered(&hop.outcome, hop.to, current)?;
            drop(sp);
            current = next;
        }
        Ok(current)
    }

    /// The chain's persist key (see [`chain_persist_key`]).
    pub fn persist_key(&self) -> String {
        chain_persist_key(
            self.from,
            self.to,
            self.hops.iter().map(|h| h.entry_file.as_str()),
        )
    }

    /// The plaintext manifest persisted as the chain's `.sirc` entry.
    pub fn manifest(&self) -> String {
        let mut out = format!(
            "SIRC 1\nfrom {}\nto {}\ncost {}\n",
            self.from, self.to, self.plan.cost_us
        );
        for hop in &self.hops {
            out.push_str(&format!("hop {} {} {}\n", hop.from, hop.to, hop.entry_file));
        }
        out
    }
}

/// How [`Router::acquire`] answered a request.
#[derive(Debug, Clone)]
pub enum RouteOutcome {
    /// A single pairwise translator (direct route).
    Direct(Arc<SynthesisOutcome>),
    /// A composed chain.
    Composed(Arc<ComposedTranslator>),
}

/// A resolved `(from, to)` acquisition.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// The translator to run.
    pub outcome: RouteOutcome,
    /// The plan that produced it (the *attempted* plan; when the fallback
    /// ladder demoted a composed plan to direct synthesis,
    /// [`Acquired::fell_back`] is set and the outcome is direct).
    pub plan: RoutePlan,
    /// `true` when any synthesis ran during this call.
    pub fresh: bool,
    /// `true` when a composed hop failed and direct synthesis answered.
    pub fell_back: bool,
}

/// A hop resolver: returns the translator outcome for one pair plus
/// whether this call synthesized it. The serving layer passes a
/// coalescer-backed resolver; the default resolver goes straight to
/// [`TranslatorCache`].
pub type HopResolver<'a> = &'a dyn Fn(
    IrVersion,
    IrVersion,
    &[OracleTest],
) -> Result<(Arc<SynthesisOutcome>, bool), SynthError>;

// ---- process-wide router counters (read by serve STATS/METRICS) ---------

static PLANS: AtomicU64 = AtomicU64::new(0);
static DIRECT: AtomicU64 = AtomicU64::new(0);
static COMPOSED: AtomicU64 = AtomicU64::new(0);
static COMPOSED_CACHED: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CHAINS_PERSISTED: AtomicU64 = AtomicU64::new(0);
static MAX_HOPS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Route plans computed.
    pub plans: u64,
    /// Acquisitions answered by a direct (≤1 hop) route.
    pub direct: u64,
    /// Acquisitions answered by a composed chain (freshly built or
    /// cached).
    pub composed: u64,
    /// Composed acquisitions answered from the composed cache.
    pub composed_cached: u64,
    /// Composed plans demoted to direct synthesis by a failing hop.
    pub fallbacks: u64,
    /// Chain manifests persisted to the store.
    pub chains_persisted: u64,
    /// Longest hop count acquired so far.
    pub max_hops: u64,
}

/// Snapshot of the router counters.
pub fn router_stats() -> RouterStats {
    RouterStats {
        plans: PLANS.load(Ordering::Relaxed),
        direct: DIRECT.load(Ordering::Relaxed),
        composed: COMPOSED.load(Ordering::Relaxed),
        composed_cached: COMPOSED_CACHED.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        chains_persisted: CHAINS_PERSISTED.load(Ordering::Relaxed),
        max_hops: MAX_HOPS.load(Ordering::Relaxed),
    }
}

/// Zeroes the router counters (benches and tests).
pub fn reset_router_stats() {
    for c in [
        &PLANS,
        &DIRECT,
        &COMPOSED,
        &COMPOSED_CACHED,
        &FALLBACKS,
        &CHAINS_PERSISTED,
        &MAX_HOPS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

fn note_max_hops(hops: u64) {
    MAX_HOPS.fetch_max(hops, Ordering::Relaxed);
}

/// The version-graph router. One instance per engine / CLI invocation;
/// the counters it bumps are process-global so `STATS` can report them.
pub struct Router {
    nodes: Vec<IrVersion>,
    corpora: Mutex<PairMap<(Arc<Vec<OracleTest>>, u64)>>,
    composed: Mutex<PairMap<Arc<ComposedTranslator>>>,
}

/// Memoization table keyed by an ordered version pair.
type PairMap<T> = HashMap<(IrVersion, IrVersion), T>;

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// A router over the full [`IrVersion::CATALOG`].
    pub fn new() -> Self {
        Self::over(IrVersion::CATALOG.to_vec())
    }

    /// A router over a custom node set (tests, partial deployments).
    pub fn over(nodes: Vec<IrVersion>) -> Self {
        Router {
            nodes,
            corpora: Mutex::new(HashMap::new()),
            composed: Mutex::new(HashMap::new()),
        }
    }

    /// The memoized oracle corpus for a pair (empty corpus = no edge).
    pub fn corpus(&self, from: IrVersion, to: IrVersion) -> Arc<Vec<OracleTest>> {
        self.corpus_with_fingerprint(from, to).0
    }

    /// The memoized corpus *and* its [`crate::cache::corpus_fingerprint`].
    /// The fingerprint is hashed once per pair per router, not per plan —
    /// [`Router::graph`] probes every catalog edge on every call, and
    /// re-hashing ~n² corpora per request was the serving hot path's
    /// dominant cost.
    fn corpus_with_fingerprint(
        &self,
        from: IrVersion,
        to: IrVersion,
    ) -> (Arc<Vec<OracleTest>>, u64) {
        let mut map = self.corpora.lock().expect("router corpora poisoned");
        let (corpus, fp) = map.entry((from, to)).or_insert_with(|| {
            let corpus = Arc::new(oracle_corpus(from, to));
            let fp = crate::cache::corpus_fingerprint(&corpus);
            (corpus, fp)
        });
        (Arc::clone(corpus), *fp)
    }

    fn observed_latencies() -> HashMap<(IrVersion, IrVersion), u64> {
        let mut sums: HashMap<(IrVersion, IrVersion), (u64, u64)> = HashMap::new();
        for span in siro_trace::snapshot().spans {
            if span.name != "route.hop" && span.name != "serve.translate" {
                continue;
            }
            // Details look like `13.0->3.6` (route.hop) or
            // `13.0->3.6 synthesized` (serve.translate).
            let pair_str = span.detail.split(' ').next().unwrap_or("");
            let Some((a, b)) = pair_str.split_once("->") else {
                continue;
            };
            let (Some(a), Some(b)) = (parse_version(a), parse_version(b)) else {
                continue;
            };
            let e = sums.entry((a, b)).or_insert((0, 0));
            e.0 += span.dur_ns / 1_000;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(pair, (total_us, n))| (pair, total_us / n.max(1)))
            .collect()
    }

    /// Snapshots the version graph: classifies every edge against the
    /// in-memory cache and the attached store, and folds in observed
    /// per-hop latencies from the trace collector.
    pub fn graph(&self) -> VersionGraph {
        let store = active_store();
        let observed = Self::observed_latencies();
        let mut edges = HashMap::new();
        for &a in &self.nodes {
            for &b in &self.nodes {
                if a == b {
                    continue;
                }
                let (corpus, fp) = self.corpus_with_fingerprint(a, b);
                if corpus.is_empty() {
                    continue;
                }
                let config = SynthesisConfig::new(a, b);
                let class = if TranslatorCache::is_warm_fingerprint(&config, fp) {
                    EdgeClass::Hot
                } else if store
                    .as_ref()
                    .is_some_and(|s| s.entry_path(&StoreKey::new(&config, fp)).exists())
                {
                    EdgeClass::Warm
                } else {
                    EdgeClass::Cold
                };
                let class_cost = match class {
                    EdgeClass::Hot => COST_HOT_US,
                    EdgeClass::Warm => COST_WARM_US,
                    EdgeClass::Cold => COST_COLD_US,
                };
                let observed_us = observed.get(&(a, b)).copied();
                let cost_us = class_cost + observed_us.unwrap_or(0).min(OBSERVED_CAP_US);
                edges.insert(
                    (a, b),
                    EdgeInfo {
                        from: a,
                        to: b,
                        class,
                        observed_us,
                        cost_us,
                    },
                );
            }
        }
        VersionGraph {
            nodes: self.nodes.clone(),
            edges,
        }
    }

    /// Plans the cheapest route for `(from, to)` over a fresh graph
    /// snapshot. `None` when either endpoint is off-catalog or no path
    /// exists.
    pub fn plan(&self, from: IrVersion, to: IrVersion) -> Option<RoutePlan> {
        PLANS.fetch_add(1, Ordering::Relaxed);
        siro_trace::counter("route.plans", 1);
        let sp = siro_trace::span!("route.plan", "{from}->{to}");
        let plan = self.graph().cheapest_path(from, to);
        drop(sp);
        plan
    }

    /// Plans every ordered pair over one graph snapshot, row-major in
    /// catalog order (identity pairs included, as 0-hop plans). Pairs with
    /// no path are reported as `None` at their matrix position.
    pub fn matrix(&self) -> Vec<((IrVersion, IrVersion), Option<RoutePlan>)> {
        let graph = self.graph();
        let mut out = Vec::with_capacity(self.nodes.len() * self.nodes.len());
        for &a in &self.nodes {
            for &b in &self.nodes {
                out.push(((a, b), graph.cheapest_path(a, b)));
            }
        }
        out
    }

    /// Acquires a translator for `(from, to)` along the cheapest route,
    /// with the default [`TranslatorCache`]-backed hop resolver.
    ///
    /// # Errors
    ///
    /// [`SynthError`] when no route exists (reported as the direct pair's
    /// synthesis error) or when the entire fallback ladder failed.
    pub fn acquire(&self, from: IrVersion, to: IrVersion) -> Result<Acquired, SynthError> {
        self.acquire_with(from, to, &|a, b, tests| {
            TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(a, b), tests)
                .map(|CacheLookup { outcome, fresh, .. }| (outcome, fresh))
        })
    }

    /// [`Router::acquire`] with a caller-supplied hop resolver (the
    /// serving layer passes its coalescer so per-pair serving counters
    /// keep working).
    ///
    /// # Errors
    ///
    /// See [`Router::acquire`].
    pub fn acquire_with(
        &self,
        from: IrVersion,
        to: IrVersion,
        resolve: HopResolver<'_>,
    ) -> Result<Acquired, SynthError> {
        let plan = self.plan(from, to).unwrap_or_else(|| RoutePlan {
            from,
            to,
            // Off-graph or unreachable: attempt the direct pair anyway and
            // let its synthesis error speak.
            hops: Vec::new(),
            cost_us: COST_COLD_US,
        });
        note_max_hops(plan.hop_count() as u64);

        if plan.is_direct() {
            let (outcome, fresh) = resolve(from, to, &self.corpus(from, to))?;
            DIRECT.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("route.direct", 1);
            return Ok(Acquired {
                outcome: RouteOutcome::Direct(outcome),
                plan,
                fresh,
                fell_back: false,
            });
        }

        // Composed route: serve from the composed cache when possible.
        if let Some(chain) = self
            .composed
            .lock()
            .expect("router composed cache poisoned")
            .get(&(from, to))
        {
            COMPOSED.fetch_add(1, Ordering::Relaxed);
            COMPOSED_CACHED.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("route.composed_cached", 1);
            return Ok(Acquired {
                outcome: RouteOutcome::Composed(Arc::clone(chain)),
                plan,
                fresh: false,
                fell_back: false,
            });
        }

        match self.compose(&plan, resolve) {
            Ok((chain, fresh)) => {
                COMPOSED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.composed", 1);
                Ok(Acquired {
                    outcome: RouteOutcome::Composed(chain),
                    plan,
                    fresh,
                    fell_back: false,
                })
            }
            Err(_) => {
                // Fallback ladder step 2: a hop died; synthesize the pair
                // directly.
                FALLBACKS.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.fallbacks", 1);
                let (outcome, fresh) = resolve(from, to, &self.corpus(from, to))?;
                DIRECT.fetch_add(1, Ordering::Relaxed);
                Ok(Acquired {
                    outcome: RouteOutcome::Direct(outcome),
                    plan,
                    fresh,
                    fell_back: true,
                })
            }
        }
    }

    /// Builds (and memoizes + persists) the composed chain for a plan.
    fn compose(
        &self,
        plan: &RoutePlan,
        resolve: HopResolver<'_>,
    ) -> Result<(Arc<ComposedTranslator>, bool), SynthError> {
        let mut hops = Vec::with_capacity(plan.hops.len());
        let mut fresh = false;
        for edge in &plan.hops {
            let corpus = self.corpus(edge.from, edge.to);
            let (outcome, hop_fresh) = resolve(edge.from, edge.to, &corpus)?;
            fresh |= hop_fresh;
            let config = SynthesisConfig::new(edge.from, edge.to);
            let fp = crate::cache::corpus_fingerprint(&corpus);
            hops.push(ComposedHop {
                from: edge.from,
                to: edge.to,
                outcome,
                entry_file: StoreKey::new(&config, fp).file_name(),
            });
        }
        let chain = Arc::new(ComposedTranslator {
            from: plan.from,
            to: plan.to,
            hops,
            plan: plan.clone(),
        });
        self.composed
            .lock()
            .expect("router composed cache poisoned")
            .insert((plan.from, plan.to), Arc::clone(&chain));
        if let Some(store) = active_store() {
            if store
                .save_chain(&chain.persist_key(), &chain.manifest())
                .is_ok()
            {
                CHAINS_PERSISTED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.chains_persisted", 1);
            }
        }
        Ok((chain, fresh))
    }

    /// Composes a translator along an explicit node path, the caller
    /// choosing the route instead of the cost model — the byte-identity
    /// matrix checks and difftest's path-selection fuzzing exercise
    /// router alternates this way. Hops resolve through the process-wide
    /// [`TranslatorCache`]; the chain is returned without entering the
    /// router's composed-chain memo, so cost-driven serving is
    /// unaffected. Hop edges are rendered hot: once resolved, the chain
    /// holds every hop in memory.
    ///
    /// # Errors
    ///
    /// Propagates the first failing hop's [`SynthError`].
    ///
    /// # Panics
    ///
    /// When `path` has fewer than two nodes.
    pub fn compose_path(&self, path: &[IrVersion]) -> Result<ComposedTranslator, SynthError> {
        assert!(path.len() >= 2, "a route needs at least two nodes");
        let mut hops = Vec::with_capacity(path.len() - 1);
        let mut edges = Vec::with_capacity(path.len() - 1);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let corpus = self.corpus(a, b);
            let lookup =
                TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(a, b), &corpus)?;
            let config = SynthesisConfig::new(a, b);
            let fp = crate::cache::corpus_fingerprint(&corpus);
            hops.push(ComposedHop {
                from: a,
                to: b,
                outcome: lookup.outcome,
                entry_file: StoreKey::new(&config, fp).file_name(),
            });
            edges.push(EdgeInfo {
                from: a,
                to: b,
                class: EdgeClass::Hot,
                observed_us: None,
                cost_us: COST_HOT_US,
            });
        }
        let plan = RoutePlan {
            from: path[0],
            to: *path.last().expect("non-empty path"),
            cost_us: edges.iter().map(|e| e.cost_us).sum(),
            hops: edges,
        };
        Ok(ComposedTranslator {
            from: plan.from,
            to: plan.to,
            hops,
            plan,
        })
    }

    /// Number of chains currently memoized in the composed cache.
    pub fn composed_cached_count(&self) -> usize {
        self.composed
            .lock()
            .expect("router composed cache poisoned")
            .len()
    }
}

/// The persist key of a composed chain, e.g. `c13.0-t3.6-9e3779b97f4a7c15`:
/// the pair plus an FNV-1a hash over the ordered hop entry file names, so a
/// different path (or different hop knobs) gets a different key.
pub fn chain_persist_key<'a>(
    from: IrVersion,
    to: IrVersion,
    entry_files: impl Iterator<Item = &'a str>,
) -> String {
    let mut bytes = Vec::new();
    for file in entry_files {
        bytes.extend_from_slice(file.as_bytes());
        bytes.push(0);
    }
    format!(
        "c{}.{}-t{}.{}-{:016x}",
        from.major(),
        from.minor(),
        to.major(),
        to.minor(),
        fnv1a64(&bytes),
    )
}

fn parse_version(s: &str) -> Option<IrVersion> {
    let (maj, min) = s.split_once('.')?;
    Some(IrVersion::new(maj.parse().ok()?, min.parse().ok()?))
}

/// Validates a persisted chain manifest against a store: every named hop
/// entry must still exist. Returns the hop pairs when the chain is whole.
pub fn chain_hops_if_whole(
    store: &TranslatorStore,
    manifest: &str,
) -> Option<Vec<(IrVersion, IrVersion)>> {
    let mut hops = Vec::new();
    for line in manifest.lines() {
        let Some(rest) = line.strip_prefix("hop ") else {
            continue;
        };
        let mut parts = rest.split(' ');
        let from = parse_version(parts.next()?)?;
        let to = parse_version(parts.next()?)?;
        let entry_file = parts.next()?;
        if !store.dir().join(entry_file).exists() {
            return None;
        }
        hops.push((from, to));
    }
    (!hops.is_empty()).then_some(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::Skeleton;

    // NOTE: router counters are process-global and tests run concurrently,
    // so assertions use per-call results (plans, Acquired flags) and
    // counter *deltas* only where a unique pair guarantees isolation.

    fn small_router() -> Router {
        Router::over(vec![IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6])
    }

    #[test]
    fn cold_graph_plans_direct_routes() {
        let r = small_router();
        let plan = r.plan(IrVersion::V13_0, IrVersion::V3_6).expect("plan");
        assert_eq!(plan.hop_count(), 1, "{}", plan.describe());
        assert!(plan.is_direct());
    }

    #[test]
    fn identity_plans_zero_hops() {
        let r = small_router();
        let plan = r.plan(IrVersion::V13_0, IrVersion::V13_0).expect("plan");
        assert_eq!(plan.hop_count(), 0);
        assert_eq!(plan.cost_us, 0);
    }

    #[test]
    fn off_catalog_endpoint_has_no_plan() {
        let r = small_router();
        assert!(r.plan(IrVersion::new(2, 0), IrVersion::V3_6).is_none());
    }

    #[test]
    fn warm_hops_beat_a_cold_direct_edge() {
        // Hand-build a graph where 13.0->3.6 direct is cold but the two
        // hops through 12.0 are hot: the cheapest path must compose.
        let mk = |from, to, class, cost_us| EdgeInfo {
            from,
            to,
            class,
            observed_us: None,
            cost_us,
        };
        let (a, m, b) = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        let mut edges = HashMap::new();
        edges.insert((a, b), mk(a, b, EdgeClass::Cold, COST_COLD_US));
        edges.insert((a, m), mk(a, m, EdgeClass::Hot, COST_HOT_US));
        edges.insert((m, b), mk(m, b, EdgeClass::Hot, COST_HOT_US));
        let g = VersionGraph {
            nodes: vec![a, m, b],
            edges,
        };
        let plan = g.cheapest_path(a, b).expect("path");
        assert_eq!(plan.hop_count(), 2, "{}", plan.describe());
        assert_eq!(plan.hops[0].to, m);
        assert_eq!(plan.cost_us, 2 * COST_HOT_US);
    }

    #[test]
    fn ties_prefer_fewer_hops() {
        let mk = |from, to, cost_us| EdgeInfo {
            from,
            to,
            class: EdgeClass::Hot,
            observed_us: None,
            cost_us,
        };
        let (a, m, b) = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        let mut edges = HashMap::new();
        edges.insert((a, b), mk(a, b, 20));
        edges.insert((a, m), mk(a, m, 10));
        edges.insert((m, b), mk(m, b, 10));
        let g = VersionGraph {
            nodes: vec![a, m, b],
            edges,
        };
        let plan = g.cheapest_path(a, b).expect("path");
        assert_eq!(plan.hop_count(), 1, "equal cost must stay direct");
    }

    #[test]
    fn fallback_demotes_a_failing_composed_plan_to_direct() {
        // Warm the two hop edges so the plan composes, then hand acquire a
        // resolver that refuses the second hop: the fallback ladder must
        // answer with direct synthesis and set `fell_back`.
        let (a, m, b) = (IrVersion::V14_0, IrVersion::V12_0, IrVersion::V3_0);
        let r = Router::over(vec![a, m, b]);
        for (s, t) in [(a, m), (m, b)] {
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(s, t), &r.corpus(s, t))
                .expect("hop synthesis");
        }
        let plan = r.plan(a, b).expect("plan");
        assert_eq!(plan.hop_count(), 2, "{}", plan.describe());
        let acquired = r
            .acquire_with(a, b, &|s, t, tests| {
                if (s, t) == (m, b) {
                    return Err(SynthError::Api("injected hop failure".into()));
                }
                TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(s, t), tests)
                    .map(|l| (l.outcome, l.fresh))
            })
            .expect("fallback must answer");
        assert!(acquired.fell_back);
        assert!(matches!(acquired.outcome, RouteOutcome::Direct(_)));
    }

    #[test]
    fn composed_chain_is_memoized_and_byte_identical_to_direct() {
        let (a, m, b) = (IrVersion::V15_0, IrVersion::V13_0, IrVersion::V4_0);
        let r = Router::over(vec![a, m, b]);
        for (s, t) in [(a, m), (m, b)] {
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(s, t), &r.corpus(s, t))
                .expect("hop synthesis");
        }
        let first = r.acquire(a, b).expect("acquire");
        let RouteOutcome::Composed(chain) = &first.outcome else {
            panic!("warm hops must compose, got {:?}", first.plan.describe());
        };
        assert_eq!(chain.hop_count(), 2);
        assert_eq!(r.composed_cached_count(), 1);
        let second = r.acquire(a, b).expect("acquire again");
        let RouteOutcome::Composed(chain2) = &second.outcome else {
            panic!("second acquire must stay composed");
        };
        assert!(Arc::ptr_eq(chain, chain2), "chain must be memoized");
        assert!(!second.fresh);

        // Composed output equals the direct translator's output.
        let direct =
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(a, b), &r.corpus(a, b))
                .expect("direct synthesis");
        for case in siro_testcases::corpus_for_pair(a, b).iter().take(8) {
            let module = case.build(a);
            let via_chain = chain.translate_module(&module).expect("chain translate");
            let via_direct = Skeleton::new(b)
                .translate_module(&module, &direct.translator)
                .expect("direct translate");
            assert_eq!(
                siro_ir::write::write_module(&via_chain),
                siro_ir::write::write_module(&via_direct),
                "case {}",
                case.name
            );
        }
    }

    #[test]
    fn persist_key_distinguishes_paths() {
        let (from, to) = (IrVersion::V13_0, IrVersion::V3_6);
        let via_12 = ["s13.0-t12.0-0.sirt", "s12.0-t3.6-0.sirt"];
        let via_4 = ["s13.0-t4.0-0.sirt", "s4.0-t3.6-0.sirt"];
        let k12 = chain_persist_key(from, to, via_12.into_iter());
        let k4 = chain_persist_key(from, to, via_4.into_iter());
        assert_ne!(k12, k4, "different paths must get different keys");
        assert!(k12.starts_with("c13.0-t3.6-"));
    }
}
