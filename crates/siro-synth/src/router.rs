//! The version-graph router: any-to-any translation over the catalog.
//!
//! The paper's headline scenario is a set of IR versions with *any-to-any*
//! compatibility. Direct synthesis can serve every pair, but it is the
//! most expensive way to answer a request whose endpoints are already
//! bridged by warm translators. This module models the catalog as a
//! directed graph and answers a `(from, to)` request by cheapest-path
//! composition over that graph.
//!
//! ## Dialect-aware nodes
//!
//! Nodes are keyed by `(dialect, version)` ([`DialectVersion`]), not by a
//! flat version number — `1.0` in the Siro family and `1.0` in the WIR
//! family are different nodes. Edges come in three kinds:
//!
//! * **Siro → Siro** — the synthesized pairwise translator for the pair
//!   (exists when the pair has an oracle corpus);
//! * **WIR → WIR** — the synthesized WIR translator
//!   ([`crate::wir::wir_translator_cached`]; every ordered catalog pair);
//! * **Siro ↔ WIR** — a validated bridge at one of the
//!   [`crate::bridge::BRIDGE_ANCHORS`], in either direction. Non-anchor
//!   cross-dialect pairs get **no** edge, so a request whose endpoints
//!   span dialects with no anchor on any path is reported *unreachable*
//!   rather than served by a bogus chain.
//!
//! [`Router::new`] keeps the historical Siro-only node set (nothing about
//! pure-Siro serving changes); [`Router::with_wir`] adds the WIR catalog
//! and the anchor bridges, after which cross-dialect hops compose like any
//! other edge.
//!
//! ## Edge-cost formula
//!
//! Each edge is classified by how much work acquiring its translator
//! costs *right now*:
//!
//! * **Hot** — a successful outcome sits in the in-memory cache for its
//!   kind ([`COST_HOT_US`] ≈ an `Arc` clone);
//! * **Warm** — a persisted entry (`.sirt`, `.sirw`, or `.sirb`) exists in
//!   the attached [`TranslatorStore`] ([`COST_WARM_US`] ≈ read + validate);
//! * **Cold** — the translator must be synthesized or the bridge validated
//!   ([`COST_COLD_US`] ≈ a measured full-corpus synthesis).
//!
//! `cost(edge) = class_cost_us + observed_hop_us`, where `observed_hop_us`
//! is the mean duration of `route.hop` / `serve.translate` spans recorded
//! by [`siro_trace`] for that pair (zero when tracing is off or the pair
//! has no traffic yet). The unit is "expected microseconds to serve one
//! request through this edge", so path costs add meaningfully.
//!
//! ## Fallback ladder
//!
//! 1. cheapest path over the graph (direct edges compete on cost like any
//!    other path);
//! 2. if acquiring any hop of a composed path fails and both endpoints
//!    are Siro versions, fall back to direct synthesis of the full pair;
//! 3. if direct synthesis also fails — or the endpoints span dialects,
//!    where no direct synthesis exists — the error propagates.
//!
//! Composed chains are memoized per process (the router's composed cache)
//! and persisted as first-class store entries: a [`ComposedTranslator`]
//! has its own persist key and a plaintext `.sirc` manifest naming each
//! hop's store entry (see [`TranslatorStore::save_chain`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use siro_ir::{Dialect, DialectVersion, IrVersion, Module};
use siro_wir::{AnyModule, WirVersion};

use crate::bridge::{
    bridge_cached, bridge_is_hot, bridge_store_name, is_anchor_pair, BridgeOutcome,
};
use crate::cache::{CacheLookup, TranslatorCache};
use crate::driver::{SynthError, SynthesisConfig, SynthesisOutcome};
use crate::persist::fnv1a64;
use crate::pertest::OracleTest;
use crate::store::{active_store, oracle_corpus, StoreKey, TranslatorStore};
use crate::wir::{wir_pair_is_hot, wir_store_name, wir_translator_cached, WirOutcome};

/// Cost (µs) of an edge whose translator is in the in-memory cache.
pub const COST_HOT_US: u64 = 10;
/// Cost (µs) of an edge whose translator is persisted in the store.
pub const COST_WARM_US: u64 = 2_000;
/// Cost (µs) of an edge whose translator must be synthesized.
pub const COST_COLD_US: u64 = 50_000;
/// Cap on the observed-latency term, so one pathological trace sample
/// cannot make a hot edge look colder than synthesis.
pub const OBSERVED_CAP_US: u64 = COST_COLD_US / 2;

/// Extracts the WIR-family version, if `v` names one.
fn as_wir(v: DialectVersion) -> Option<WirVersion> {
    matches!(v.dialect, Dialect::Wir).then(|| WirVersion::new(v.major, v.minor))
}

/// How an edge's translator would be acquired right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// In the in-memory cache for its kind.
    Hot,
    /// Persisted in the attached [`TranslatorStore`].
    Warm,
    /// Must be synthesized (or, for a bridge, validated).
    Cold,
}

impl std::fmt::Display for EdgeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EdgeClass::Hot => "hot",
            EdgeClass::Warm => "warm",
            EdgeClass::Cold => "cold",
        })
    }
}

/// One edge of the version graph, with its cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Source node of the hop.
    pub from: DialectVersion,
    /// Target node of the hop.
    pub to: DialectVersion,
    /// Acquisition class at snapshot time.
    pub class: EdgeClass,
    /// Mean observed per-hop translate latency (µs) from trace spans,
    /// when any traffic has been recorded.
    pub observed_us: Option<u64>,
    /// Total edge cost: class cost + capped observed latency.
    pub cost_us: u64,
}

/// A snapshot of the version graph: every node of the catalog (or a
/// custom node set) and every synthesizable edge with its current cost.
#[derive(Debug, Clone)]
pub struct VersionGraph {
    nodes: Vec<DialectVersion>,
    edges: HashMap<(DialectVersion, DialectVersion), EdgeInfo>,
}

impl VersionGraph {
    /// Builds a graph from an explicit edge set. [`Router::graph`] builds
    /// the live snapshot; this constructor exists for planners and tests
    /// that need a synthetic cost landscape (e.g. difftest fuzzing path
    /// selection over randomized warm/cold mixes).
    pub fn from_edges<N: Into<DialectVersion>>(nodes: Vec<N>, edges: Vec<EdgeInfo>) -> Self {
        VersionGraph {
            nodes: nodes.into_iter().map(Into::into).collect(),
            edges: edges.into_iter().map(|e| ((e.from, e.to), e)).collect(),
        }
    }

    /// The node set.
    pub fn nodes(&self) -> &[DialectVersion] {
        &self.nodes
    }

    /// The edge `from -> to`, if it exists in this snapshot.
    pub fn edge(
        &self,
        from: impl Into<DialectVersion>,
        to: impl Into<DialectVersion>,
    ) -> Option<&EdgeInfo> {
        self.edges.get(&(from.into(), to.into()))
    }

    /// Number of edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Cheapest path `from -> to` by summed edge cost (Dijkstra; ties
    /// broken toward fewer hops, then lower node order, so plans are
    /// deterministic). `from == to` yields an empty-hop plan.
    pub fn cheapest_path(
        &self,
        from: impl Into<DialectVersion>,
        to: impl Into<DialectVersion>,
    ) -> Option<RoutePlan> {
        let (from, to) = (from.into(), to.into());
        if !self.nodes.contains(&from) || !self.nodes.contains(&to) {
            return None;
        }
        if from == to {
            return Some(RoutePlan {
                from,
                to,
                hops: Vec::new(),
                cost_us: 0,
            });
        }
        // dist: node -> (cost, hops); prev: node -> predecessor.
        let mut dist: HashMap<DialectVersion, (u64, usize)> = HashMap::new();
        let mut prev: HashMap<DialectVersion, DialectVersion> = HashMap::new();
        let mut done: Vec<DialectVersion> = Vec::new();
        dist.insert(from, (0, 0));
        loop {
            let (&node, &(cost, hops)) = dist
                .iter()
                .filter(|(v, _)| !done.contains(v))
                .min_by_key(|(v, &(c, h))| (c, h, **v))?;
            if node == to {
                let mut hops_rev = Vec::new();
                let mut cur = to;
                while cur != from {
                    let p = prev[&cur];
                    hops_rev.push(self.edges[&(p, cur)]);
                    cur = p;
                }
                hops_rev.reverse();
                return Some(RoutePlan {
                    from,
                    to,
                    hops: hops_rev,
                    cost_us: cost,
                });
            }
            done.push(node);
            for (&(a, b), e) in &self.edges {
                if a != node {
                    continue;
                }
                let next = (cost + e.cost_us, hops + 1);
                let better = match dist.get(&b) {
                    None => true,
                    Some(&(c, h)) => next < (c, h),
                };
                if better {
                    dist.insert(b, next);
                    prev.insert(b, node);
                }
            }
        }
    }
}

/// The route chosen for one `(from, to)` request.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// Requested source node.
    pub from: DialectVersion,
    /// Requested target node.
    pub to: DialectVersion,
    /// The hops, in order; empty for `from == to`, one entry for a
    /// direct route.
    pub hops: Vec<EdgeInfo>,
    /// Summed edge cost.
    pub cost_us: u64,
}

impl RoutePlan {
    /// Number of hops (0 = identity, 1 = direct, 2+ = composed).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Whether this plan needs no composition.
    pub fn is_direct(&self) -> bool {
        self.hops.len() <= 1
    }

    /// Whether every node on the plan (endpoints and hops) is a
    /// Siro-family version.
    pub fn is_all_siro(&self) -> bool {
        self.from.dialect == Dialect::Siro
            && self.to.dialect == Dialect::Siro
            && self
                .hops
                .iter()
                .all(|h| h.from.dialect == Dialect::Siro && h.to.dialect == Dialect::Siro)
    }

    /// One-line rendering, e.g. `13.0 -> 12.0 -> 3.6 (2 hops, cost 2010us)`.
    pub fn describe(&self) -> String {
        let mut path = self.from.to_string();
        for hop in &self.hops {
            path.push_str(&format!(" -> {}", hop.to));
        }
        format!(
            "{path} ({} hop{}, cost {}us)",
            self.hop_count(),
            if self.hop_count() == 1 { "" } else { "s" },
            self.cost_us
        )
    }
}

/// The translator carried by one leg of a composed chain.
#[derive(Debug, Clone)]
pub enum HopKind {
    /// A synthesized Siro pairwise translator.
    Siro(Arc<SynthesisOutcome>),
    /// A synthesized WIR translator.
    Wir(Arc<WirOutcome>),
    /// A validated bridge, applied Siro → WIR (lowering).
    Lower(Arc<BridgeOutcome>),
    /// A validated bridge, applied WIR → Siro (raising).
    Raise(Arc<BridgeOutcome>),
}

/// One leg of a composed translator.
#[derive(Debug, Clone)]
pub struct ComposedHop {
    /// Hop source node.
    pub from: DialectVersion,
    /// Hop target node.
    pub to: DialectVersion,
    /// The hop's translator.
    pub kind: HopKind,
    /// The hop's store entry file name (its persistent identity:
    /// `.sirt` for Siro hops, `.sirw` for WIR hops, `.sirb` for bridges).
    pub entry_file: String,
}

impl ComposedHop {
    /// The Siro synthesis outcome, when this is a Siro hop.
    pub fn siro_outcome(&self) -> Option<&Arc<SynthesisOutcome>> {
        match &self.kind {
            HopKind::Siro(o) => Some(o),
            _ => None,
        }
    }
}

fn hop_dialect_error(hop: &ComposedHop, got: &AnyModule) -> siro_core::TranslateError {
    siro_core::TranslateError::Api(siro_api::ApiError::Unsupported(format!(
        "chain hop {} -> {} fed a {} module",
        hop.from,
        hop.to,
        got.dialect_version()
    )))
}

fn hop_error(hop: &ComposedHop, e: impl std::fmt::Display) -> siro_core::TranslateError {
    siro_core::TranslateError::Api(siro_api::ApiError::Unsupported(format!(
        "chain hop {} -> {}: {e}",
        hop.from, hop.to
    )))
}

/// A chain of pairwise translators serving one `(from, to)` pair by
/// module-level composition: the module is translated hop by hop, each
/// hop running its full translation into its own target version. Hops may
/// cross dialects (through bridge legs), so the unit of composition is an
/// [`AnyModule`].
#[derive(Debug, Clone)]
pub struct ComposedTranslator {
    /// Composed source node.
    pub from: DialectVersion,
    /// Composed target node.
    pub to: DialectVersion,
    /// The legs, in application order.
    pub hops: Vec<ComposedHop>,
    /// The plan this chain was built from.
    pub plan: RoutePlan,
}

impl ComposedTranslator {
    /// Number of legs.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Translates a whole module through every hop in order. The input
    /// dialect must match `from`; Siro-only chains behave exactly as the
    /// pre-dialect router did.
    ///
    /// # Errors
    ///
    /// Propagates the first hop's failure as a
    /// [`siro_core::TranslateError`].
    pub fn translate_any_owned(&self, module: AnyModule) -> siro_core::TranslateResult<AnyModule> {
        let mut current = module;
        for hop in &self.hops {
            let sp = siro_trace::span!("route.hop", "{}->{}", hop.from, hop.to);
            let next = match (&hop.kind, current) {
                (HopKind::Siro(outcome), AnyModule::Siro(m)) => {
                    let to = hop.to.as_siro().expect("siro hop targets a siro version");
                    AnyModule::Siro(crate::compile::translate_module_owned_tiered(
                        outcome, to, m,
                    )?)
                }
                (HopKind::Wir(outcome), AnyModule::Wir(w)) => AnyModule::Wir(
                    outcome
                        .translator
                        .translate_module(&w)
                        .map_err(|e| hop_error(hop, e))?,
                ),
                (HopKind::Lower(bridge), AnyModule::Siro(m)) => AnyModule::Wir(
                    crate::bridge::lower_module(&m, bridge.wir).map_err(|e| hop_error(hop, e))?,
                ),
                (HopKind::Raise(bridge), AnyModule::Wir(w)) => AnyModule::Siro(
                    crate::bridge::raise_module(&w, bridge.siro).map_err(|e| hop_error(hop, e))?,
                ),
                (_, got) => return Err(hop_dialect_error(hop, &got)),
            };
            drop(sp);
            current = next;
        }
        Ok(current)
    }

    /// Translates a whole Siro module through every hop in order.
    ///
    /// # Errors
    ///
    /// Propagates the first hop's [`siro_core::TranslateError`]; a chain
    /// ending at a WIR node reports a dialect mismatch.
    pub fn translate_module(&self, module: &Module) -> siro_core::TranslateResult<Module> {
        self.translate_module_owned(module.clone())
    }

    /// [`ComposedTranslator::translate_module`] for an *owned* module:
    /// every hop consumes the previous hop's output through the tiered
    /// path ([`crate::translate_module_owned_tiered`]), so a fully
    /// compiled chain rewrites one module in place hop after hop — no
    /// per-hop target module, no intermediate clones.
    ///
    /// # Errors
    ///
    /// Propagates the first hop's [`siro_core::TranslateError`].
    pub fn translate_module_owned(&self, module: Module) -> siro_core::TranslateResult<Module> {
        match self.translate_any_owned(AnyModule::Siro(module))? {
            AnyModule::Siro(m) => Ok(m),
            AnyModule::Wir(_) => Err(siro_core::TranslateError::Api(
                siro_api::ApiError::Unsupported(format!(
                    "chain {} -> {} ends at a WIR node; use translate_any_owned",
                    self.from, self.to
                )),
            )),
        }
    }

    /// The chain's persist key (see [`chain_persist_key`]).
    pub fn persist_key(&self) -> String {
        chain_persist_key(
            self.from,
            self.to,
            self.hops.iter().map(|h| h.entry_file.as_str()),
        )
    }

    /// The plaintext manifest persisted as the chain's `.sirc` entry.
    pub fn manifest(&self) -> String {
        let mut out = format!(
            "SIRC 1\nfrom {}\nto {}\ncost {}\n",
            self.from, self.to, self.plan.cost_us
        );
        for hop in &self.hops {
            out.push_str(&format!("hop {} {} {}\n", hop.from, hop.to, hop.entry_file));
        }
        out
    }
}

/// How [`Router::acquire`] answered a request.
#[derive(Debug, Clone)]
pub enum RouteOutcome {
    /// A single pairwise translator (direct Siro route).
    Direct(Arc<SynthesisOutcome>),
    /// A composed chain (including every WIR or cross-dialect route).
    Composed(Arc<ComposedTranslator>),
}

/// A resolved `(from, to)` acquisition.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// The translator to run.
    pub outcome: RouteOutcome,
    /// The plan that produced it (the *attempted* plan; when the fallback
    /// ladder demoted a composed plan to direct synthesis,
    /// [`Acquired::fell_back`] is set and the outcome is direct).
    pub plan: RoutePlan,
    /// `true` when any synthesis ran during this call.
    pub fresh: bool,
    /// `true` when a composed hop failed and direct synthesis answered.
    pub fell_back: bool,
}

/// A hop resolver: returns the translator outcome for one Siro pair plus
/// whether this call synthesized it. The serving layer passes a
/// coalescer-backed resolver; the default resolver goes straight to
/// [`TranslatorCache`]. WIR and bridge hops resolve through their own
/// process caches and are not routed through this hook.
pub type HopResolver<'a> = &'a dyn Fn(
    IrVersion,
    IrVersion,
    &[OracleTest],
) -> Result<(Arc<SynthesisOutcome>, bool), SynthError>;

// ---- process-wide router counters (read by serve STATS/METRICS) ---------

static PLANS: AtomicU64 = AtomicU64::new(0);
static DIRECT: AtomicU64 = AtomicU64::new(0);
static COMPOSED: AtomicU64 = AtomicU64::new(0);
static COMPOSED_CACHED: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CHAINS_PERSISTED: AtomicU64 = AtomicU64::new(0);
static MAX_HOPS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Route plans computed.
    pub plans: u64,
    /// Acquisitions answered by a direct (≤1 hop) route.
    pub direct: u64,
    /// Acquisitions answered by a composed chain (freshly built or
    /// cached).
    pub composed: u64,
    /// Composed acquisitions answered from the composed cache.
    pub composed_cached: u64,
    /// Composed plans demoted to direct synthesis by a failing hop.
    pub fallbacks: u64,
    /// Chain manifests persisted to the store.
    pub chains_persisted: u64,
    /// Longest hop count acquired so far.
    pub max_hops: u64,
}

/// Snapshot of the router counters.
pub fn router_stats() -> RouterStats {
    RouterStats {
        plans: PLANS.load(Ordering::Relaxed),
        direct: DIRECT.load(Ordering::Relaxed),
        composed: COMPOSED.load(Ordering::Relaxed),
        composed_cached: COMPOSED_CACHED.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        chains_persisted: CHAINS_PERSISTED.load(Ordering::Relaxed),
        max_hops: MAX_HOPS.load(Ordering::Relaxed),
    }
}

/// Zeroes the router counters (benches and tests).
pub fn reset_router_stats() {
    for c in [
        &PLANS,
        &DIRECT,
        &COMPOSED,
        &COMPOSED_CACHED,
        &FALLBACKS,
        &CHAINS_PERSISTED,
        &MAX_HOPS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

fn note_max_hops(hops: u64) {
    MAX_HOPS.fetch_max(hops, Ordering::Relaxed);
}

/// The version-graph router. One instance per engine / CLI invocation;
/// the counters it bumps are process-global so `STATS` can report them.
pub struct Router {
    nodes: Vec<DialectVersion>,
    corpora: Mutex<PairMap<(Arc<Vec<OracleTest>>, u64)>>,
    composed: Mutex<HashMap<(DialectVersion, DialectVersion), Arc<ComposedTranslator>>>,
}

/// Memoization table keyed by an ordered Siro version pair.
type PairMap<T> = HashMap<(IrVersion, IrVersion), T>;

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// A router over the full Siro [`IrVersion::CATALOG`] (no WIR nodes;
    /// the historical single-dialect behaviour).
    pub fn new() -> Self {
        Self::over(IrVersion::CATALOG.to_vec())
    }

    /// A router over both catalogs: every Siro version, every WIR version
    /// ([`WirVersion::CATALOG`]), and the anchor bridges between them.
    pub fn with_wir() -> Self {
        let mut nodes: Vec<DialectVersion> = IrVersion::CATALOG.iter().map(|&v| v.into()).collect();
        nodes.extend(WirVersion::CATALOG.iter().map(|&v| DialectVersion::from(v)));
        Self::over_dialects(nodes)
    }

    /// A router over a custom Siro node set (tests, partial deployments).
    pub fn over(nodes: Vec<IrVersion>) -> Self {
        Self::over_dialects(nodes.into_iter().map(Into::into).collect())
    }

    /// A router over an explicit dialect-qualified node set.
    pub fn over_dialects(nodes: Vec<DialectVersion>) -> Self {
        Router {
            nodes,
            corpora: Mutex::new(HashMap::new()),
            composed: Mutex::new(HashMap::new()),
        }
    }

    /// The memoized oracle corpus for a Siro pair (empty corpus = no
    /// edge).
    pub fn corpus(&self, from: IrVersion, to: IrVersion) -> Arc<Vec<OracleTest>> {
        self.corpus_with_fingerprint(from, to).0
    }

    /// The memoized corpus *and* its [`crate::cache::corpus_fingerprint`].
    /// The fingerprint is hashed once per pair per router, not per plan —
    /// [`Router::graph`] probes every catalog edge on every call, and
    /// re-hashing ~n² corpora per request was the serving hot path's
    /// dominant cost.
    fn corpus_with_fingerprint(
        &self,
        from: IrVersion,
        to: IrVersion,
    ) -> (Arc<Vec<OracleTest>>, u64) {
        let mut map = self.corpora.lock().expect("router corpora poisoned");
        let (corpus, fp) = map.entry((from, to)).or_insert_with(|| {
            let corpus = Arc::new(oracle_corpus(from, to));
            let fp = crate::cache::corpus_fingerprint(&corpus);
            (corpus, fp)
        });
        (Arc::clone(corpus), *fp)
    }

    fn observed_latencies() -> HashMap<(DialectVersion, DialectVersion), u64> {
        let mut sums: HashMap<(DialectVersion, DialectVersion), (u64, u64)> = HashMap::new();
        for span in siro_trace::snapshot().spans {
            if span.name != "route.hop" && span.name != "serve.translate" {
                continue;
            }
            // Details look like `13.0->3.6` or `wir1.0->wir2.0`
            // (route.hop), or `13.0->3.6 synthesized` (serve.translate).
            let pair_str = span.detail.split(' ').next().unwrap_or("");
            let Some((a, b)) = pair_str.split_once("->") else {
                continue;
            };
            let (Ok(a), Ok(b)) = (a.parse::<DialectVersion>(), b.parse::<DialectVersion>()) else {
                continue;
            };
            let e = sums.entry((a, b)).or_insert((0, 0));
            e.0 += span.dur_ns / 1_000;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(pair, (total_us, n))| (pair, total_us / n.max(1)))
            .collect()
    }

    /// Classifies one potential edge, or `None` when the pair has no edge
    /// (empty Siro corpus; non-anchor cross-dialect pair).
    fn classify_edge(
        &self,
        a: DialectVersion,
        b: DialectVersion,
        store: Option<&TranslatorStore>,
    ) -> Option<EdgeClass> {
        match (a.dialect, b.dialect) {
            (Dialect::Siro, Dialect::Siro) => {
                let (sa, sb) = (a.as_siro()?, b.as_siro()?);
                let (corpus, fp) = self.corpus_with_fingerprint(sa, sb);
                if corpus.is_empty() {
                    return None;
                }
                let config = SynthesisConfig::new(sa, sb);
                Some(if TranslatorCache::is_warm_fingerprint(&config, fp) {
                    EdgeClass::Hot
                } else if store.is_some_and(|s| s.entry_path(&StoreKey::new(&config, fp)).exists())
                {
                    EdgeClass::Warm
                } else {
                    EdgeClass::Cold
                })
            }
            (Dialect::Wir, Dialect::Wir) => {
                let (wa, wb) = (as_wir(a)?, as_wir(b)?);
                Some(if wir_pair_is_hot(wa, wb) {
                    EdgeClass::Hot
                } else if store.is_some_and(|s| s.named_path(&wir_store_name(wa, wb)).exists()) {
                    EdgeClass::Warm
                } else {
                    EdgeClass::Cold
                })
            }
            (Dialect::Siro, Dialect::Wir) => anchor_class(a.as_siro()?, as_wir(b)?, store),
            (Dialect::Wir, Dialect::Siro) => anchor_class(b.as_siro()?, as_wir(a)?, store),
        }
    }

    /// Snapshots the version graph: classifies every edge against the
    /// in-memory caches and the attached store, and folds in observed
    /// per-hop latencies from the trace collector.
    pub fn graph(&self) -> VersionGraph {
        let store = active_store();
        let observed = Self::observed_latencies();
        let mut edges = HashMap::new();
        for &a in &self.nodes {
            for &b in &self.nodes {
                if a == b {
                    continue;
                }
                let Some(class) = self.classify_edge(a, b, store.as_deref()) else {
                    continue;
                };
                let class_cost = match class {
                    EdgeClass::Hot => COST_HOT_US,
                    EdgeClass::Warm => COST_WARM_US,
                    EdgeClass::Cold => COST_COLD_US,
                };
                let observed_us = observed.get(&(a, b)).copied();
                let cost_us = class_cost + observed_us.unwrap_or(0).min(OBSERVED_CAP_US);
                edges.insert(
                    (a, b),
                    EdgeInfo {
                        from: a,
                        to: b,
                        class,
                        observed_us,
                        cost_us,
                    },
                );
            }
        }
        VersionGraph {
            nodes: self.nodes.clone(),
            edges,
        }
    }

    /// Plans the cheapest route for `(from, to)` over a fresh graph
    /// snapshot. `None` when either endpoint is off-catalog or no path
    /// exists (including cross-dialect requests with no anchor bridge).
    pub fn plan(
        &self,
        from: impl Into<DialectVersion>,
        to: impl Into<DialectVersion>,
    ) -> Option<RoutePlan> {
        let (from, to) = (from.into(), to.into());
        PLANS.fetch_add(1, Ordering::Relaxed);
        siro_trace::counter("route.plans", 1);
        let sp = siro_trace::span!("route.plan", "{from}->{to}");
        let plan = self.graph().cheapest_path(from, to);
        drop(sp);
        plan
    }

    /// Plans every ordered pair over one graph snapshot, row-major in
    /// node order (identity pairs included, as 0-hop plans). Pairs with
    /// no path are reported as `None` at their matrix position.
    pub fn matrix(&self) -> Vec<((DialectVersion, DialectVersion), Option<RoutePlan>)> {
        let graph = self.graph();
        let mut out = Vec::with_capacity(self.nodes.len() * self.nodes.len());
        for &a in &self.nodes {
            for &b in &self.nodes {
                out.push(((a, b), graph.cheapest_path(a, b)));
            }
        }
        out
    }

    /// Acquires a translator for `(from, to)` along the cheapest route,
    /// with the default [`TranslatorCache`]-backed hop resolver.
    ///
    /// # Errors
    ///
    /// [`SynthError`] when no route exists (for Siro pairs, reported as
    /// the direct pair's synthesis error; for cross-dialect pairs, as an
    /// explicit unreachable report) or when the fallback ladder failed.
    pub fn acquire(
        &self,
        from: impl Into<DialectVersion>,
        to: impl Into<DialectVersion>,
    ) -> Result<Acquired, SynthError> {
        self.acquire_with(from.into(), to.into(), &|a, b, tests| {
            TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(a, b), tests)
                .map(|CacheLookup { outcome, fresh, .. }| (outcome, fresh))
        })
    }

    /// [`Router::acquire`] with a caller-supplied Siro hop resolver (the
    /// serving layer passes its coalescer so per-pair serving counters
    /// keep working).
    ///
    /// # Errors
    ///
    /// See [`Router::acquire`].
    pub fn acquire_with(
        &self,
        from: impl Into<DialectVersion>,
        to: impl Into<DialectVersion>,
        resolve: HopResolver<'_>,
    ) -> Result<Acquired, SynthError> {
        let (from, to) = (from.into(), to.into());
        let all_siro_endpoints = from.dialect == Dialect::Siro && to.dialect == Dialect::Siro;
        let plan = match self.plan(from, to) {
            Some(plan) => plan,
            // Off-graph or unreachable. For Siro pairs, attempt the direct
            // pair anyway and let its synthesis error speak — the
            // historical behaviour. Anything cross-dialect has no direct
            // synthesis to attempt: report unreachable instead of
            // fabricating a chain.
            None if all_siro_endpoints => RoutePlan {
                from,
                to,
                hops: Vec::new(),
                cost_us: COST_COLD_US,
            },
            None => {
                return Err(SynthError::Api(format!(
                    "no route {from} -> {to}: the endpoints span dialects with no \
                     validated bridge on any path"
                )))
            }
        };
        note_max_hops(plan.hop_count() as u64);

        if plan.is_direct() && plan.is_all_siro() && all_siro_endpoints {
            let (sf, st) = (
                from.as_siro().expect("checked siro"),
                to.as_siro().expect("checked siro"),
            );
            let (outcome, fresh) = resolve(sf, st, &self.corpus(sf, st))?;
            DIRECT.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("route.direct", 1);
            return Ok(Acquired {
                outcome: RouteOutcome::Direct(outcome),
                plan,
                fresh,
                fell_back: false,
            });
        }

        // Composed route: serve from the composed cache when possible.
        if let Some(chain) = self
            .composed
            .lock()
            .expect("router composed cache poisoned")
            .get(&(from, to))
        {
            COMPOSED.fetch_add(1, Ordering::Relaxed);
            COMPOSED_CACHED.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("route.composed_cached", 1);
            return Ok(Acquired {
                outcome: RouteOutcome::Composed(Arc::clone(chain)),
                plan,
                fresh: false,
                fell_back: false,
            });
        }

        match self.compose(&plan, resolve) {
            Ok((chain, fresh)) => {
                COMPOSED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.composed", 1);
                Ok(Acquired {
                    outcome: RouteOutcome::Composed(chain),
                    plan,
                    fresh,
                    fell_back: false,
                })
            }
            Err(e) if all_siro_endpoints => {
                // Fallback ladder step 2: a hop died; synthesize the Siro
                // pair directly.
                let _ = e;
                FALLBACKS.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.fallbacks", 1);
                let (sf, st) = (
                    from.as_siro().expect("checked siro"),
                    to.as_siro().expect("checked siro"),
                );
                let (outcome, fresh) = resolve(sf, st, &self.corpus(sf, st))?;
                DIRECT.fetch_add(1, Ordering::Relaxed);
                Ok(Acquired {
                    outcome: RouteOutcome::Direct(outcome),
                    plan,
                    fresh,
                    fell_back: true,
                })
            }
            // Cross-dialect hop failures have no direct fallback.
            Err(e) => Err(e),
        }
    }

    /// Resolves one plan edge into a composed hop.
    fn resolve_hop(
        &self,
        edge: &EdgeInfo,
        resolve: HopResolver<'_>,
    ) -> Result<(ComposedHop, bool), SynthError> {
        let hop = match (edge.from.dialect, edge.to.dialect) {
            (Dialect::Siro, Dialect::Siro) => {
                let (a, b) = (
                    edge.from.as_siro().expect("siro edge"),
                    edge.to.as_siro().expect("siro edge"),
                );
                let corpus = self.corpus(a, b);
                let (outcome, fresh) = resolve(a, b, &corpus)?;
                let config = SynthesisConfig::new(a, b);
                let fp = crate::cache::corpus_fingerprint(&corpus);
                (
                    ComposedHop {
                        from: edge.from,
                        to: edge.to,
                        kind: HopKind::Siro(outcome),
                        entry_file: StoreKey::new(&config, fp).file_name(),
                    },
                    fresh,
                )
            }
            (Dialect::Wir, Dialect::Wir) => {
                let (a, b) = (
                    as_wir(edge.from).expect("wir edge"),
                    as_wir(edge.to).expect("wir edge"),
                );
                let (outcome, fresh) =
                    wir_translator_cached(a, b).map_err(|e| SynthError::Api(e.to_string()))?;
                (
                    ComposedHop {
                        from: edge.from,
                        to: edge.to,
                        kind: HopKind::Wir(outcome),
                        entry_file: wir_store_name(a, b),
                    },
                    fresh,
                )
            }
            (Dialect::Siro, Dialect::Wir) => {
                let (s, w) = (
                    edge.from.as_siro().expect("siro edge"),
                    as_wir(edge.to).expect("wir edge"),
                );
                let (outcome, fresh) =
                    bridge_cached(s, w).map_err(|e| SynthError::Api(e.to_string()))?;
                (
                    ComposedHop {
                        from: edge.from,
                        to: edge.to,
                        kind: HopKind::Lower(outcome),
                        entry_file: bridge_store_name(s, w),
                    },
                    fresh,
                )
            }
            (Dialect::Wir, Dialect::Siro) => {
                let (w, s) = (
                    as_wir(edge.from).expect("wir edge"),
                    edge.to.as_siro().expect("siro edge"),
                );
                let (outcome, fresh) =
                    bridge_cached(s, w).map_err(|e| SynthError::Api(e.to_string()))?;
                (
                    ComposedHop {
                        from: edge.from,
                        to: edge.to,
                        kind: HopKind::Raise(outcome),
                        entry_file: bridge_store_name(s, w),
                    },
                    fresh,
                )
            }
        };
        Ok(hop)
    }

    /// Builds (and memoizes + persists) the composed chain for a plan.
    fn compose(
        &self,
        plan: &RoutePlan,
        resolve: HopResolver<'_>,
    ) -> Result<(Arc<ComposedTranslator>, bool), SynthError> {
        let mut hops = Vec::with_capacity(plan.hops.len());
        let mut fresh = false;
        for edge in &plan.hops {
            let (hop, hop_fresh) = self.resolve_hop(edge, resolve)?;
            fresh |= hop_fresh;
            hops.push(hop);
        }
        let chain = Arc::new(ComposedTranslator {
            from: plan.from,
            to: plan.to,
            hops,
            plan: plan.clone(),
        });
        self.composed
            .lock()
            .expect("router composed cache poisoned")
            .insert((plan.from, plan.to), Arc::clone(&chain));
        if let Some(store) = active_store() {
            if store
                .save_chain(&chain.persist_key(), &chain.manifest())
                .is_ok()
            {
                CHAINS_PERSISTED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("route.chains_persisted", 1);
            }
        }
        Ok((chain, fresh))
    }

    /// Composes a translator along an explicit Siro node path, the caller
    /// choosing the route instead of the cost model — the byte-identity
    /// matrix checks and difftest's path-selection fuzzing exercise
    /// router alternates this way. Hops resolve through the process-wide
    /// [`TranslatorCache`]; the chain is returned without entering the
    /// router's composed-chain memo, so cost-driven serving is
    /// unaffected. Hop edges are rendered hot: once resolved, the chain
    /// holds every hop in memory.
    ///
    /// # Errors
    ///
    /// Propagates the first failing hop's [`SynthError`].
    ///
    /// # Panics
    ///
    /// When `path` has fewer than two nodes.
    pub fn compose_path(&self, path: &[IrVersion]) -> Result<ComposedTranslator, SynthError> {
        assert!(path.len() >= 2, "a route needs at least two nodes");
        let mut hops = Vec::with_capacity(path.len() - 1);
        let mut edges = Vec::with_capacity(path.len() - 1);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let corpus = self.corpus(a, b);
            let lookup =
                TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(a, b), &corpus)?;
            let config = SynthesisConfig::new(a, b);
            let fp = crate::cache::corpus_fingerprint(&corpus);
            hops.push(ComposedHop {
                from: a.into(),
                to: b.into(),
                kind: HopKind::Siro(lookup.outcome),
                entry_file: StoreKey::new(&config, fp).file_name(),
            });
            edges.push(EdgeInfo {
                from: a.into(),
                to: b.into(),
                class: EdgeClass::Hot,
                observed_us: None,
                cost_us: COST_HOT_US,
            });
        }
        let plan = RoutePlan {
            from: path[0].into(),
            to: (*path.last().expect("non-empty path")).into(),
            cost_us: edges.iter().map(|e| e.cost_us).sum(),
            hops: edges,
        };
        Ok(ComposedTranslator {
            from: plan.from,
            to: plan.to,
            hops,
            plan,
        })
    }

    /// Number of chains currently memoized in the composed cache.
    pub fn composed_cached_count(&self) -> usize {
        self.composed
            .lock()
            .expect("router composed cache poisoned")
            .len()
    }
}

/// Edge class for a cross-dialect anchor, or `None` when `(s, w)` is not
/// an anchor pair — the non-edge that makes unbridged cross-dialect
/// requests unreachable.
fn anchor_class(s: IrVersion, w: WirVersion, store: Option<&TranslatorStore>) -> Option<EdgeClass> {
    if !is_anchor_pair(s, w) {
        return None;
    }
    Some(if bridge_is_hot(s, w) {
        EdgeClass::Hot
    } else if store.is_some_and(|st| st.named_path(&bridge_store_name(s, w)).exists()) {
        EdgeClass::Warm
    } else {
        EdgeClass::Cold
    })
}

/// The persist key of a composed chain, e.g. `c13.0-t3.6-9e3779b97f4a7c15`
/// or `c13.0-twir1.0-…` for a cross-dialect chain: the pair plus an FNV-1a
/// hash over the ordered hop entry file names, so a different path (or
/// different hop knobs) gets a different key. Siro endpoints render
/// exactly as they did before dialects existed, so pre-dialect keys are
/// unchanged byte for byte.
pub fn chain_persist_key<'a>(
    from: impl Into<DialectVersion>,
    to: impl Into<DialectVersion>,
    entry_files: impl Iterator<Item = &'a str>,
) -> String {
    let (from, to) = (from.into(), to.into());
    let mut bytes = Vec::new();
    for file in entry_files {
        bytes.extend_from_slice(file.as_bytes());
        bytes.push(0);
    }
    format!("c{from}-t{to}-{:016x}", fnv1a64(&bytes))
}

/// Validates a persisted chain manifest against a store: every named hop
/// entry must still exist. Returns the hop pairs when the chain is whole.
pub fn chain_hops_if_whole(
    store: &TranslatorStore,
    manifest: &str,
) -> Option<Vec<(DialectVersion, DialectVersion)>> {
    let mut hops = Vec::new();
    for line in manifest.lines() {
        let Some(rest) = line.strip_prefix("hop ") else {
            continue;
        };
        let mut parts = rest.split(' ');
        let from: DialectVersion = parts.next()?.parse().ok()?;
        let to: DialectVersion = parts.next()?.parse().ok()?;
        let entry_file = parts.next()?;
        if !store.dir().join(entry_file).exists() {
            return None;
        }
        hops.push((from, to));
    }
    (!hops.is_empty()).then_some(hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::Skeleton;

    // NOTE: router counters are process-global and tests run concurrently,
    // so assertions use per-call results (plans, Acquired flags) and
    // counter *deltas* only where a unique pair guarantees isolation.

    fn small_router() -> Router {
        Router::over(vec![IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6])
    }

    #[test]
    fn cold_graph_plans_direct_routes() {
        let r = small_router();
        let plan = r.plan(IrVersion::V13_0, IrVersion::V3_6).expect("plan");
        assert_eq!(plan.hop_count(), 1, "{}", plan.describe());
        assert!(plan.is_direct());
    }

    #[test]
    fn identity_plans_zero_hops() {
        let r = small_router();
        let plan = r.plan(IrVersion::V13_0, IrVersion::V13_0).expect("plan");
        assert_eq!(plan.hop_count(), 0);
        assert_eq!(plan.cost_us, 0);
    }

    #[test]
    fn off_catalog_endpoint_has_no_plan() {
        let r = small_router();
        assert!(r.plan(IrVersion::new(2, 0), IrVersion::V3_6).is_none());
    }

    #[test]
    fn warm_hops_beat_a_cold_direct_edge() {
        // Hand-build a graph where 13.0->3.6 direct is cold but the two
        // hops through 12.0 are hot: the cheapest path must compose.
        let mk = |from: IrVersion, to: IrVersion, class, cost_us| EdgeInfo {
            from: from.into(),
            to: to.into(),
            class,
            observed_us: None,
            cost_us,
        };
        let (a, m, b) = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        let g = VersionGraph::from_edges(
            vec![a, m, b],
            vec![
                mk(a, b, EdgeClass::Cold, COST_COLD_US),
                mk(a, m, EdgeClass::Hot, COST_HOT_US),
                mk(m, b, EdgeClass::Hot, COST_HOT_US),
            ],
        );
        let plan = g.cheapest_path(a, b).expect("path");
        assert_eq!(plan.hop_count(), 2, "{}", plan.describe());
        assert_eq!(plan.hops[0].to, m.into());
        assert_eq!(plan.cost_us, 2 * COST_HOT_US);
    }

    #[test]
    fn ties_prefer_fewer_hops() {
        let mk = |from: IrVersion, to: IrVersion, cost_us| EdgeInfo {
            from: from.into(),
            to: to.into(),
            class: EdgeClass::Hot,
            observed_us: None,
            cost_us,
        };
        let (a, m, b) = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        let g = VersionGraph::from_edges(
            vec![a, m, b],
            vec![mk(a, b, 20), mk(a, m, 10), mk(m, b, 10)],
        );
        let plan = g.cheapest_path(a, b).expect("path");
        assert_eq!(plan.hop_count(), 1, "equal cost must stay direct");
    }

    #[test]
    fn fallback_demotes_a_failing_composed_plan_to_direct() {
        // Warm the two hop edges so the plan composes, then hand acquire a
        // resolver that refuses the second hop: the fallback ladder must
        // answer with direct synthesis and set `fell_back`.
        let (a, m, b) = (IrVersion::V14_0, IrVersion::V12_0, IrVersion::V3_0);
        let r = Router::over(vec![a, m, b]);
        for (s, t) in [(a, m), (m, b)] {
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(s, t), &r.corpus(s, t))
                .expect("hop synthesis");
        }
        let plan = r.plan(a, b).expect("plan");
        assert_eq!(plan.hop_count(), 2, "{}", plan.describe());
        let acquired = r
            .acquire_with(a, b, &|s, t, tests| {
                if (s, t) == (m, b) {
                    return Err(SynthError::Api("injected hop failure".into()));
                }
                TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(s, t), tests)
                    .map(|l| (l.outcome, l.fresh))
            })
            .expect("fallback must answer");
        assert!(acquired.fell_back);
        assert!(matches!(acquired.outcome, RouteOutcome::Direct(_)));
    }

    #[test]
    fn composed_chain_is_memoized_and_byte_identical_to_direct() {
        let (a, m, b) = (IrVersion::V15_0, IrVersion::V13_0, IrVersion::V4_0);
        let r = Router::over(vec![a, m, b]);
        for (s, t) in [(a, m), (m, b)] {
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(s, t), &r.corpus(s, t))
                .expect("hop synthesis");
        }
        let first = r.acquire(a, b).expect("acquire");
        let RouteOutcome::Composed(chain) = &first.outcome else {
            panic!("warm hops must compose, got {:?}", first.plan.describe());
        };
        assert_eq!(chain.hop_count(), 2);
        assert_eq!(r.composed_cached_count(), 1);
        let second = r.acquire(a, b).expect("acquire again");
        let RouteOutcome::Composed(chain2) = &second.outcome else {
            panic!("second acquire must stay composed");
        };
        assert!(Arc::ptr_eq(chain, chain2), "chain must be memoized");
        assert!(!second.fresh);

        // Composed output equals the direct translator's output.
        let direct =
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(a, b), &r.corpus(a, b))
                .expect("direct synthesis");
        for case in siro_testcases::corpus_for_pair(a, b).iter().take(8) {
            let module = case.build(a);
            let via_chain = chain.translate_module(&module).expect("chain translate");
            let via_direct = Skeleton::new(b)
                .translate_module(&module, &direct.translator)
                .expect("direct translate");
            assert_eq!(
                siro_ir::write::write_module(&via_chain),
                siro_ir::write::write_module(&via_direct),
                "case {}",
                case.name
            );
        }
    }

    #[test]
    fn persist_key_distinguishes_paths() {
        let (from, to) = (IrVersion::V13_0, IrVersion::V3_6);
        let via_12 = ["s13.0-t12.0-0.sirt", "s12.0-t3.6-0.sirt"];
        let via_4 = ["s13.0-t4.0-0.sirt", "s4.0-t3.6-0.sirt"];
        let k12 = chain_persist_key(from, to, via_12.into_iter());
        let k4 = chain_persist_key(from, to, via_4.into_iter());
        assert_ne!(k12, k4, "different paths must get different keys");
        assert!(k12.starts_with("c13.0-t3.6-"));
    }

    // ---- dialect-aware routing ------------------------------------------

    #[test]
    fn nodes_are_keyed_by_dialect_and_version() {
        let g = Router::with_wir().graph();
        let wir1: DialectVersion = WirVersion::W1_0.into();
        let wir2: DialectVersion = WirVersion::W2_0.into();
        // WIR pairs always have an edge; anchors bridge the dialects; a
        // non-anchor cross pair has no edge at all.
        assert!(g.edge(wir1, wir2).is_some(), "wir catalog pair");
        assert!(
            g.edge(IrVersion::V13_0, wir2).is_some(),
            "anchor bridge edge"
        );
        assert!(
            g.edge(IrVersion::V13_0, wir1).is_none(),
            "non-anchor cross pair must not get an edge"
        );
    }

    #[test]
    fn cross_dialect_plans_route_through_an_anchor() {
        let r = Router::with_wir();
        let plan = r
            .plan(IrVersion::V13_0, WirVersion::W1_0)
            .expect("route exists via the 13.0<->wir2.0 anchor");
        assert!(plan.hop_count() >= 2, "{}", plan.describe());
        assert!(
            plan.hops.iter().any(|h| h.from.dialect != h.to.dialect),
            "the plan must contain a bridge hop: {}",
            plan.describe()
        );
    }

    #[test]
    fn missing_bridge_reports_unreachable_not_a_bogus_chain() {
        // A node set with both dialects but no anchor pair present: the
        // cross-dialect request must be *unreachable*, and acquisition
        // must surface that as an error instead of fabricating a chain.
        let r = Router::over_dialects(vec![
            IrVersion::V3_6.into(),
            IrVersion::V4_0.into(),
            WirVersion::W1_0.into(),
        ]);
        assert!(r.plan(IrVersion::V3_6, WirVersion::W1_0).is_none());
        let err = r
            .acquire(IrVersion::V3_6, WirVersion::W1_0)
            .expect_err("must not fabricate a chain");
        assert!(
            err.to_string().contains("no route"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn wir_pairs_acquire_composed_chains_that_translate() {
        let r = Router::with_wir();
        let acquired = r
            .acquire(WirVersion::W1_0, WirVersion::W2_0)
            .expect("wir pair acquires");
        let RouteOutcome::Composed(chain) = &acquired.outcome else {
            panic!("wir routes are served as composed chains");
        };
        assert_eq!(chain.hop_count(), 1);
        let m = siro_wir::generate_straightline(7, WirVersion::W1_0);
        let out = chain
            .translate_any_owned(AnyModule::Wir(m.clone()))
            .expect("translates");
        let AnyModule::Wir(w) = out else {
            panic!("wir chain must end at a wir module");
        };
        assert_eq!(w.version, WirVersion::W2_0);
        // Behaviour preserved across the synthesized hop.
        assert_eq!(
            crate::bridge::wir_behaviour(&m),
            crate::bridge::wir_behaviour(&w)
        );
    }

    #[test]
    fn siro_chains_refuse_a_wir_module() {
        let r = Router::with_wir();
        let acquired = r
            .acquire(WirVersion::W1_0, WirVersion::W2_0)
            .expect("wir pair acquires");
        let RouteOutcome::Composed(chain) = &acquired.outcome else {
            panic!("composed expected");
        };
        // Feeding the wrong dialect through the typed entry point fails
        // loudly instead of mis-translating.
        let m = Module::new("m", IrVersion::V13_0);
        assert!(chain.translate_module(&m).is_err());
    }
}
