//! WIR→WIR translator synthesis.
//!
//! The pipeline is the Siro one re-aimed at the second dialect: for every
//! instruction kind the source version can express, *search* the target
//! version's [`WirRegistry`] for a builder that reproduces the kind's
//! behaviour, validating candidates differentially against the WIR
//! interpreter. Nothing here knows the catalog's quirks by name — renamed
//! builders are found because search enumerates by signature rather than
//! by name, reordered parameters are absorbed by type-driven argument
//! assignment ([`WirRegistry::args_for`]), and representation migrations
//! (missing `select`/`local.tee`/`br_table`) resolve to the registry's
//! composite builders because those are the only candidates that survive
//! the differential probes.
//!
//! Probes are small single-purpose modules (the oracle tests of this
//! dialect): each exercises one kind with operand values chosen to
//! discriminate type-correct-but-wrong candidates — `drop` vs `nop` differ
//! on the value left behind, `local.set` vs `local.tee` differ on stack
//! effect, `br` vs `br_if` differ on the not-taken path, signed division
//! probes pin the trap semantics.
//!
//! Successful syntheses are memoized process-wide (the WIR analogue of
//! [`crate::cache::TranslatorCache`]) and persisted to the active
//! translator store ([`crate::store`]) as `.sirw` entries that are
//! re-validated against the full probe suite on load.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use siro_wir::{
    verify_module, WBin, WCmp, WKind, WTy, WirApiImpl, WirEmit, WirFunc, WirInst, WirMachine,
    WirModule, WirRegistry, WirVersion,
};

use crate::store::active_store;

/// A synthesized WIR→WIR translator: one target-registry builder per
/// source instruction kind.
#[derive(Debug, Clone)]
pub struct WirTranslator {
    /// Source version.
    pub from: WirVersion,
    /// Target version.
    pub to: WirVersion,
    /// Chosen builder name per source kind.
    pub arms: BTreeMap<WKind, String>,
}

/// Search statistics for one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WirSynthStats {
    /// Instruction kinds resolved.
    pub kinds: usize,
    /// Builder candidates considered across all kinds.
    pub candidates: usize,
    /// Candidates rejected by the differential probes (verification or
    /// behaviour mismatch).
    pub rejected: usize,
    /// Probe translations executed.
    pub probes_run: usize,
}

/// A completed WIR synthesis.
#[derive(Debug, Clone)]
pub struct WirOutcome {
    /// The synthesized translator.
    pub translator: WirTranslator,
    /// Search statistics.
    pub stats: WirSynthStats,
}

/// Errors from WIR synthesis or translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirSynthError(pub String);

impl std::fmt::Display for WirSynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wir synthesis: {}", self.0)
    }
}

impl std::error::Error for WirSynthError {}

fn err(msg: impl Into<String>) -> WirSynthError {
    WirSynthError(msg.into())
}

/// A representative instruction per kind, used to decide builder
/// *applicability* (can every parameter be sourced from this kind?).
fn representative(kind: WKind) -> WirInst {
    match kind {
        WKind::Const => WirInst::Const(WTy::I32, 0),
        WKind::Binop => WirInst::Binop(WTy::I32, WBin::Add),
        WKind::Cmp => WirInst::Cmp(WTy::I32, WCmp::Eq),
        WKind::Eqz => WirInst::Eqz(WTy::I32),
        WKind::LocalGet => WirInst::LocalGet(0),
        WKind::LocalSet => WirInst::LocalSet(0),
        WKind::LocalTee => WirInst::LocalTee(0),
        WKind::Select => WirInst::Select,
        WKind::Drop => WirInst::Drop,
        WKind::Nop => WirInst::Nop,
        WKind::Block => WirInst::Block,
        WKind::Loop => WirInst::Loop,
        WKind::End => WirInst::End,
        WKind::Br => WirInst::Br(0),
        WKind::BrIf => WirInst::BrIf(0),
        WKind::BrTable => WirInst::BrTable(vec![0, 0]),
        WKind::Return => WirInst::Return,
        WKind::Call => WirInst::Call(0),
    }
}

/// Builds a one-function probe module at `version`.
fn probe(version: WirVersion, locals: usize, insts: &[WirInst]) -> WirModule {
    let mut m = WirModule::new("probe", version);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    for _ in 0..locals {
        f.alloc_local(WTy::I32);
    }
    for i in insts {
        f.body.alloc(i.clone());
    }
    m.funcs.push(f);
    m
}

/// The discriminating probe set for one kind, at the source version.
/// Every probe uses only `kind` plus version-universal helper kinds, so
/// per-kind search can translate the helpers by identity.
fn probes_for(kind: WKind, v: WirVersion) -> Vec<WirModule> {
    use WirInst as I;
    let i = |k: i64| I::Const(WTy::I32, k);
    match kind {
        WKind::Const => vec![
            probe(v, 0, &[i(42), I::Return]),
            probe(v, 0, &[i(-7), I::Return]),
            probe(
                v,
                0,
                &[
                    I::Const(WTy::I64, 1),
                    I::Const(WTy::I64, 40),
                    I::Binop(WTy::I64, WBin::Shl),
                    I::Const(WTy::I64, 0),
                    I::Cmp(WTy::I64, WCmp::GtS),
                    I::Return,
                ],
            ),
        ],
        WKind::Binop => vec![
            probe(
                v,
                0,
                &[i(7), i(3), I::Binop(WTy::I32, WBin::Sub), I::Return],
            ),
            probe(
                v,
                0,
                &[i(6), i(7), I::Binop(WTy::I32, WBin::Mul), I::Return],
            ),
            // Trap semantics must carry over exactly.
            probe(
                v,
                0,
                &[
                    i(i32::MIN as i64),
                    i(-1),
                    I::Binop(WTy::I32, WBin::DivS),
                    I::Return,
                ],
            ),
            probe(
                v,
                0,
                &[i(5), i(0), I::Binop(WTy::I32, WBin::RemS), I::Return],
            ),
            probe(
                v,
                0,
                &[i(1), i(35), I::Binop(WTy::I32, WBin::Shl), I::Return],
            ),
        ],
        WKind::Cmp => vec![
            probe(v, 0, &[i(3), i(5), I::Cmp(WTy::I32, WCmp::LtS), I::Return]),
            probe(v, 0, &[i(5), i(5), I::Cmp(WTy::I32, WCmp::Ne), I::Return]),
        ],
        WKind::Eqz => vec![
            probe(v, 0, &[i(0), I::Eqz(WTy::I32), I::Return]),
            probe(v, 0, &[i(5), I::Eqz(WTy::I32), I::Return]),
        ],
        WKind::LocalGet => vec![probe(
            v,
            1,
            &[i(5), I::LocalSet(0), I::LocalGet(0), I::Return],
        )],
        WKind::LocalSet => vec![
            probe(v, 1, &[i(5), I::LocalSet(0), I::LocalGet(0), I::Return]),
            // Distinguishes set (pops) from tee (leaves the value).
            probe(
                v,
                1,
                &[
                    i(1),
                    i(2),
                    I::LocalSet(0),
                    I::LocalGet(0),
                    I::Binop(WTy::I32, WBin::Add),
                    I::Return,
                ],
            ),
        ],
        WKind::LocalTee => vec![probe(
            v,
            1,
            &[
                i(7),
                I::LocalTee(0),
                I::LocalGet(0),
                I::Binop(WTy::I32, WBin::Add),
                I::Return,
            ],
        )],
        WKind::Select => vec![
            probe(v, 0, &[i(30), i(40), i(1), I::Select, I::Return]),
            probe(v, 0, &[i(30), i(40), i(0), I::Select, I::Return]),
        ],
        WKind::Drop => vec![probe(v, 0, &[i(1), i(2), I::Drop, I::Return])],
        WKind::Nop => vec![probe(v, 0, &[I::Nop, i(7), I::Return])],
        // Block / BrIf / End probes exercise both branch polarities; all
        // three kinds share the same pair of shapes.
        WKind::Block | WKind::BrIf | WKind::End => vec![
            probe(
                v,
                1,
                &[
                    i(5),
                    I::LocalSet(0),
                    I::Block,
                    i(1),
                    I::BrIf(0),
                    i(9),
                    I::LocalSet(0),
                    I::End,
                    I::LocalGet(0),
                    I::Return,
                ],
            ),
            probe(
                v,
                1,
                &[
                    i(5),
                    I::LocalSet(0),
                    I::Block,
                    i(0),
                    I::BrIf(0),
                    i(9),
                    I::LocalSet(0),
                    I::End,
                    I::LocalGet(0),
                    I::Return,
                ],
            ),
        ],
        WKind::Loop => vec![probe(
            v,
            2,
            &[
                I::Loop,
                I::LocalGet(1),
                I::LocalGet(0),
                I::Binop(WTy::I32, WBin::Add),
                I::LocalSet(1),
                I::LocalGet(0),
                i(1),
                I::Binop(WTy::I32, WBin::Add),
                I::LocalSet(0),
                I::LocalGet(0),
                i(10),
                I::Cmp(WTy::I32, WCmp::LtS),
                I::BrIf(0),
                I::End,
                I::LocalGet(1),
                I::Return,
            ],
        )],
        // Two probes: the block form pins forward-exit semantics, the loop
        // form discriminates `br` from `nop` — a branch to the end of an
        // empty block IS a no-op, but a back-branch in a loop spins to
        // fuel exhaustion where a no-op falls through.
        WKind::Br => vec![
            probe(v, 0, &[I::Block, I::Br(0), I::End, i(7), I::Return]),
            probe(v, 0, &[I::Loop, I::Br(0), I::End, i(7), I::Return]),
        ],
        WKind::BrTable => [0i64, 1, 5]
            .iter()
            .map(|&sel| {
                probe(
                    v,
                    1,
                    &[
                        I::Block,
                        I::Block,
                        I::Block,
                        i(sel),
                        I::BrTable(vec![0, 1, 2]),
                        I::End,
                        i(100),
                        I::LocalSet(0),
                        I::Br(1),
                        I::End,
                        i(200),
                        I::LocalSet(0),
                        I::Br(0),
                        I::End,
                        I::LocalGet(0),
                        I::Return,
                    ],
                )
            })
            .collect(),
        // The mid-block form discriminates `return` from `nop`: at body
        // end a leftover value falls off as the return value anyway, but
        // inside a block only a real return produces 3 instead of 7.
        WKind::Return => vec![
            probe(v, 0, &[i(3), I::Return]),
            probe(v, 0, &[I::Block, i(3), I::Return, I::End, i(7), I::Return]),
        ],
        WKind::Call => vec![{
            let mut m = WirModule::new("probe", v);
            let mut sq = WirFunc::new("sq", vec![WTy::I32], Some(WTy::I32));
            sq.body.alloc(I::LocalGet(0));
            sq.body.alloc(I::LocalGet(0));
            sq.body.alloc(I::Binop(WTy::I32, WBin::Mul));
            sq.body.alloc(I::Return);
            m.funcs.push(sq);
            let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
            f.body.alloc(i(6));
            f.body.alloc(I::Call(0));
            f.body.alloc(I::Return);
            m.funcs.push(f);
            m
        }],
    }
}

/// Translates `module` into `to`, choosing each instruction's expansion
/// through `arm`: `Some(builder_name)` runs that target builder with
/// arguments assembled by type from the source instruction; `None` copies
/// the instruction verbatim (per-kind search uses this for the
/// not-under-test kinds).
fn translate_with(
    module: &WirModule,
    to: WirVersion,
    reg: &WirRegistry,
    arm: &dyn Fn(WKind) -> Option<String>,
) -> Result<WirModule, WirSynthError> {
    let mut out = WirModule::new(module.name.clone(), to);
    for func in &module.funcs {
        let mut nf = WirFunc::new(func.name.clone(), func.params.clone(), func.result);
        for ty in &func.locals {
            nf.alloc_local(*ty);
        }
        for inst in func.body.iter() {
            match arm(inst.kind()) {
                Some(name) => {
                    let b = reg
                        .find(&name)
                        .ok_or_else(|| err(format!("unknown builder {name} at {to}")))?;
                    let args = reg.args_for(b, inst).ok_or_else(|| {
                        err(format!("{name} not applicable to {:?}", inst.kind()))
                    })?;
                    let WirApiImpl::Build(run) = &b.imp else {
                        return Err(err(format!("{name} is not a builder")));
                    };
                    run(
                        &mut WirEmit {
                            version: to,
                            func: &mut nf,
                        },
                        &args,
                    )
                    .map_err(|e| err(format!("{name}: {e}")))?;
                }
                None => {
                    nf.body.alloc(inst.clone());
                }
            }
        }
        out.funcs.push(nf);
    }
    Ok(out)
}

/// Runs one differential probe: the translated module must verify at the
/// target version and reproduce the source interpretation exactly
/// (result value or identical trap kind).
fn probe_passes(source: &WirModule, translated: &WirModule) -> bool {
    if verify_module(translated).is_err() {
        return false;
    }
    // 50k fuel keeps the intentionally-divergent loop probes fast while
    // leaving every terminating probe orders of magnitude of headroom.
    let want = WirMachine::new(source).with_fuel(50_000).run_main().result;
    let got = WirMachine::new(translated)
        .with_fuel(50_000)
        .run_main()
        .result;
    want == got
}

impl WirTranslator {
    /// Translates a whole module with the synthesized arms.
    ///
    /// # Errors
    ///
    /// [`WirSynthError`] when the module contains a kind this translator
    /// has no arm for (it was synthesized from a smaller source version).
    pub fn translate_module(&self, module: &WirModule) -> Result<WirModule, WirSynthError> {
        let reg = WirRegistry::for_version(self.to);
        let missing = std::cell::Cell::new(None);
        let out = translate_with(module, self.to, &reg, &|k| {
            let arm = self.arms.get(&k).cloned();
            if arm.is_none() {
                missing.set(Some(k));
            }
            arm
        })?;
        if let Some(k) = missing.get() {
            return Err(err(format!(
                "no arm for {:?} in {}->{}",
                k, self.from, self.to
            )));
        }
        Ok(out)
    }

    /// Renders the translator as persistable text (the `.sirw` payload).
    pub fn render(&self) -> String {
        let mut out = format!("SIRW 1\nfrom {}\nto {}\n", self.from, self.to);
        for (kind, builder) in &self.arms {
            out.push_str(&format!("arm {} {}\n", kind.name(), builder));
        }
        out
    }

    /// Parses a rendered translator.
    ///
    /// # Errors
    ///
    /// [`WirSynthError`] on a malformed payload or unknown kind/version.
    pub fn parse(text: &str) -> Result<WirTranslator, WirSynthError> {
        let mut lines = text.lines();
        if lines.next() != Some("SIRW 1") {
            return Err(err("missing SIRW 1 header"));
        }
        let ver = |line: Option<&str>, tag: &str| -> Result<WirVersion, WirSynthError> {
            let l = line.ok_or_else(|| err(format!("missing {tag} line")))?;
            let v = l
                .strip_prefix(tag)
                .and_then(|s| s.strip_prefix(' '))
                .ok_or_else(|| err(format!("bad {tag} line {l:?}")))?;
            let (maj, min) = v
                .split_once('.')
                .ok_or_else(|| err(format!("bad version {v}")))?;
            Ok(WirVersion::new(
                maj.parse().map_err(|_| err(format!("bad version {v}")))?,
                min.parse().map_err(|_| err(format!("bad version {v}")))?,
            ))
        };
        let from = ver(lines.next(), "from")?;
        let to = ver(lines.next(), "to")?;
        let mut arms = BTreeMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("arm ")
                .ok_or_else(|| err(format!("bad line {line:?}")))?;
            let (kind, builder) = rest
                .split_once(' ')
                .ok_or_else(|| err(format!("bad arm {rest:?}")))?;
            let kind = WKind::parse(kind).ok_or_else(|| err(format!("unknown kind {kind}")))?;
            arms.insert(kind, builder.to_string());
        }
        Ok(WirTranslator { from, to, arms })
    }
}

/// Synthesizes the `(from, to)` WIR translator by per-kind candidate
/// search with differential validation.
///
/// # Errors
///
/// [`WirSynthError`] when some kind has no surviving candidate.
pub fn synthesize_wir(from: WirVersion, to: WirVersion) -> Result<WirOutcome, WirSynthError> {
    let sp = siro_trace::span!("wir.synthesize", "wir{from}->wir{to}");
    let src_reg = WirRegistry::for_version(from);
    let tgt_reg = WirRegistry::for_version(to);
    let mut arms = BTreeMap::new();
    let mut stats = WirSynthStats::default();
    for kind in from.instruction_set() {
        let rep = representative(kind);
        let probes = probes_for(kind, from);
        let mut chosen = None;
        for cand in tgt_reg.builders() {
            if src_reg.args_for(cand, &rep).is_none() {
                continue;
            }
            stats.candidates += 1;
            let name = cand.name.clone();
            let ok = probes.iter().all(|p| {
                stats.probes_run += 1;
                translate_with(p, to, &tgt_reg, &|k| (k == kind).then(|| name.clone()))
                    .is_ok_and(|t| probe_passes(p, &t))
            });
            if ok {
                chosen = Some(name);
                break;
            }
            stats.rejected += 1;
        }
        let name = chosen.ok_or_else(|| {
            err(format!(
                "no surviving candidate for {kind:?} in wir{from}->wir{to}"
            ))
        })?;
        arms.insert(kind, name);
        stats.kinds += 1;
    }
    drop(sp);
    siro_trace::counter("wir.synthesized", 1);
    Ok(WirOutcome {
        translator: WirTranslator { from, to, arms },
        stats,
    })
}

/// Validates a (loaded) translator against the full probe suite — the
/// `.sirw` analogue of the store's validate-on-load for `.sirt` entries.
pub fn validate_wir_translator(t: &WirTranslator) -> Result<(), WirSynthError> {
    for kind in t.from.instruction_set() {
        if !t.arms.contains_key(&kind) {
            return Err(err(format!("missing arm for {kind:?}")));
        }
        for p in probes_for(kind, t.from) {
            let translated = t.translate_module(&p)?;
            if !probe_passes(&p, &translated) {
                return Err(err(format!("probe regression for {kind:?}")));
            }
        }
    }
    Ok(())
}

/// The store entry name for a WIR pair, e.g. `w1.0-t3.0.sirw`.
pub fn wir_store_name(from: WirVersion, to: WirVersion) -> String {
    format!("w{from}-t{to}.sirw")
}

type WirCacheMap = HashMap<(WirVersion, WirVersion), Arc<WirOutcome>>;

fn wir_cache() -> &'static Mutex<WirCacheMap> {
    static CACHE: OnceLock<Mutex<WirCacheMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether the `(from, to)` WIR translator is in the process cache
/// (the router's Hot classification for WIR edges).
pub fn wir_pair_is_hot(from: WirVersion, to: WirVersion) -> bool {
    wir_cache()
        .lock()
        .expect("wir cache poisoned")
        .contains_key(&(from, to))
}

/// Drops every memoized WIR translator (tests).
pub fn reset_wir_cache() {
    wir_cache().lock().expect("wir cache poisoned").clear();
}

/// Memoized acquisition: process cache, then the active store's `.sirw`
/// entry (re-validated on load), then fresh synthesis (persisted on
/// success). The `bool` is `true` when this call synthesized.
///
/// # Errors
///
/// Propagates [`synthesize_wir`] failures.
pub fn wir_translator_cached(
    from: WirVersion,
    to: WirVersion,
) -> Result<(Arc<WirOutcome>, bool), WirSynthError> {
    if let Some(hit) = wir_cache()
        .lock()
        .expect("wir cache poisoned")
        .get(&(from, to))
    {
        return Ok((Arc::clone(hit), false));
    }
    if let Some(store) = active_store() {
        if let Some(text) = store.load_named(&wir_store_name(from, to)) {
            if let Ok(t) = WirTranslator::parse(&text) {
                if t.from == from && t.to == to && validate_wir_translator(&t).is_ok() {
                    let outcome = Arc::new(WirOutcome {
                        translator: t,
                        stats: WirSynthStats::default(),
                    });
                    wir_cache()
                        .lock()
                        .expect("wir cache poisoned")
                        .insert((from, to), Arc::clone(&outcome));
                    siro_trace::counter("wir.store_hits", 1);
                    return Ok((outcome, false));
                }
            }
        }
    }
    let outcome = Arc::new(synthesize_wir(from, to)?);
    if let Some(store) = active_store() {
        let _ = store.save_named(&wir_store_name(from, to), &outcome.translator.render());
    }
    wir_cache()
        .lock()
        .expect("wir cache poisoned")
        .insert((from, to), Arc::clone(&outcome));
    Ok((outcome, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_pair_synthesizes() {
        for from in WirVersion::CATALOG {
            for to in WirVersion::CATALOG {
                if from == to {
                    continue;
                }
                let out =
                    synthesize_wir(from, to).unwrap_or_else(|e| panic!("wir{from}->wir{to}: {e}"));
                assert_eq!(out.stats.kinds, from.instruction_set().len());
                assert!(
                    out.stats.rejected > 0,
                    "search should have rejected type-correct-but-wrong candidates"
                );
            }
        }
    }

    #[test]
    fn search_resolves_the_three_quirk_families() {
        // Rename: 1.0 -> 2.0 picks build_* names.
        let up = synthesize_wir(WirVersion::W1_0, WirVersion::W2_0).unwrap();
        assert_eq!(up.translator.arms[&WKind::Const], "build_const");
        // Reorder: arguments still assemble (validated by probes) at 3.0.
        let re = synthesize_wir(WirVersion::W2_0, WirVersion::W3_0).unwrap();
        assert_eq!(re.translator.arms[&WKind::Binop], "build_binop");
        assert_eq!(re.translator.arms[&WKind::Call], "build_call_ref");
        // Migration: select at a 1.0 target resolves to the composite.
        let down = synthesize_wir(WirVersion::W2_0, WirVersion::W1_0).unwrap();
        assert_eq!(
            down.translator.arms[&WKind::Select],
            "emit_select_via_branch"
        );
        assert_eq!(
            down.translator.arms[&WKind::LocalTee],
            "emit_tee_via_set_get"
        );
        let down3 = synthesize_wir(WirVersion::W3_0, WirVersion::W1_0).unwrap();
        assert_eq!(
            down3.translator.arms[&WKind::BrTable],
            "emit_br_table_via_chain"
        );
    }

    #[test]
    fn translated_generated_modules_preserve_behaviour() {
        for (from, to) in [
            (WirVersion::W1_0, WirVersion::W3_0),
            (WirVersion::W3_0, WirVersion::W1_0),
            (WirVersion::W2_0, WirVersion::W1_0),
        ] {
            let t = synthesize_wir(from, to).unwrap().translator;
            for seed in 0..40 {
                let m = siro_wir::generate_module(seed, from);
                let out = t
                    .translate_module(&m)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                verify_module(&out).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                let want = WirMachine::new(&m).run_main().result;
                let got = WirMachine::new(&out).run_main().result;
                assert_eq!(want, got, "seed {seed} wir{from}->wir{to}");
            }
        }
    }

    #[test]
    fn corpus_cases_translate_across_every_pair() {
        for from in WirVersion::CATALOG {
            for to in WirVersion::CATALOG {
                if from == to {
                    continue;
                }
                let t = synthesize_wir(from, to).unwrap().translator;
                for m in siro_wir::corpus::cases_at(from) {
                    let out = t
                        .translate_module(&m)
                        .unwrap_or_else(|e| panic!("{} wir{from}->wir{to}: {e}", m.name));
                    verify_module(&out).unwrap();
                    assert_eq!(
                        WirMachine::new(&m).run_main().result,
                        WirMachine::new(&out).run_main().result,
                        "{} wir{from}->wir{to}",
                        m.name
                    );
                }
            }
        }
    }

    #[test]
    fn render_parse_round_trips_and_revalidates() {
        let out = synthesize_wir(WirVersion::W3_0, WirVersion::W1_0).unwrap();
        let text = out.translator.render();
        assert!(text.starts_with("SIRW 1\nfrom 3.0\nto 1.0\n"));
        let back = WirTranslator::parse(&text).unwrap();
        assert_eq!(back.arms, out.translator.arms);
        validate_wir_translator(&back).unwrap();
    }
}
