//! Type-guided candidate generation (§4.2, step ➊ of Alg. 2).
//!
//! For each common instruction kind `k`, the generator searches the IR type
//! graph backwards from the target type `Inst(k, Target)` and materialises
//! every *feasible subgraph* (Def. 4.2) as an [`ApiProgram`]:
//!
//! * **Consumption rule** — every component invocation receives exactly one
//!   argument per parameter, satisfied by construction.
//! * **Reachability rule** — programs must consume the source instruction
//!   (nullary builders exempt) and end in the target type, checked by
//!   [`ApiProgram::well_typed`].
//!
//! Structural pruning embodied in the search (all justified by the paper's
//! "analyze the type information of APIs"):
//!
//! * Only getters applicable to kind `k` participate.
//! * Constant indices beyond the kind's static operand arity are skipped.
//! * Builders appear only at the root: common-instruction translators are
//!   one-to-one mappings (Def. 3.1).

use std::collections::HashMap;

use siro_api::{ApiCall, ApiId, ApiKind, ApiProgram, ApiType, Reg, Side};
use siro_ir::Opcode;

use crate::typegraph::TypeGraph;

/// Limits for the candidate search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenLimits {
    /// Maximum distinct producer expressions kept per needed type.
    pub max_exprs_per_type: usize,
    /// Maximum candidate programs kept per instruction kind.
    pub max_candidates_per_kind: usize,
    /// Maximum recursion depth below the root builder.
    pub max_depth: u32,
}

impl Default for GenLimits {
    fn default() -> Self {
        GenLimits {
            max_exprs_per_type: 128,
            max_candidates_per_kind: 4096,
            max_depth: 3,
        }
    }
}

/// An expression tree over API components (flattened into programs later).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Expr {
    Input,
    Call(ApiId, Vec<Expr>),
}

/// Generates the candidate atomic translators Λ*_k for one kind.
pub fn generate_for_kind(
    graph: &TypeGraph<'_>,
    kind: Opcode,
    limits: GenLimits,
) -> Vec<ApiProgram> {
    let reg = graph.registry();
    let target = ApiType::Inst(kind, Side::Target);
    let reachable = graph.backward_reachable(target);
    let mut gen = Gen {
        graph,
        kind,
        limits,
        memo: HashMap::new(),
    };
    let mut out = Vec::new();
    for &builder in graph.producers_of(target) {
        if !reachable.contains(&builder) {
            continue;
        }
        let f = reg.get(builder);
        if f.kind != ApiKind::Builder {
            continue;
        }
        // Producers for each parameter.
        let per_param: Vec<Vec<Expr>> = f
            .params
            .iter()
            .map(|&p| gen.producers(p, limits.max_depth))
            .collect();
        if per_param.iter().any(Vec::is_empty) {
            continue;
        }
        // Cartesian product, capped.
        let mut idx = vec![0usize; per_param.len()];
        loop {
            let args: Vec<Expr> = idx
                .iter()
                .zip(&per_param)
                .map(|(&i, v)| v[i].clone())
                .collect();
            let expr = Expr::Call(builder, args);
            out.push(flatten(reg, kind, &expr));
            if out.len() >= limits.max_candidates_per_kind {
                break;
            }
            // Advance mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == idx.len() {
                    break;
                }
                idx[pos] += 1;
                if idx[pos] < per_param[pos].len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == idx.len() {
                break;
            }
        }
        if out.len() >= limits.max_candidates_per_kind {
            break;
        }
    }
    // Keep only well-typed, input-consuming programs, deduplicated.
    let raw = out.len() as u64;
    out.retain(|p| p.well_typed(reg));
    out.sort();
    out.dedup();
    siro_trace::counter("synth.candidates_generated", out.len() as u64);
    siro_trace::counter("synth.candidates_type_pruned", raw - out.len() as u64);
    out
}

struct Gen<'g, 'r> {
    graph: &'g TypeGraph<'r>,
    kind: Opcode,
    limits: GenLimits,
    memo: HashMap<(ApiType, u32), Vec<Expr>>,
}

impl Gen<'_, '_> {
    /// All expressions producing a value usable as `ty`, within `depth`
    /// component applications.
    fn producers(&mut self, ty: ApiType, depth: u32) -> Vec<Expr> {
        if let Some(v) = self.memo.get(&(ty, depth)) {
            return v.clone();
        }
        let reg = self.graph.registry();
        let mut out = Vec::new();
        // The input instruction itself.
        if ty.accepts(ApiType::Inst(self.kind, Side::Source)) {
            out.push(Expr::Input);
        }
        if depth > 0 {
            for &api in self.graph.producers_of(ty) {
                let f = reg.get(api);
                if !self.allowed(api) {
                    continue;
                }
                let per_param: Vec<Vec<Expr>> = f
                    .params
                    .iter()
                    .map(|&p| self.producers(p, depth - 1))
                    .collect();
                if per_param.iter().any(Vec::is_empty) {
                    continue;
                }
                let mut idx = vec![0usize; per_param.len()];
                'prod: loop {
                    let args: Vec<Expr> = idx
                        .iter()
                        .zip(&per_param)
                        .map(|(&i, v)| v[i].clone())
                        .collect();
                    out.push(Expr::Call(api, args));
                    if out.len() >= self.limits.max_exprs_per_type {
                        break 'prod;
                    }
                    if per_param.is_empty() {
                        break;
                    }
                    let mut pos = 0;
                    loop {
                        if pos == idx.len() {
                            break 'prod;
                        }
                        idx[pos] += 1;
                        if idx[pos] < per_param[pos].len() {
                            break;
                        }
                        idx[pos] = 0;
                        pos += 1;
                    }
                }
                if out.len() >= self.limits.max_exprs_per_type {
                    break;
                }
            }
        }
        out.sort();
        out.dedup();
        out.truncate(self.limits.max_exprs_per_type);
        self.memo.insert((ty, depth), out.clone());
        out
    }

    /// Structural pruning for non-root components.
    fn allowed(&self, api: ApiId) -> bool {
        let reg = self.graph.registry();
        let f = reg.get(api);
        match f.kind {
            // One-to-one mapping: builders only at the root.
            ApiKind::Builder => false,
            ApiKind::Getter => {
                // Only getters on this kind's source instruction.
                f.params
                    .first()
                    .is_some_and(|p| p.accepts(ApiType::Inst(self.kind, Side::Source)))
            }
            ApiKind::Const => {
                // Indices beyond the kind's static arity can never succeed.
                let bound = siro_api::operand_index_bound(self.kind);
                match f
                    .name
                    .strip_prefix("const_")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    Some(i) => i < bound.max(1),
                    None => true,
                }
            }
            ApiKind::OperandTranslator => true,
        }
    }
}

/// Flattens an expression tree into a straight-line program with common
/// subexpressions shared (so `get_condition(inst)` is fetched once even if
/// used twice, as in hand-written translators).
fn flatten(reg: &siro_api::ApiRegistry, kind: Opcode, root: &Expr) -> ApiProgram {
    let _ = reg;
    let mut steps: Vec<ApiCall> = Vec::new();
    let mut cache: HashMap<Expr, usize> = HashMap::new();
    fn walk(e: &Expr, steps: &mut Vec<ApiCall>, cache: &mut HashMap<Expr, usize>) -> Reg {
        match e {
            Expr::Input => Reg::Input,
            Expr::Call(api, args) => {
                if let Some(&i) = cache.get(e) {
                    return Reg::Step(i);
                }
                let regs: Vec<Reg> = args.iter().map(|a| walk(a, steps, cache)).collect();
                let i = steps.len();
                steps.push(ApiCall {
                    api: *api,
                    args: regs,
                });
                cache.insert(e.clone(), i);
                Reg::Step(i)
            }
        }
    }
    walk(root, &mut steps, &mut cache);
    ApiProgram { kind, steps }
}

/// Generates candidates for every kind common to the registry's version
/// pair, returning `(kind, candidates)` in opcode order.
pub fn generate_all(graph: &TypeGraph<'_>, limits: GenLimits) -> Vec<(Opcode, Vec<ApiProgram>)> {
    let reg = graph.registry();
    reg.src_version
        .common_instructions(reg.tgt_version)
        .into_iter()
        .map(|k| (k, generate_for_kind(graph, k, limits)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::ApiRegistry;
    use siro_ir::IrVersion;

    fn candidates(kind: Opcode) -> (ApiRegistry, Vec<ApiProgram>) {
        let reg = ApiRegistry::for_pair(IrVersion::V12_0, IrVersion::V3_6);
        let progs = {
            let graph = TypeGraph::new(&reg);
            generate_for_kind(&graph, kind, GenLimits::default())
        };
        (reg, progs)
    }

    #[test]
    fn branch_candidates_include_both_correct_forms() {
        let (reg, progs) = candidates(Opcode::Br);
        assert!(
            progs.len() >= 10,
            "too few branch candidates: {}",
            progs.len()
        );
        let summaries: Vec<String> = progs.iter().map(|p| p.summary(&reg)).collect();
        // The Fig. 4 translator (via get_successor)...
        assert!(
            summaries
                .iter()
                .any(|s| s == "create_br(translate_block(get_successor(inst, const_0())))"),
            "missing correct uncond-br candidate"
        );
        // ...and the Fig. 11 equivalent (via get_block_operand).
        assert!(
            summaries
                .iter()
                .any(|s| s == "create_br(translate_block(get_block_operand(inst, const_0())))"),
            "missing alias uncond-br candidate"
        );
        // The correct conditional translator.
        assert!(summaries
            .iter()
            .any(|s| s.contains("create_cond_br(translate_value(get_condition(inst))")));
        // And the Fig. 9 wrong-but-well-typed swapped variant.
        assert!(summaries.iter().any(|s| s
            == "create_cond_br(translate_value(get_condition(inst)), \
                translate_block(get_successor(inst, const_1())), \
                translate_block(get_successor(inst, const_0())))"
            || s.contains("const_1())), translate_block(get_successor(inst, const_0())))")));
    }

    #[test]
    fn binary_candidates_cover_operand_permutations() {
        let (reg, progs) = candidates(Opcode::Sub);
        let summaries: Vec<String> = progs.iter().map(|p| p.summary(&reg)).collect();
        assert!(summaries
            .iter()
            .any(|s| s.contains("get_operand(inst, const_0())")
                && s.contains("get_operand(inst, const_1())")));
        // The duplicated-operand candidate of Fig. 7 must be in the space.
        let dup = "create_sub(translate_value(get_operand(inst, const_0())), \
                   translate_value(get_operand(inst, const_0())))";
        assert!(summaries.iter().any(|s| s == dup), "missing {dup}");
    }

    #[test]
    fn every_candidate_is_well_typed() {
        for kind in [
            Opcode::Br,
            Opcode::Ret,
            Opcode::Load,
            Opcode::Phi,
            Opcode::Call,
        ] {
            let (reg, progs) = candidates(kind);
            assert!(!progs.is_empty(), "no candidates for {kind}");
            for p in &progs {
                assert!(
                    p.well_typed(&reg),
                    "ill-typed candidate {}",
                    p.summary(&reg)
                );
            }
        }
    }

    #[test]
    fn ret_includes_nullary_void_builder() {
        let (reg, progs) = candidates(Opcode::Ret);
        let summaries: Vec<String> = progs.iter().map(|p| p.summary(&reg)).collect();
        assert!(summaries.iter().any(|s| s == "create_ret_void()"));
        assert!(summaries
            .iter()
            .any(|s| s == "create_ret(translate_value(get_return_value(inst)))"));
    }

    #[test]
    fn generate_all_covers_common_kinds() {
        let reg = ApiRegistry::for_pair(IrVersion::V12_0, IrVersion::V3_6);
        let graph = TypeGraph::new(&reg);
        let all = generate_all(&graph, GenLimits::default());
        assert_eq!(all.len(), 58);
        for (k, progs) in &all {
            assert!(!progs.is_empty(), "no candidates for {k}");
        }
    }

    #[test]
    fn explicit_type_builders_change_the_space() {
        // Upgrading to 13.0: create_load takes (TypeRef, Value).
        let reg = ApiRegistry::for_pair(IrVersion::V3_6, IrVersion::V13_0);
        let graph = TypeGraph::new(&reg);
        let progs = generate_for_kind(&graph, Opcode::Load, GenLimits::default());
        let summaries: Vec<String> = progs.iter().map(|p| p.summary(&reg)).collect();
        assert!(summaries
            .iter()
            .any(|s| s.contains("create_load(translate_type(")));
    }
}
