//! Cross-dialect bridge anchors: lowering Siro straight-line functions to
//! WIR and raising WIR straight-line bodies back into Siro SSA.
//!
//! The version-graph router composes translators *within* a dialect freely,
//! but crossing between the Siro register IR and the WIR stack machine needs
//! a semantic map, not a synthesized API rewrite: the two dialects disagree
//! on observable behaviour in exactly two places,
//!
//! 1. **`sdiv MIN / -1`** — Siro wraps (`wrapping_div`, the result is `MIN`)
//!    while WIR traps with `integer-overflow` like wasm;
//! 2. **`select` condition truthiness** — Siro keys on the *low bit* of the
//!    condition while WIR keys on *non-zero*.
//!
//! Both directions of the bridge normalize these divergences so that a
//! module and its image land in the same behaviour bucket
//! ([`XBehaviour`]): lowering guards `sdiv` with a select-composite that
//! preserves the wrap, and masks select conditions with `& 1`; raising
//! guards `div_s` so the overflow case degrades to a division by zero —
//! still an arithmetic trap, i.e. the same bucket WIR's `integer-overflow`
//! occupies.
//!
//! Bridges exist only at **anchor pairs** ([`BRIDGE_ANCHORS`]): a bridge is
//! validated once per pair over a corpus of generated straight-line modules
//! (raise, round-trip lower, plus hand-written divergence cases) and the
//! resulting certificate is persisted as a `.sirb` named store entry. The
//! router treats a validated anchor as a warm edge; everything else
//! cross-dialect is unreachable rather than silently mis-translated.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use siro_ir::interp::{Machine, TrapKind};
use siro_ir::{FuncBuilder, InstId, IntPredicate, IrVersion, Module, Opcode, Type, ValueRef};
use siro_wir::{
    generate_straightline, WBin, WCmp, WTy, WirExec, WirFunc, WirInst, WirMachine, WirModule,
    WirTrap, WirVersion,
};

use crate::store::active_store;

/// Fuel budget used when bucketing behaviour on either side of the bridge.
pub const BRIDGE_FUEL: u64 = 200_000;

/// Number of generated straight-line seeds a bridge is validated over.
pub const BRIDGE_SEEDS: u64 = 48;

/// The anchor pairs at which SIRO↔WIR bridges are defined. Each entry is a
/// `(siro, wir)` version pair; the bridge is bidirectional.
pub const BRIDGE_ANCHORS: [(IrVersion, WirVersion); 2] = [
    (IrVersion::V13_0, WirVersion::W2_0),
    (IrVersion::V15_0, WirVersion::W3_0),
];

/// Whether `(siro, wir)` is one of the [`BRIDGE_ANCHORS`].
pub fn is_anchor_pair(siro: IrVersion, wir: WirVersion) -> bool {
    BRIDGE_ANCHORS.iter().any(|&(s, w)| s == siro && w == wir)
}

/// A bridge failure: an out-of-scope construct, a malformed input, or a
/// validation divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// The input uses a construct outside the bridged subset.
    Unsupported(String),
    /// The input is structurally broken (should not happen on verified
    /// modules).
    Malformed(String),
    /// The requested pair is not a bridge anchor.
    NotAnAnchor(IrVersion, WirVersion),
    /// Validation found a behaviour divergence between a module and its
    /// image.
    Divergence(String),
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::Unsupported(what) => write!(f, "bridge: unsupported {what}"),
            BridgeError::Malformed(what) => write!(f, "bridge: malformed input: {what}"),
            BridgeError::NotAnAnchor(s, w) => {
                write!(f, "bridge: {s}<->wir{w} is not an anchor pair")
            }
            BridgeError::Divergence(what) => write!(f, "bridge: divergence: {what}"),
        }
    }
}

impl std::error::Error for BridgeError {}

// ---------------------------------------------------------------------------
// Behaviour bucketing
// ---------------------------------------------------------------------------

/// A dialect-neutral behaviour bucket. Exact values must match across the
/// bridge; arithmetic traps are compared as a class because the two
/// dialects name the `MIN / -1` case differently (Siro wraps so the guard
/// forces a division by zero; WIR traps `integer-overflow` natively).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XBehaviour {
    /// Returned this integer (i32 results sign-extended).
    Value(i64),
    /// An arithmetic trap: division by zero or integer overflow.
    Arith,
    /// Ran out of fuel.
    Fuel,
    /// Anything else (other traps, missing result, interpreter error).
    Other,
}

impl fmt::Display for XBehaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XBehaviour::Value(v) => write!(f, "value {v}"),
            XBehaviour::Arith => f.write_str("arith-trap"),
            XBehaviour::Fuel => f.write_str("fuel"),
            XBehaviour::Other => f.write_str("other"),
        }
    }
}

/// Runs a WIR module and buckets the outcome.
pub fn wir_behaviour(m: &WirModule) -> XBehaviour {
    match WirMachine::new(m).with_fuel(BRIDGE_FUEL).run_main().result {
        WirExec::Value(v) => XBehaviour::Value(v),
        WirExec::Trap(WirTrap::DivByZero) | WirExec::Trap(WirTrap::IntegerOverflow) => {
            XBehaviour::Arith
        }
        WirExec::Trap(WirTrap::FuelExhausted) => XBehaviour::Fuel,
        _ => XBehaviour::Other,
    }
}

/// Runs a Siro module's `main` and buckets the outcome.
pub fn siro_behaviour(m: &Module) -> XBehaviour {
    let Ok(o) = Machine::new(m).with_fuel(BRIDGE_FUEL).run_main() else {
        return XBehaviour::Other;
    };
    if let Some(v) = o.return_int() {
        return XBehaviour::Value(v);
    }
    match o.trap().map(|t| t.kind.clone()) {
        Some(TrapKind::DivByZero) => XBehaviour::Arith,
        Some(TrapKind::FuelExhausted) => XBehaviour::Fuel,
        _ => XBehaviour::Other,
    }
}

// ---------------------------------------------------------------------------
// Lowering: Siro -> WIR
// ---------------------------------------------------------------------------

/// Lowers a straight-line Siro `main` (single entry block, `i32` return,
/// no params) into a WIR module of the given version.
///
/// Every SSA result is spilled into a fresh WIR local; `sdiv` lowers to a
/// select-guarded composite that preserves Siro's wrapping `MIN / -1`, and
/// `select` conditions are masked with `& 1` to preserve Siro's low-bit
/// truthiness.
///
/// # Errors
///
/// [`BridgeError::Unsupported`] on multi-block functions, non-`i32` shapes,
/// or opcodes outside the bridged subset.
pub fn lower_module(m: &Module, to: WirVersion) -> Result<WirModule, BridgeError> {
    if to < WirVersion::W2_0 {
        return Err(BridgeError::Unsupported(format!(
            "lowering targets need select (wir2.0+), got wir{to}"
        )));
    }
    let fid = m
        .func_by_name("main")
        .ok_or_else(|| BridgeError::Malformed("no main function".into()))?;
    let func = m.func(fid);
    if func.is_external || func.varargs || !func.params.is_empty() {
        return Err(BridgeError::Unsupported(
            "main must be a nullary definition".into(),
        ));
    }
    if !matches!(m.types.get(func.ret_ty), Type::Int(32)) {
        return Err(BridgeError::Unsupported("main must return i32".into()));
    }
    if func.blocks.len() != 1 {
        return Err(BridgeError::Unsupported(format!(
            "control flow ({} blocks); the bridge is straight-line only",
            func.blocks.len()
        )));
    }
    let entry = func
        .entry()
        .ok_or_else(|| BridgeError::Malformed("main has no entry block".into()))?;

    let mut out = WirModule::new(format!("{}_lowered", m.name), to);
    let mut wf = WirFunc::new("main", vec![], Some(WTy::I32));
    // SSA result -> WIR local.
    let mut slot: HashMap<InstId, u32> = HashMap::new();

    // Pushes one Siro operand onto the WIR stack.
    let push_operand =
        |wf: &mut WirFunc, slot: &HashMap<InstId, u32>, v: &ValueRef| -> Result<(), BridgeError> {
            match v {
                ValueRef::Inst(id) => {
                    let l = slot.get(id).ok_or_else(|| {
                        BridgeError::Malformed("operand before definition".into())
                    })?;
                    wf.body.alloc(WirInst::LocalGet(*l));
                    Ok(())
                }
                ValueRef::ConstInt { value, .. } => {
                    wf.body
                        .alloc(WirInst::Const(WTy::I32, *value as i32 as i64));
                    Ok(())
                }
                other => Err(BridgeError::Unsupported(format!("operand {other:?}"))),
            }
        };

    let mut returned = false;
    for &iid in &func.block(entry).insts {
        let inst = func.inst(iid);
        if returned {
            return Err(BridgeError::Malformed("instruction after ret".into()));
        }
        match inst.opcode {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::SRem
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::AShr => {
                let op = match inst.opcode {
                    Opcode::Add => WBin::Add,
                    Opcode::Sub => WBin::Sub,
                    Opcode::Mul => WBin::Mul,
                    Opcode::SRem => WBin::RemS,
                    Opcode::And => WBin::And,
                    Opcode::Or => WBin::Or,
                    Opcode::Xor => WBin::Xor,
                    Opcode::Shl => WBin::Shl,
                    Opcode::AShr => WBin::ShrS,
                    _ => unreachable!(),
                };
                push_operand(&mut wf, &slot, &inst.operands[0])?;
                push_operand(&mut wf, &slot, &inst.operands[1])?;
                wf.body.alloc(WirInst::Binop(WTy::I32, op));
                let l = wf.alloc_local(WTy::I32);
                wf.body.alloc(WirInst::LocalSet(l));
                slot.insert(iid, l);
            }
            Opcode::SDiv => {
                // Guarded lowering preserving Siro's wrap: WIR `div_s`
                // traps on MIN / -1, so divide by a safe divisor when the
                // overflow predicate holds and select the wrapped result
                // (which is just `a`, i.e. MIN) afterwards.
                let la = wf.alloc_local(WTy::I32);
                let lb = wf.alloc_local(WTy::I32);
                let lovf = wf.alloc_local(WTy::I32);
                let lq = wf.alloc_local(WTy::I32);
                push_operand(&mut wf, &slot, &inst.operands[0])?;
                wf.body.alloc(WirInst::LocalSet(la));
                push_operand(&mut wf, &slot, &inst.operands[1])?;
                wf.body.alloc(WirInst::LocalSet(lb));
                // ovf = (a == MIN) & (b == -1)
                wf.body.alloc(WirInst::LocalGet(la));
                wf.body.alloc(WirInst::Const(WTy::I32, i32::MIN as i64));
                wf.body.alloc(WirInst::Cmp(WTy::I32, WCmp::Eq));
                wf.body.alloc(WirInst::LocalGet(lb));
                wf.body.alloc(WirInst::Const(WTy::I32, -1));
                wf.body.alloc(WirInst::Cmp(WTy::I32, WCmp::Eq));
                wf.body.alloc(WirInst::Binop(WTy::I32, WBin::And));
                wf.body.alloc(WirInst::LocalSet(lovf));
                // q = a / (ovf ? 1 : b)  — never traps on overflow, still
                // traps DivByZero exactly when b == 0.
                wf.body.alloc(WirInst::LocalGet(la));
                wf.body.alloc(WirInst::Const(WTy::I32, 1));
                wf.body.alloc(WirInst::LocalGet(lb));
                wf.body.alloc(WirInst::LocalGet(lovf));
                wf.body.alloc(WirInst::Select);
                wf.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
                wf.body.alloc(WirInst::LocalSet(lq));
                // result = ovf ? a : q   (wrapping MIN / -1 == MIN == a)
                wf.body.alloc(WirInst::LocalGet(la));
                wf.body.alloc(WirInst::LocalGet(lq));
                wf.body.alloc(WirInst::LocalGet(lovf));
                wf.body.alloc(WirInst::Select);
                let l = wf.alloc_local(WTy::I32);
                wf.body.alloc(WirInst::LocalSet(l));
                slot.insert(iid, l);
            }
            Opcode::ICmp => {
                let pred = inst
                    .attrs
                    .int_pred
                    .ok_or_else(|| BridgeError::Malformed("icmp without predicate".into()))?;
                let c = match pred {
                    IntPredicate::Eq => WCmp::Eq,
                    IntPredicate::Ne => WCmp::Ne,
                    IntPredicate::Slt => WCmp::LtS,
                    IntPredicate::Sgt => WCmp::GtS,
                    IntPredicate::Sle => WCmp::LeS,
                    IntPredicate::Sge => WCmp::GeS,
                    other => {
                        return Err(BridgeError::Unsupported(format!(
                            "unsigned icmp predicate {other:?}"
                        )))
                    }
                };
                push_operand(&mut wf, &slot, &inst.operands[0])?;
                push_operand(&mut wf, &slot, &inst.operands[1])?;
                wf.body.alloc(WirInst::Cmp(WTy::I32, c));
                let l = wf.alloc_local(WTy::I32);
                wf.body.alloc(WirInst::LocalSet(l));
                slot.insert(iid, l);
            }
            Opcode::Select => {
                // Siro keys on the condition's low bit; WIR keys on
                // non-zero. Mask with `& 1` before selecting.
                push_operand(&mut wf, &slot, &inst.operands[1])?; // true value
                push_operand(&mut wf, &slot, &inst.operands[2])?; // false value
                push_operand(&mut wf, &slot, &inst.operands[0])?; // condition
                wf.body.alloc(WirInst::Const(WTy::I32, 1));
                wf.body.alloc(WirInst::Binop(WTy::I32, WBin::And));
                wf.body.alloc(WirInst::Select);
                let l = wf.alloc_local(WTy::I32);
                wf.body.alloc(WirInst::LocalSet(l));
                slot.insert(iid, l);
            }
            Opcode::ZExt => {
                // Only `zext i1 -> i32` of a compare result appears in the
                // bridged subset; the WIR value is already an i32 0/1, so
                // this is a move.
                let src = match inst.operands[0] {
                    ValueRef::Inst(id) if func.inst(id).opcode == Opcode::ICmp => id,
                    _ => {
                        return Err(BridgeError::Unsupported(
                            "zext of a non-compare value".into(),
                        ))
                    }
                };
                let from = *slot
                    .get(&src)
                    .ok_or_else(|| BridgeError::Malformed("zext before definition".into()))?;
                wf.body.alloc(WirInst::LocalGet(from));
                let l = wf.alloc_local(WTy::I32);
                wf.body.alloc(WirInst::LocalSet(l));
                slot.insert(iid, l);
            }
            Opcode::Ret => {
                let v = inst
                    .operands
                    .first()
                    .ok_or_else(|| BridgeError::Unsupported("ret void".into()))?;
                push_operand(&mut wf, &slot, v)?;
                wf.body.alloc(WirInst::Return);
                returned = true;
            }
            other => {
                return Err(BridgeError::Unsupported(format!("opcode {}", other.name())));
            }
        }
    }
    if !returned {
        return Err(BridgeError::Malformed("main does not return".into()));
    }
    out.funcs.push(wf);
    siro_wir::verify_module(&out)
        .map_err(|e| BridgeError::Malformed(format!("lowered module fails validation: {e}")))?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Raising: WIR -> Siro
// ---------------------------------------------------------------------------

/// Raises a straight-line WIR `main` (no control flow, no calls, `i32`
/// result) into a Siro module of the given version via symbolic stack
/// evaluation.
///
/// `div_s` raises to a guarded `sdiv` whose divisor is forced to zero on
/// the `MIN / -1` case, so WIR's `integer-overflow` trap degrades to
/// Siro's division-by-zero — the same [`XBehaviour::Arith`] bucket.
/// `select` conditions are re-boolean-ized with `icmp ne 0` to preserve
/// WIR's non-zero truthiness under Siro's low-bit rule.
///
/// # Errors
///
/// [`BridgeError::Unsupported`] on control flow, calls, or `i64` operands.
pub fn raise_module(w: &WirModule, to: IrVersion) -> Result<Module, BridgeError> {
    let wf = w
        .main()
        .ok_or_else(|| BridgeError::Malformed("no main function".into()))?;
    if w.funcs.len() != 1 {
        return Err(BridgeError::Unsupported("multi-function modules".into()));
    }
    if !wf.params.is_empty() || wf.result != Some(WTy::I32) {
        return Err(BridgeError::Unsupported("main must be () -> i32".into()));
    }
    if wf.locals.iter().any(|&t| t != WTy::I32) {
        return Err(BridgeError::Unsupported("i64 locals".into()));
    }

    let mut m = Module::new(format!("{}_raised", w.name), to);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);

    let zero = ValueRef::const_int(i32t, 0);
    let mut locals: Vec<ValueRef> = vec![zero; wf.locals.len()];
    let mut stack: Vec<ValueRef> = Vec::new();
    let pop = |stack: &mut Vec<ValueRef>| -> Result<ValueRef, BridgeError> {
        stack
            .pop()
            .ok_or_else(|| BridgeError::Malformed("stack underflow".into()))
    };

    let mut returned = false;
    for inst in wf.body.iter() {
        if returned {
            return Err(BridgeError::Malformed("instruction after return".into()));
        }
        match inst {
            WirInst::Const(WTy::I32, v) => stack.push(ValueRef::const_int(i32t, *v)),
            WirInst::Const(WTy::I64, _) => {
                return Err(BridgeError::Unsupported("i64 constants".into()))
            }
            WirInst::Binop(WTy::I32, op) => {
                let rhs = pop(&mut stack)?;
                let lhs = pop(&mut stack)?;
                let v = match op {
                    WBin::Add => b.add(lhs, rhs),
                    WBin::Sub => b.sub(lhs, rhs),
                    WBin::Mul => b.mul(lhs, rhs),
                    WBin::RemS => b.srem(lhs, rhs),
                    WBin::And => b.and(lhs, rhs),
                    WBin::Or => b.or(lhs, rhs),
                    WBin::Xor => b.xor(lhs, rhs),
                    WBin::Shl => b.shl(lhs, rhs),
                    WBin::ShrS => b.ashr(lhs, rhs),
                    WBin::DivS => {
                        // WIR traps MIN / -1; Siro would wrap. Force the
                        // divisor to zero on that case so it stays an
                        // arithmetic trap (DivByZero) on the Siro side.
                        let ea = b.icmp(
                            IntPredicate::Eq,
                            lhs,
                            ValueRef::const_int(i32t, i32::MIN as i64),
                        );
                        let eb = b.icmp(IntPredicate::Eq, rhs, ValueRef::const_int(i32t, -1));
                        let ovf = b.and(ea, eb);
                        let safe = b.select(ovf, zero, rhs);
                        b.sdiv(lhs, safe)
                    }
                };
                stack.push(v);
            }
            WirInst::Cmp(WTy::I32, c) => {
                let rhs = pop(&mut stack)?;
                let lhs = pop(&mut stack)?;
                let pred = match c {
                    WCmp::Eq => IntPredicate::Eq,
                    WCmp::Ne => IntPredicate::Ne,
                    WCmp::LtS => IntPredicate::Slt,
                    WCmp::GtS => IntPredicate::Sgt,
                    WCmp::LeS => IntPredicate::Sle,
                    WCmp::GeS => IntPredicate::Sge,
                };
                let v = b.icmp(pred, lhs, rhs);
                stack.push(b.zext(v, i32t));
            }
            WirInst::Eqz(WTy::I32) => {
                let a = pop(&mut stack)?;
                let v = b.icmp(IntPredicate::Eq, a, zero);
                stack.push(b.zext(v, i32t));
            }
            WirInst::Select => {
                // WIR: non-zero condition picks the first pushed value.
                // Siro keys on the low bit, so re-boolean-ize first.
                let cond = pop(&mut stack)?;
                let on_false = pop(&mut stack)?;
                let on_true = pop(&mut stack)?;
                let nz = b.icmp(IntPredicate::Ne, cond, zero);
                stack.push(b.select(nz, on_true, on_false));
            }
            WirInst::LocalGet(i) => {
                let v = *locals
                    .get(*i as usize)
                    .ok_or_else(|| BridgeError::Malformed("local out of range".into()))?;
                stack.push(v);
            }
            WirInst::LocalSet(i) => {
                let v = pop(&mut stack)?;
                *locals
                    .get_mut(*i as usize)
                    .ok_or_else(|| BridgeError::Malformed("local out of range".into()))? = v;
            }
            WirInst::LocalTee(i) => {
                let v = *stack
                    .last()
                    .ok_or_else(|| BridgeError::Malformed("stack underflow".into()))?;
                *locals
                    .get_mut(*i as usize)
                    .ok_or_else(|| BridgeError::Malformed("local out of range".into()))? = v;
            }
            WirInst::Drop => {
                pop(&mut stack)?;
            }
            WirInst::Nop => {}
            WirInst::Return => {
                let v = pop(&mut stack)?;
                b.ret(Some(v));
                returned = true;
            }
            WirInst::Binop(WTy::I64, _) | WirInst::Cmp(WTy::I64, _) | WirInst::Eqz(WTy::I64) => {
                return Err(BridgeError::Unsupported("i64 operations".into()))
            }
            other => {
                return Err(BridgeError::Unsupported(format!(
                    "control flow / calls ({other:?})"
                )))
            }
        }
    }
    if !returned {
        // Fall-off return: the remaining stack must be exactly the result.
        if stack.len() != 1 {
            return Err(BridgeError::Malformed(format!(
                "fall-off with stack depth {}",
                stack.len()
            )));
        }
        let v = stack.pop().expect("checked non-empty");
        b.ret(Some(v));
    }
    siro_ir::verify::verify_module(&m)
        .map_err(|e| BridgeError::Malformed(format!("raised module fails verification: {e}")))?;
    Ok(m)
}

// ---------------------------------------------------------------------------
// Validation + certificates
// ---------------------------------------------------------------------------

/// Statistics from validating one bridge anchor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Total modules whose behaviour was compared across the bridge.
    pub modules_checked: usize,
    /// How many of those ended in the arithmetic-trap bucket (the
    /// normalized divergence class).
    pub arith_cases: usize,
}

/// A validated bridge anchor.
#[derive(Debug, Clone)]
pub struct BridgeOutcome {
    /// The Siro side of the anchor.
    pub siro: IrVersion,
    /// The WIR side of the anchor.
    pub wir: WirVersion,
    /// Validation statistics.
    pub stats: BridgeStats,
}

fn check(
    label: &str,
    got: XBehaviour,
    want: XBehaviour,
    stats: &mut BridgeStats,
) -> Result<(), BridgeError> {
    stats.modules_checked += 1;
    if want == XBehaviour::Arith {
        stats.arith_cases += 1;
    }
    if got != want {
        return Err(BridgeError::Divergence(format!(
            "{label}: got {got}, want {want}"
        )));
    }
    Ok(())
}

/// Builds the WIR side of the hand-written divergence cases.
fn hand_wir_cases(wir: WirVersion) -> Vec<(&'static str, WirModule, XBehaviour)> {
    let mk = |name: &str, body: &[WirInst]| {
        let mut m = WirModule::new(name, wir);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        for i in body {
            f.body.alloc(i.clone());
        }
        m.funcs.push(f);
        m
    };
    vec![
        (
            "div-overflow",
            mk(
                "div_overflow",
                &[
                    WirInst::Const(WTy::I32, i32::MIN as i64),
                    WirInst::Const(WTy::I32, -1),
                    WirInst::Binop(WTy::I32, WBin::DivS),
                    WirInst::Return,
                ],
            ),
            XBehaviour::Arith,
        ),
        (
            "div-zero",
            mk(
                "div_zero",
                &[
                    WirInst::Const(WTy::I32, 7),
                    WirInst::Const(WTy::I32, 0),
                    WirInst::Binop(WTy::I32, WBin::DivS),
                    WirInst::Return,
                ],
            ),
            XBehaviour::Arith,
        ),
        (
            "rem-edge",
            mk(
                "rem_edge",
                &[
                    WirInst::Const(WTy::I32, i32::MIN as i64),
                    WirInst::Const(WTy::I32, -1),
                    WirInst::Binop(WTy::I32, WBin::RemS),
                    WirInst::Return,
                ],
            ),
            XBehaviour::Value(0),
        ),
        (
            "select-nonbool-cond",
            mk(
                "select_nonbool",
                &[
                    WirInst::Const(WTy::I32, 10),
                    WirInst::Const(WTy::I32, 20),
                    WirInst::Const(WTy::I32, 2), // non-zero but low bit clear
                    WirInst::Select,
                    WirInst::Return,
                ],
            ),
            XBehaviour::Value(10),
        ),
    ]
}

/// Builds the Siro side of the hand-written divergence cases.
fn hand_siro_cases(siro: IrVersion) -> Vec<(&'static str, Module, XBehaviour)> {
    let mut cases = Vec::new();

    // Siro wraps MIN / -1 — the lowered image must preserve the wrap.
    let mut m = Module::new("sdiv_wrap", siro);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let q = b.sdiv(
        ValueRef::const_int(i32t, i32::MIN as i64),
        ValueRef::const_int(i32t, -1),
    );
    b.ret(Some(q));
    cases.push(("sdiv-wrap", m, XBehaviour::Value(i32::MIN as i64)));

    // A plain guarded-path division still traps on zero.
    let mut m = Module::new("sdiv_zero", siro);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let q = b.sdiv(ValueRef::const_int(i32t, 41), ValueRef::const_int(i32t, 0));
    b.ret(Some(q));
    cases.push(("sdiv-zero", m, XBehaviour::Arith));

    // Select through a compare (the only boolean source in the subset).
    let mut m = Module::new("select_cmp", siro);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let c = b.icmp(
        IntPredicate::Slt,
        ValueRef::const_int(i32t, 3),
        ValueRef::const_int(i32t, 5),
    );
    let v = b.select(
        c,
        ValueRef::const_int(i32t, 7),
        ValueRef::const_int(i32t, 9),
    );
    b.ret(Some(v));
    cases.push(("select-cmp", m, XBehaviour::Value(7)));

    cases
}

/// Validates the `(siro, wir)` bridge over generated straight-line modules
/// (raise + round-trip lower) and the hand-written divergence cases in both
/// directions.
///
/// # Errors
///
/// [`BridgeError::Divergence`] naming the first mismatching module, or any
/// raise/lower failure on a corpus module.
pub fn validate_bridge(siro: IrVersion, wir: WirVersion) -> Result<BridgeStats, BridgeError> {
    let sp = siro_trace::span!("bridge.validate", "{siro}<->wir{wir}");
    let mut stats = BridgeStats::default();

    for seed in 0..BRIDGE_SEEDS {
        let w = generate_straightline(seed, wir);
        let want = wir_behaviour(&w);
        let s = raise_module(&w, siro)
            .map_err(|e| BridgeError::Divergence(format!("raise seed {seed}: {e}")))?;
        check(
            &format!("raise seed {seed}"),
            siro_behaviour(&s),
            want,
            &mut stats,
        )?;
        let w2 = lower_module(&s, wir)
            .map_err(|e| BridgeError::Divergence(format!("round-trip seed {seed}: {e}")))?;
        check(
            &format!("round-trip seed {seed}"),
            wir_behaviour(&w2),
            want,
            &mut stats,
        )?;
    }

    for (name, w, want) in hand_wir_cases(wir) {
        check(
            &format!("wir case {name} (native)"),
            wir_behaviour(&w),
            want,
            &mut stats,
        )?;
        let s = raise_module(&w, siro)
            .map_err(|e| BridgeError::Divergence(format!("raise case {name}: {e}")))?;
        check(
            &format!("wir case {name} (raised)"),
            siro_behaviour(&s),
            want,
            &mut stats,
        )?;
    }

    for (name, s, want) in hand_siro_cases(siro) {
        check(
            &format!("siro case {name} (native)"),
            siro_behaviour(&s),
            want,
            &mut stats,
        )?;
        let w = lower_module(&s, wir)
            .map_err(|e| BridgeError::Divergence(format!("lower case {name}: {e}")))?;
        check(
            &format!("siro case {name} (lowered)"),
            wir_behaviour(&w),
            want,
            &mut stats,
        )?;
    }

    drop(sp);
    siro_trace::counter("bridge.validated", 1);
    Ok(stats)
}

/// Store entry name for a bridge certificate, e.g. `b13.0-w2.0.sirb`.
pub fn bridge_store_name(siro: IrVersion, wir: WirVersion) -> String {
    format!("b{siro}-w{wir}.sirb")
}

fn render_certificate(o: &BridgeOutcome) -> String {
    format!(
        "SIRB 1\nsiro {}\nwir {}\nmodules {}\narith {}\n",
        o.siro, o.wir, o.stats.modules_checked, o.stats.arith_cases
    )
}

fn parse_version_pair(s: &str) -> Option<(u16, u16)> {
    let (major, minor) = s.split_once('.')?;
    Some((major.parse().ok()?, minor.parse().ok()?))
}

fn parse_certificate(text: &str) -> Option<(IrVersion, WirVersion)> {
    let mut lines = text.lines();
    if lines.next()? != "SIRB 1" {
        return None;
    }
    let (smaj, smin) = parse_version_pair(lines.next()?.strip_prefix("siro ")?)?;
    let (wmaj, wmin) = parse_version_pair(lines.next()?.strip_prefix("wir ")?)?;
    Some((IrVersion::new(smaj, smin), WirVersion::new(wmaj, wmin)))
}

type BridgeCacheMap = HashMap<(IrVersion, WirVersion), Arc<BridgeOutcome>>;

fn bridge_cache() -> &'static Mutex<BridgeCacheMap> {
    static CACHE: OnceLock<Mutex<BridgeCacheMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether the `(siro, wir)` bridge is already validated in this process.
pub fn bridge_is_hot(siro: IrVersion, wir: WirVersion) -> bool {
    bridge_cache()
        .lock()
        .expect("bridge cache poisoned")
        .contains_key(&(siro, wir))
}

/// Drops every memoized bridge certificate (tests).
pub fn reset_bridge_cache() {
    bridge_cache()
        .lock()
        .expect("bridge cache poisoned")
        .clear();
}

/// Memoized bridge acquisition: process cache, then the active store's
/// `.sirb` certificate (re-validated on load), then fresh validation
/// (persisted on success). The `bool` is `true` when this call validated
/// from scratch.
///
/// # Errors
///
/// [`BridgeError::NotAnAnchor`] off the anchor list; otherwise propagates
/// [`validate_bridge`] failures.
pub fn bridge_cached(
    siro: IrVersion,
    wir: WirVersion,
) -> Result<(Arc<BridgeOutcome>, bool), BridgeError> {
    if !is_anchor_pair(siro, wir) {
        return Err(BridgeError::NotAnAnchor(siro, wir));
    }
    if let Some(hit) = bridge_cache()
        .lock()
        .expect("bridge cache poisoned")
        .get(&(siro, wir))
    {
        return Ok((Arc::clone(hit), false));
    }
    if let Some(store) = active_store() {
        if let Some(text) = store.load_named(&bridge_store_name(siro, wir)) {
            if parse_certificate(&text) == Some((siro, wir)) {
                if let Ok(stats) = validate_bridge(siro, wir) {
                    let outcome = Arc::new(BridgeOutcome { siro, wir, stats });
                    bridge_cache()
                        .lock()
                        .expect("bridge cache poisoned")
                        .insert((siro, wir), Arc::clone(&outcome));
                    siro_trace::counter("bridge.store_hits", 1);
                    return Ok((outcome, false));
                }
            }
        }
    }
    let stats = validate_bridge(siro, wir)?;
    let outcome = Arc::new(BridgeOutcome { siro, wir, stats });
    if let Some(store) = active_store() {
        let _ = store.save_named(&bridge_store_name(siro, wir), &render_certificate(&outcome));
    }
    bridge_cache()
        .lock()
        .expect("bridge cache poisoned")
        .insert((siro, wir), Arc::clone(&outcome));
    Ok((outcome, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_anchor_validates() {
        for (siro, wir) in BRIDGE_ANCHORS {
            let stats = validate_bridge(siro, wir)
                .unwrap_or_else(|e| panic!("anchor {siro}<->wir{wir}: {e}"));
            assert!(stats.modules_checked > 2 * BRIDGE_SEEDS as usize);
            assert!(
                stats.arith_cases > 0,
                "corpus must exercise the trap bucket"
            );
        }
    }

    #[test]
    fn sdiv_wrap_survives_lowering() {
        // The genuine divergence: Siro wraps MIN / -1, WIR traps. The
        // guarded lowering must preserve the wrap...
        let (_, m, _) = hand_siro_cases(IrVersion::V13_0)
            .into_iter()
            .find(|(n, _, _)| *n == "sdiv-wrap")
            .expect("case exists");
        assert_eq!(siro_behaviour(&m), XBehaviour::Value(i32::MIN as i64));
        let w = lower_module(&m, WirVersion::W2_0).expect("lowers");
        assert_eq!(wir_behaviour(&w), XBehaviour::Value(i32::MIN as i64));

        // ...while a naive unguarded lowering demonstrably diverges.
        let mut naive = WirModule::new("naive", WirVersion::W2_0);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        f.body.alloc(WirInst::Const(WTy::I32, i32::MIN as i64));
        f.body.alloc(WirInst::Const(WTy::I32, -1));
        f.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
        f.body.alloc(WirInst::Return);
        naive.funcs.push(f);
        assert_eq!(wir_behaviour(&naive), XBehaviour::Arith);
    }

    #[test]
    fn select_truthiness_normalizes_both_ways() {
        // WIR: cond 2 is truthy. Raised to Siro (low-bit rule, 2 would be
        // falsy) the bridge must still pick the first value.
        let (_, w, want) = hand_wir_cases(WirVersion::W2_0)
            .into_iter()
            .find(|(n, _, _)| *n == "select-nonbool-cond")
            .expect("case exists");
        assert_eq!(wir_behaviour(&w), want);
        let s = raise_module(&w, IrVersion::V13_0).expect("raises");
        assert_eq!(siro_behaviour(&s), want);
    }

    #[test]
    fn overflow_trap_raises_into_the_arith_bucket() {
        let (_, w, _) = hand_wir_cases(WirVersion::W2_0)
            .into_iter()
            .find(|(n, _, _)| *n == "div-overflow")
            .expect("case exists");
        assert_eq!(wir_behaviour(&w), XBehaviour::Arith);
        let s = raise_module(&w, IrVersion::V13_0).expect("raises");
        // WIR integer-overflow degrades to Siro div-by-zero: same bucket.
        assert_eq!(siro_behaviour(&s), XBehaviour::Arith);
    }

    #[test]
    fn non_anchor_pairs_are_refused() {
        assert!(!is_anchor_pair(IrVersion::V3_6, WirVersion::W1_0));
        assert!(matches!(
            bridge_cached(IrVersion::V3_6, WirVersion::W1_0),
            Err(BridgeError::NotAnAnchor(_, _))
        ));
    }

    #[test]
    fn control_flow_is_out_of_scope() {
        let mut w = WirModule::new("cf", WirVersion::W2_0);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        f.body.alloc(WirInst::Block);
        f.body.alloc(WirInst::End);
        f.body.alloc(WirInst::Const(WTy::I32, 1));
        f.body.alloc(WirInst::Return);
        w.funcs.push(f);
        assert!(matches!(
            raise_module(&w, IrVersion::V13_0),
            Err(BridgeError::Unsupported(_))
        ));
    }

    #[test]
    fn certificate_round_trips() {
        let o = BridgeOutcome {
            siro: IrVersion::V13_0,
            wir: WirVersion::W2_0,
            stats: BridgeStats {
                modules_checked: 103,
                arith_cases: 9,
            },
        };
        let text = render_certificate(&o);
        assert_eq!(
            parse_certificate(&text),
            Some((IrVersion::V13_0, WirVersion::W2_0))
        );
        assert_eq!(bridge_store_name(o.siro, o.wir), "b13.0-w2.0.sirb");
    }
}
