//! The IR type graph of Def. 4.1.
//!
//! Nodes are API components and types; a *return edge* `a -> ω` says
//! component `a` produces type `ω`, and a *parameter edge* `ω -x-> a` says
//! `a` consumes `ω` at parameter position `x`. Candidate generation walks
//! this graph backwards from the target instruction type (Def. 4.2's
//! reachability rule); the consumption rule is enforced by construction
//! when programs are assembled.

use std::collections::{HashMap, HashSet, VecDeque};

use siro_api::{ApiId, ApiRegistry, ApiType};

/// A node of the type graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// An API component.
    Api(ApiId),
    /// A type.
    Type(ApiType),
}

/// The IR type graph over one [`ApiRegistry`].
#[derive(Debug)]
pub struct TypeGraph<'r> {
    registry: &'r ApiRegistry,
    /// For each type, the components that *return* a value usable as it
    /// (including the `Inst -> Value` subsumption).
    producers: HashMap<ApiType, Vec<ApiId>>,
    /// Every type mentioned by any signature.
    types: HashSet<ApiType>,
}

impl<'r> TypeGraph<'r> {
    /// Builds the graph for a registry.
    pub fn new(registry: &'r ApiRegistry) -> Self {
        let mut types = HashSet::new();
        for (_, f) in registry.iter() {
            types.insert(f.ret);
            types.extend(f.params.iter().copied());
        }
        let mut producers: HashMap<ApiType, Vec<ApiId>> = HashMap::new();
        for &ty in &types {
            let mut v: Vec<ApiId> = registry
                .iter()
                .filter(|(_, f)| ty.accepts(f.ret))
                .map(|(id, _)| id)
                .collect();
            v.sort();
            producers.insert(ty, v);
        }
        siro_trace::counter("synth.typegraph_types", types.len() as u64);
        TypeGraph {
            registry,
            producers,
            types,
        }
    }

    /// The registry this graph was built over.
    pub fn registry(&self) -> &ApiRegistry {
        self.registry
    }

    /// Components whose return value can be consumed where `ty` is expected.
    pub fn producers_of(&self, ty: ApiType) -> &[ApiId] {
        self.producers.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of type nodes.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of API nodes.
    pub fn api_count(&self) -> usize {
        self.registry.len()
    }

    /// Total edge count (return edges + parameter edges).
    pub fn edge_count(&self) -> usize {
        let ret_edges = self.registry.len();
        let param_edges: usize = self.registry.iter().map(|(_, f)| f.params.len()).sum();
        ret_edges + param_edges
    }

    /// All components backwards-reachable from `target`: the sub-library
    /// that could possibly participate in a feasible subgraph for it
    /// (Def. 4.2's reachability rule as a pruning step).
    pub fn backward_reachable(&self, target: ApiType) -> HashSet<ApiId> {
        let mut seen_types: HashSet<ApiType> = HashSet::new();
        let mut seen_apis: HashSet<ApiId> = HashSet::new();
        let mut queue: VecDeque<ApiType> = VecDeque::new();
        seen_types.insert(target);
        queue.push_back(target);
        while let Some(ty) = queue.pop_front() {
            for &api in self.producers_of(ty) {
                if seen_apis.insert(api) {
                    for &p in &self.registry.get(api).params {
                        if seen_types.insert(p) {
                            queue.push_back(p);
                        }
                    }
                }
            }
        }
        seen_apis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::Side;
    use siro_ir::{IrVersion, Opcode};

    fn graph_for(src: IrVersion, tgt: IrVersion) -> (ApiRegistry, usize) {
        let reg = ApiRegistry::for_pair(src, tgt);
        let n = reg.len();
        (reg, n)
    }

    #[test]
    fn graph_covers_registry() {
        let (reg, n) = graph_for(IrVersion::V13_0, IrVersion::V3_6);
        let g = TypeGraph::new(&reg);
        assert_eq!(g.api_count(), n);
        assert!(g.type_count() > 20);
        assert!(g.edge_count() > g.api_count());
    }

    #[test]
    fn builders_produce_their_instruction_type() {
        let (reg, _) = graph_for(IrVersion::V13_0, IrVersion::V3_6);
        let g = TypeGraph::new(&reg);
        let target = ApiType::Inst(Opcode::Br, Side::Target);
        let prods = g.producers_of(target);
        assert!(!prods.is_empty());
        for &p in prods {
            assert!(reg.get(p).name.starts_with("create_"));
        }
    }

    #[test]
    fn backward_reachability_includes_the_whole_chain() {
        let (reg, _) = graph_for(IrVersion::V13_0, IrVersion::V3_6);
        let g = TypeGraph::new(&reg);
        let reach = g.backward_reachable(ApiType::Inst(Opcode::Br, Side::Target));
        let names: Vec<&str> = reach.iter().map(|&id| reg.get(id).name.as_str()).collect();
        for needed in [
            "create_cond_br",
            "create_br",
            "translate_block",
            "translate_value",
            "get_successor",
            "const_0",
        ] {
            assert!(names.contains(&needed), "missing {needed}");
        }
    }

    #[test]
    fn unreachable_components_are_excluded() {
        let (reg, _) = graph_for(IrVersion::V13_0, IrVersion::V3_6);
        let g = TypeGraph::new(&reg);
        // Nothing can flow from a `create_store` into a `ret` translator's
        // target type... but store produces Inst(Store, T) which subsumes to
        // Value(T), so it *is* reachable. A truly unreachable component for
        // the Ret target: none with Value subsumption. Check instead that
        // the Fence target graph excludes e.g. `get_cases` (CaseList never
        // feeds an ordering).
        let reach = g.backward_reachable(ApiType::Inst(Opcode::Fence, Side::Target));
        let names: Vec<&str> = reach.iter().map(|&id| reg.get(id).name.as_str()).collect();
        assert!(names.contains(&"get_ordering"));
        assert!(!names.contains(&"translate_cases"));
    }
}
