//! The persistent on-disk translator store.
//!
//! Synthesized translators are pure data — per-kind arms of
//! predicate-guarded [`ApiProgram`]s — so a finished
//! [`SynthesisOutcome`] can outlive the process that synthesized it. This
//! module serializes outcomes into a versioned, checksummed binary format
//! (one file per cache key) so a `siro-serve` restart can warm-start
//! instead of paying full cold synthesis for every version pair.
//!
//! # Entry format (`*.sirt`, format 1)
//!
//! ```text
//! magic            b"SIST"
//! format           u16 (currently 1)
//! key              versions, corpus fingerprint, opt flags, limits, budget
//! registry fp      u64   FNV over the pair's ApiRegistry signature
//! translator       kinds -> arms -> covers -> programs (APIs by name+ordinal)
//! rendered         the translator's rendered source
//! report           the full SynthesisReport (timings as nanoseconds)
//! checksum         u64   FNV-1a over every preceding byte
//! ```
//!
//! Everything a program references is stored *symbolically* (opcode names,
//! API component names plus an ordinal among same-named components) and
//! resolved against a freshly built [`ApiRegistry`] at load time, so an
//! entry can never smuggle in stale component indices: if the registry
//! drifted, the registry fingerprint — and failing that, per-program
//! well-typedness — rejects the entry.
//!
//! # Trust model
//!
//! Entries are never blindly trusted. Structural decoding is fully checked
//! (length-validated reads, opcode/API lookups, well-typedness); on top of
//! that [`ValidationMode`] selects how much re-verification a load pays:
//! checksum only (the default), full oracle re-validation, or neither.
//! Any failure — truncation, bit flips, format or fingerprint skew — makes
//! the load report a *corrupt* entry and the caller falls back to cold
//! synthesis; a wrong translation is never served from a damaged file.
//!
//! Entries for fault-injected configs ([`SynthesisConfig::fault`]) are
//! deliberately neither saved nor loaded: deliberately broken translators
//! must stay confined to the process that asked for them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime};

use siro_api::{ApiCall, ApiProgram, ApiRegistry, PredConj, PredValue, Reg};
use siro_core::{KindTranslator, Skeleton, SynthesizedTranslator, TranslatorArm};
use siro_ir::interp::Machine;
use siro_ir::{IrVersion, Opcode};

use crate::candgen::GenLimits;
use crate::compile::{note_sirx_corrupt, note_sirx_loaded, note_sirx_write};
use crate::compile::{CompiledKind, CompiledTranslator};
use crate::driver::{StageTimings, SynthesisConfig, SynthesisOutcome, SynthesisReport, TestStats};
use crate::persist::{fnv1a64, ByteReader, ByteWriter, DecodeError};
use crate::pertest::OracleTest;

/// Magic bytes opening every store entry.
pub const STORE_MAGIC: [u8; 4] = *b"SIST";
/// Current entry format version.
pub const STORE_FORMAT: u16 = 1;
/// File extension of store entries.
pub const ENTRY_EXT: &str = "sirt";

/// Magic bytes opening every compiled entry (see
/// [`TranslatorStore::save_compiled`]).
pub const COMPILED_MAGIC: [u8; 4] = *b"SIRX";
/// Current compiled-entry format version.
pub const COMPILED_FORMAT: u16 = 1;
/// File extension of compiled entries — each lives as a sibling of its
/// `.sirt` entry (same stem, different extension).
pub const COMPILED_EXT: &str = "sirx";

/// File extension of composed-chain manifests (see
/// [`TranslatorStore::save_chain`]).
pub const CHAIN_EXT: &str = "sirc";
/// Orphaned temp files older than this are swept by [`TranslatorStore::gc`]
/// (a crashed writer leaves them behind; a live writer renames within
/// milliseconds).
const STALE_TMP_AGE: Duration = Duration::from_secs(600);

/// How much re-verification a load pays before an entry is trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Structural decoding only (still fully checked: lengths, opcode/API
    /// resolution, well-typedness) — skips the checksum.
    Off,
    /// Structural decoding plus the entry checksum (the default).
    #[default]
    Checksum,
    /// Checksum plus oracle re-validation: the decoded translator must
    /// translate every oracle test and reproduce its expected result.
    Full,
}

impl FromStr for ValidationMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ValidationMode::Off),
            "checksum" => Ok(ValidationMode::Checksum),
            "full" => Ok(ValidationMode::Full),
            other => Err(format!(
                "unknown validation mode `{other}` (expected off|checksum|full)"
            )),
        }
    }
}

impl std::fmt::Display for ValidationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ValidationMode::Off => "off",
            ValidationMode::Checksum => "checksum",
            ValidationMode::Full => "full",
        })
    }
}

/// The persistent identity of a cached synthesis: the
/// [`crate::cache::TranslatorCache`] key minus the two knobs that must not
/// be persisted — `threads` (which cannot change the outcome) and `fault`
/// (fault-injected translators are never stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreKey {
    /// Source IR version.
    pub source: IrVersion,
    /// Target IR version.
    pub target: IrVersion,
    /// Fingerprint of the oracle corpus the translator was synthesized
    /// from (see [`crate::cache::corpus_fingerprint`]).
    pub corpus_fingerprint: u64,
    /// Optimization I (equivalence merging).
    pub opt_equivalence: bool,
    /// Optimization II (memoization through `M*`).
    pub opt_memoization: bool,
    /// Optimization III (test ordering).
    pub opt_ordering: bool,
    /// Candidate-generation limits.
    pub limits: GenLimits,
    /// Per-test translator budget.
    pub max_assignments_per_test: u128,
}

impl StoreKey {
    /// The store key of a synthesis config over a corpus with the given
    /// fingerprint. The config's `threads` and `fault` are intentionally
    /// dropped (see the type-level docs).
    pub fn new(config: &SynthesisConfig, corpus_fingerprint: u64) -> Self {
        StoreKey {
            source: config.source,
            target: config.target,
            corpus_fingerprint,
            opt_equivalence: config.opt_equivalence,
            opt_memoization: config.opt_memoization,
            opt_ordering: config.opt_ordering,
            limits: config.limits,
            max_assignments_per_test: config.max_assignments_per_test,
        }
    }

    /// Reconstructs a synthesis config equivalent to the one that produced
    /// this key (`threads` re-resolved for this process, no fault).
    pub fn config(&self) -> SynthesisConfig {
        let mut config = SynthesisConfig::new(self.source, self.target);
        config.opt_equivalence = self.opt_equivalence;
        config.opt_memoization = self.opt_memoization;
        config.opt_ordering = self.opt_ordering;
        config.limits = self.limits;
        config.max_assignments_per_test = self.max_assignments_per_test;
        config
    }

    /// Encodes the config knobs (everything except pair + fingerprint).
    fn encode_knobs(&self, w: &mut ByteWriter) {
        w.put_bool(self.opt_equivalence);
        w.put_bool(self.opt_memoization);
        w.put_bool(self.opt_ordering);
        w.put_u64(self.limits.max_exprs_per_type as u64);
        w.put_u64(self.limits.max_candidates_per_kind as u64);
        w.put_u32(self.limits.max_depth);
        w.put_u128(self.max_assignments_per_test);
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(self.source.major());
        w.put_u16(self.source.minor());
        w.put_u16(self.target.major());
        w.put_u16(self.target.minor());
        w.put_u64(self.corpus_fingerprint);
        self.encode_knobs(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let source = IrVersion::new(r.u16()?, r.u16()?);
        let target = IrVersion::new(r.u16()?, r.u16()?);
        let corpus_fingerprint = r.u64()?;
        let opt_equivalence = r.bool()?;
        let opt_memoization = r.bool()?;
        let opt_ordering = r.bool()?;
        let limits = GenLimits {
            max_exprs_per_type: r.u64()? as usize,
            max_candidates_per_kind: r.u64()? as usize,
            max_depth: r.u32()?,
        };
        let max_assignments_per_test = r.u128()?;
        Ok(StoreKey {
            source,
            target,
            corpus_fingerprint,
            opt_equivalence,
            opt_memoization,
            opt_ordering,
            limits,
            max_assignments_per_test,
        })
    }

    /// Stable hash of the config knobs, used in the entry file name. The
    /// corpus fingerprint is deliberately *excluded*: a corpus change must
    /// land on the *same* file so the stale entry is detected (and counted
    /// as corrupt) rather than silently shadowed, and the post-synthesis
    /// write-back then repairs it in place.
    fn knob_hash(&self) -> u64 {
        let mut w = ByteWriter::new();
        self.encode_knobs(&mut w);
        fnv1a64(w.bytes())
    }

    /// The entry file name for this key, e.g. `s13.0-t3.6-9e3779b97f4a7c15.sirt`.
    pub fn file_name(&self) -> String {
        format!(
            "s{}.{}-t{}.{}-{:016x}.{ENTRY_EXT}",
            self.source.major(),
            self.source.minor(),
            self.target.major(),
            self.target.minor(),
            self.knob_hash(),
        )
    }
}

/// Stable fingerprint of an [`ApiRegistry`]'s signature: component order,
/// names, arities, and predicate flags. Programs are persisted relative to
/// this shape; a mismatch means the registry drifted since the entry was
/// written and component references can no longer be trusted.
fn registry_fingerprint(reg: &ApiRegistry) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u32(reg.len() as u32);
    for (_, f) in reg.iter() {
        w.put_str(&f.name);
        w.put_u32(f.params.len() as u32);
        w.put_bool(f.is_predicate);
    }
    fnv1a64(w.bytes())
}

/// Resolves an API id into `(name, ordinal among same-named components)`.
/// Names alone are not unique (indexed getters repeat per kind), but
/// `(name, ordinal)` is — and unlike the raw index it survives unrelated
/// registry growth as long as the fingerprint still matches.
fn api_ref(reg: &ApiRegistry, id: siro_api::ApiId) -> (String, u32) {
    let name = reg.get(id).name.clone();
    let ordinal = reg
        .iter()
        .take_while(|(other, _)| *other != id)
        .filter(|(_, f)| f.name == name)
        .count() as u32;
    (name, ordinal)
}

/// Inverse of [`api_ref`].
fn api_lookup(reg: &ApiRegistry, name: &str, ordinal: u32) -> Result<siro_api::ApiId, DecodeError> {
    reg.iter()
        .filter(|(_, f)| f.name == name)
        .nth(ordinal as usize)
        .map(|(id, _)| id)
        .ok_or_else(|| DecodeError(format!("unknown API component `{name}`#{ordinal}")))
}

fn encode_program(w: &mut ByteWriter, reg: &ApiRegistry, program: &ApiProgram) {
    w.put_str(program.kind.name());
    w.put_u32(program.steps.len() as u32);
    for step in &program.steps {
        let (name, ordinal) = api_ref(reg, step.api);
        w.put_str(&name);
        w.put_u32(ordinal);
        w.put_u32(step.args.len() as u32);
        for arg in &step.args {
            match arg {
                Reg::Input => w.put_u8(0),
                Reg::Step(i) => {
                    w.put_u8(1);
                    w.put_u32(*i as u32);
                }
            }
        }
    }
}

fn decode_opcode(r: &mut ByteReader<'_>) -> Result<Opcode, DecodeError> {
    let name = r.string()?;
    Opcode::from_str(&name).map_err(|_| DecodeError(format!("unknown opcode `{name}`")))
}

fn decode_program(r: &mut ByteReader<'_>, reg: &ApiRegistry) -> Result<ApiProgram, DecodeError> {
    let kind = decode_opcode(r)?;
    let steps = r.u32()? as usize;
    let mut program = ApiProgram {
        kind,
        steps: Vec::with_capacity(steps.min(1024)),
    };
    for _ in 0..steps {
        let name = r.string()?;
        let ordinal = r.u32()?;
        let api = api_lookup(reg, &name, ordinal)?;
        let nargs = r.u32()? as usize;
        let mut args = Vec::with_capacity(nargs.min(1024));
        for _ in 0..nargs {
            args.push(match r.u8()? {
                0 => Reg::Input,
                1 => Reg::Step(r.u32()? as usize),
                other => return Err(DecodeError(format!("invalid register tag {other}"))),
            });
        }
        program.steps.push(ApiCall { api, args });
    }
    if !program.well_typed(reg) {
        return Err(DecodeError(format!(
            "program for `{}` is not well-typed against the registry",
            program.kind.name()
        )));
    }
    Ok(program)
}

fn encode_conj(w: &mut ByteWriter, conj: &PredConj) {
    w.put_u32(conj.len() as u32);
    for (name, value) in conj {
        w.put_str(name);
        match value {
            PredValue::Bool(false) => w.put_u8(0),
            PredValue::Bool(true) => w.put_u8(1),
            PredValue::Enum(v) => {
                w.put_u8(2);
                w.put_u8(*v);
            }
        }
    }
}

fn decode_conj(r: &mut ByteReader<'_>) -> Result<PredConj, DecodeError> {
    let len = r.u32()? as usize;
    let mut conj = PredConj::new();
    for _ in 0..len {
        let name = r.string()?;
        let value = match r.u8()? {
            0 => PredValue::Bool(false),
            1 => PredValue::Bool(true),
            2 => PredValue::Enum(r.u8()?),
            other => return Err(DecodeError(format!("invalid predicate tag {other}"))),
        };
        conj.insert(name, value);
    }
    Ok(conj)
}

fn encode_report(w: &mut ByteWriter, report: &SynthesisReport) {
    w.put_u64(report.tests_used as u64);
    for counts in [&report.candidate_counts, &report.refined_counts] {
        w.put_u32(counts.len() as u32);
        for (kind, n) in counts {
            w.put_str(kind.name());
            w.put_u64(*n as u64);
        }
    }
    w.put_u64(report.assignments_validated);
    let t = &report.timings;
    for d in [
        t.generation,
        t.profiling,
        t.enumeration,
        t.validation,
        t.validation_execute_cpu,
        t.validation_translate_cpu,
        t.refinement,
        t.completion,
    ] {
        w.put_u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    w.put_u64(report.candidate_loc as u64);
    w.put_u64(report.translator_loc as u64);
    w.put_u32(report.per_test.len() as u32);
    for test in &report.per_test {
        w.put_str(&test.name);
        w.put_u64(test.assignments);
        w.put_u64(test.passed);
        w.put_u64(test.pruned);
    }
}

fn decode_report(
    r: &mut ByteReader<'_>,
    pair: (IrVersion, IrVersion),
) -> Result<SynthesisReport, DecodeError> {
    let tests_used = r.u64()? as usize;
    let mut count_maps = Vec::with_capacity(2);
    for _ in 0..2 {
        let len = r.u32()? as usize;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..len {
            let kind = decode_opcode(r)?;
            counts.insert(kind, r.u64()? as usize);
        }
        count_maps.push(counts);
    }
    let refined_counts = count_maps.pop().expect("two count maps");
    let candidate_counts = count_maps.pop().expect("two count maps");
    let assignments_validated = r.u64()?;
    let mut nanos = [0u64; 8];
    for n in &mut nanos {
        *n = r.u64()?;
    }
    let timings = StageTimings {
        generation: Duration::from_nanos(nanos[0]),
        profiling: Duration::from_nanos(nanos[1]),
        enumeration: Duration::from_nanos(nanos[2]),
        validation: Duration::from_nanos(nanos[3]),
        validation_execute_cpu: Duration::from_nanos(nanos[4]),
        validation_translate_cpu: Duration::from_nanos(nanos[5]),
        refinement: Duration::from_nanos(nanos[6]),
        completion: Duration::from_nanos(nanos[7]),
    };
    let candidate_loc = r.u64()? as usize;
    let translator_loc = r.u64()? as usize;
    let per_test_len = r.u32()? as usize;
    let mut per_test = Vec::with_capacity(per_test_len.min(4096));
    for _ in 0..per_test_len {
        per_test.push(TestStats {
            name: r.string()?,
            assignments: r.u64()?,
            passed: r.u64()?,
            pruned: r.u64()?,
        });
    }
    Ok(SynthesisReport {
        pair,
        tests_used,
        candidate_counts,
        refined_counts,
        assignments_validated,
        timings,
        candidate_loc,
        translator_loc,
        per_test,
    })
}

/// Serializes one outcome into entry bytes (including the trailing
/// checksum).
pub fn encode_entry(key: &StoreKey, outcome: &SynthesisOutcome) -> Vec<u8> {
    let reg = &outcome.translator.registry;
    let mut w = ByteWriter::new();
    w.put_bytes(&STORE_MAGIC);
    w.put_u16(STORE_FORMAT);
    key.encode(&mut w);
    w.put_u64(registry_fingerprint(reg));
    let mut kinds: Vec<(&Opcode, &KindTranslator)> = outcome.translator.kinds.iter().collect();
    kinds.sort_by_key(|(k, _)| **k);
    w.put_u32(kinds.len() as u32);
    for (kind, kt) in kinds {
        w.put_str(kind.name());
        w.put_u32(kt.arms.len() as u32);
        for arm in &kt.arms {
            w.put_u32(arm.covers.len() as u32);
            for conj in &arm.covers {
                encode_conj(&mut w, conj);
            }
            encode_program(&mut w, reg, &arm.program);
        }
    }
    w.put_str(&outcome.rendered);
    encode_report(&mut w, &outcome.report);
    let checksum = fnv1a64(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Why a load rejected an entry (all roads lead to cold synthesis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// Entry bytes are damaged, truncated, of a different format version,
    /// mismatched against the expected key/corpus, or oracle-invalid.
    Corrupt(String),
}

impl std::fmt::Display for EntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryError::Corrupt(why) => write!(f, "corrupt entry: {why}"),
        }
    }
}

impl std::error::Error for EntryError {}

fn corrupt(why: impl Into<String>) -> EntryError {
    EntryError::Corrupt(why.into())
}

/// Decodes and validates one entry against the expected key and (for
/// [`ValidationMode::Full`]) the oracle corpus.
///
/// # Errors
///
/// [`EntryError::Corrupt`] describing the first validation failure.
pub fn decode_entry(
    bytes: &[u8],
    expected: &StoreKey,
    mode: ValidationMode,
    tests: &[OracleTest],
) -> Result<SynthesisOutcome, EntryError> {
    if bytes.len() < 8 {
        return Err(corrupt(format!("only {} bytes", bytes.len())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if mode != ValidationMode::Off {
        let stored = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
    }
    let mut r = ByteReader::new(body);
    let map_decode = |e: DecodeError| corrupt(e.0);
    let magic = r.take(4).map_err(map_decode)?;
    if magic != STORE_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let format = r.u16().map_err(map_decode)?;
    if format != STORE_FORMAT {
        return Err(corrupt(format!(
            "format version {format} (this build reads {STORE_FORMAT})"
        )));
    }
    let key = StoreKey::decode(&mut r).map_err(map_decode)?;
    if key != *expected {
        let same_but_corpus = StoreKey {
            corpus_fingerprint: expected.corpus_fingerprint,
            ..key
        } == *expected;
        return Err(if same_but_corpus {
            corrupt(format!(
                "corpus fingerprint mismatch (stored {:#018x}, expected {:#018x})",
                key.corpus_fingerprint, expected.corpus_fingerprint
            ))
        } else {
            corrupt("entry key does not match the requested key".to_string())
        });
    }
    let registry = Arc::new(ApiRegistry::for_pair(key.source, key.target));
    let stored_reg_fp = r.u64().map_err(map_decode)?;
    let actual_reg_fp = registry_fingerprint(&registry);
    if stored_reg_fp != actual_reg_fp {
        return Err(corrupt(format!(
            "API registry drifted since the entry was written \
             (stored {stored_reg_fp:#018x}, current {actual_reg_fp:#018x})"
        )));
    }
    let mut translator = SynthesizedTranslator::new(Arc::clone(&registry));
    let kind_count = r.u32().map_err(map_decode)? as usize;
    for _ in 0..kind_count {
        let kind = decode_opcode(&mut r).map_err(map_decode)?;
        let arm_count = r.u32().map_err(map_decode)? as usize;
        let mut arms = Vec::with_capacity(arm_count.min(1024));
        for _ in 0..arm_count {
            let cover_count = r.u32().map_err(map_decode)? as usize;
            let mut covers = Vec::with_capacity(cover_count.min(1024));
            for _ in 0..cover_count {
                covers.push(decode_conj(&mut r).map_err(map_decode)?);
            }
            let program = decode_program(&mut r, &registry).map_err(map_decode)?;
            arms.push(TranslatorArm { covers, program });
        }
        translator.insert(kind, KindTranslator { arms });
    }
    let rendered = r.string().map_err(map_decode)?;
    let report = decode_report(&mut r, (key.source, key.target)).map_err(map_decode)?;
    r.finish().map_err(map_decode)?;

    if mode == ValidationMode::Full {
        let skeleton = Skeleton::new(key.target);
        for test in tests {
            let translated = skeleton
                .translate_module(&test.module, &translator)
                .map_err(|e| corrupt(format!("oracle re-validation `{}`: {e}", test.name)))?;
            let got = Machine::new(&translated)
                .run_main()
                .map_err(|e| corrupt(format!("oracle re-validation `{}`: {e}", test.name)))?
                .return_int();
            if got != Some(test.oracle) {
                return Err(corrupt(format!(
                    "oracle re-validation `{}`: expected {}, got {got:?}",
                    test.name, test.oracle
                )));
            }
        }
    }
    Ok(SynthesisOutcome {
        translator,
        report,
        rendered,
        compiled_slot: std::sync::OnceLock::new(),
    })
}

// ---- Compiled (`.sirx`) entries --------------------------------------------
//
// A compiled entry persists the *symbolic* form of a lowered
// [`CompiledTranslator`]: per kind, the arm guards as predicate
// conjunctions and the arm programs as `(api, args)` call lists — exactly
// the data the stream backend lowers from. Micro-ops, fused lists, and
// mirror templates are a process-local encoding and are never persisted;
// a load re-binds them by running the same lowering
// ([`CompiledKind::lower`]), which re-validates well-typedness and guard
// alignment on top of the checksum / key / registry-fingerprint checks.
// Any failure degrades to a fresh lowering (or the interpreter): a `.sirx`
// can make serving faster to warm, never wrong.

/// Serializes one compiled translator into `.sirx` bytes (including the
/// trailing checksum).
pub fn encode_compiled(key: &StoreKey, compiled: &CompiledTranslator) -> Vec<u8> {
    let reg = compiled.registry();
    let mut w = ByteWriter::new();
    w.put_bytes(&COMPILED_MAGIC);
    w.put_u16(COMPILED_FORMAT);
    key.encode(&mut w);
    w.put_u64(registry_fingerprint(reg));
    let kinds: Vec<_> = compiled.kind_entries().collect();
    w.put_u32(kinds.len() as u32);
    for (kind, ck) in kinds {
        w.put_str(kind.name());
        w.put_u32(ck.arms.len() as u32);
        for arm in ck.arms.iter() {
            w.put_u32(arm.covers.len() as u32);
            for row in arm.covers.iter() {
                // Rows are flattened against the kind's predicate order;
                // persist them as named conjunctions so a load aligns them
                // against the *current* registry, whatever its order.
                let mut conj = PredConj::new();
                for (pred, value) in ck.preds.iter().zip(row.iter()) {
                    conj.insert(pred.name.to_string(), *value);
                }
                encode_conj(&mut w, &conj);
            }
            let program = ApiProgram {
                kind,
                steps: arm.calls.to_vec(),
            };
            encode_program(&mut w, reg, &program);
        }
    }
    let checksum = fnv1a64(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Decodes and validates `.sirx` bytes against the expected key,
/// re-binding every kind through the stream lowering.
///
/// # Errors
///
/// [`EntryError::Corrupt`] describing the first validation failure.
pub fn decode_compiled(
    bytes: &[u8],
    expected: &StoreKey,
) -> Result<CompiledTranslator, EntryError> {
    if bytes.len() < 8 {
        return Err(corrupt(format!("only {} bytes", bytes.len())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    let mut r = ByteReader::new(body);
    let map_decode = |e: DecodeError| corrupt(e.0);
    let magic = r.take(4).map_err(map_decode)?;
    if magic != COMPILED_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let format = r.u16().map_err(map_decode)?;
    if format != COMPILED_FORMAT {
        return Err(corrupt(format!(
            "format version {format} (this build reads {COMPILED_FORMAT})"
        )));
    }
    let key = StoreKey::decode(&mut r).map_err(map_decode)?;
    if key != *expected {
        return Err(corrupt(
            "compiled entry key does not match the requested key",
        ));
    }
    let registry = Arc::new(ApiRegistry::for_pair(key.source, key.target));
    let stored_reg_fp = r.u64().map_err(map_decode)?;
    let actual_reg_fp = registry_fingerprint(&registry);
    if stored_reg_fp != actual_reg_fp {
        return Err(corrupt(format!(
            "API registry drifted since the compiled entry was written \
             (stored {stored_reg_fp:#018x}, current {actual_reg_fp:#018x})"
        )));
    }
    let kind_count = r.u32().map_err(map_decode)? as usize;
    let mut kinds = Vec::with_capacity(kind_count.min(1024));
    for _ in 0..kind_count {
        let kind = decode_opcode(&mut r).map_err(map_decode)?;
        let arm_count = r.u32().map_err(map_decode)? as usize;
        let mut arms = Vec::with_capacity(arm_count.min(1024));
        for _ in 0..arm_count {
            let cover_count = r.u32().map_err(map_decode)? as usize;
            let mut covers = Vec::with_capacity(cover_count.min(1024));
            for _ in 0..cover_count {
                covers.push(decode_conj(&mut r).map_err(map_decode)?);
            }
            let program = decode_program(&mut r, &registry).map_err(map_decode)?;
            if program.kind != kind {
                return Err(corrupt(format!(
                    "arm program for `{}` is tagged `{}`",
                    kind.name(),
                    program.kind.name()
                )));
            }
            arms.push(TranslatorArm { covers, program });
        }
        // Re-bind through the canonical lowering: re-validates
        // well-typedness and guard alignment, and recomputes every
        // process-local encoding (micro-ops, fused lists, templates).
        let compiled_kind = CompiledKind::lower(&registry, kind, &KindTranslator { arms })
            .map_err(|e| corrupt(format!("re-lowering `{}`: {e}", kind.name())))?;
        kinds.push((kind, compiled_kind));
    }
    r.finish().map_err(map_decode)?;
    Ok(CompiledTranslator::from_parts(registry, kinds))
}

/// Builds the full oracle corpus for a pair, in the shape synthesis (and
/// hence store keys) consume. Shared by warm-start, `siro store`, and the
/// tests so everyone fingerprints the same corpus.
pub fn oracle_corpus(source: IrVersion, target: IrVersion) -> Vec<OracleTest> {
    siro_testcases::corpus_for_pair(source, target)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(source),
            oracle: c.oracle,
        })
        .collect()
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the entries (created on open).
    pub dir: PathBuf,
    /// Validation applied by [`TranslatorStore::load`].
    pub validation: ValidationMode,
    /// When set, [`TranslatorStore::save`] garbage-collects
    /// least-recently-used entries down to this many bytes.
    pub max_bytes: Option<u64>,
}

impl StoreConfig {
    /// Checksum-validated, uncapped store at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            validation: ValidationMode::default(),
            max_bytes: None,
        }
    }
}

/// One entry as listed by [`TranslatorStore::entries`].
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Entry file path.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-used time (loads touch it, making GC LRU-ish).
    pub modified: SystemTime,
    /// The entry's key, when the header is readable; `None` marks an
    /// unreadable (corrupt-header) entry.
    pub key: Option<StoreKey>,
}

/// Result of [`TranslatorStore::gc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries deleted (oldest first).
    pub removed: usize,
    /// Orphaned temp files swept.
    pub stale_tmp_removed: usize,
    /// Total entry bytes before collection.
    pub bytes_before: u64,
    /// Total entry bytes after collection.
    pub bytes_after: u64,
}

/// Result of verifying one entry ([`TranslatorStore::verify`]).
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Entry file path.
    pub path: PathBuf,
    /// The version pair, when the header was readable.
    pub pair: Option<(IrVersion, IrVersion)>,
    /// `Ok` when the entry fully re-validated against the current oracle
    /// corpus; otherwise the corruption reason.
    pub result: Result<(), String>,
}

/// A directory of persisted synthesis outcomes.
///
/// Writes are atomic (unique temp file + `rename` in the same directory),
/// so a concurrent reader — or a reader after a crash — sees either the
/// old entry or the new one, never a torn hybrid.
#[derive(Debug)]
pub struct TranslatorStore {
    config: StoreConfig,
    tmp_seq: AtomicU64,
}

impl TranslatorStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        Ok(TranslatorStore {
            config,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The configured validation mode.
    pub fn validation(&self) -> ValidationMode {
        self.config.validation
    }

    /// The on-disk path an entry for `key` lives at.
    pub fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.config.dir.join(key.file_name())
    }

    /// Loads and validates the entry for `key`, counting a hit, a miss
    /// (no entry), or a corrupt entry. Corrupt entries are left in place:
    /// the caller falls back to cold synthesis, whose write-back repairs
    /// the file.
    pub fn load(&self, key: &StoreKey, tests: &[OracleTest]) -> Option<Arc<SynthesisOutcome>> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("store.misses", 1);
                return None;
            }
        };
        match decode_entry(&bytes, key, self.config.validation, tests) {
            Ok(outcome) => {
                // LRU touch; best-effort (a read-only store still serves).
                if let Ok(f) = fs::File::options().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                HITS.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("store.hits", 1);
                Some(Arc::new(outcome))
            }
            Err(EntryError::Corrupt(_)) => {
                CORRUPT.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("store.corrupt", 1);
                None
            }
        }
    }

    /// Atomically persists the entry for `key`: encode, write to a unique
    /// temp file, fsync, rename over the final name. Runs the size-cap GC
    /// afterwards when one is configured.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up).
    pub fn save(&self, key: &StoreKey, outcome: &SynthesisOutcome) -> io::Result<()> {
        let bytes = encode_entry(key, outcome);
        let final_path = self.entry_path(key);
        let tmp_path = self.config.dir.join(format!(
            ".{}.{}.{}.tmp",
            key.file_name(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp_path);
            return write;
        }
        WRITES.fetch_add(1, Ordering::Relaxed);
        siro_trace::counter("store.writes", 1);
        if let Some(cap) = self.config.max_bytes {
            let _ = self.gc(cap);
        }
        Ok(())
    }

    /// Lists every `*.sirt` entry (unreadable headers included, with
    /// `key: None`).
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn entries(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        for dirent in fs::read_dir(&self.config.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let meta = match dirent.metadata() {
                Ok(m) if m.is_file() => m,
                _ => continue,
            };
            let key = fs::read(&path).ok().and_then(|bytes| peek_key(&bytes));
            out.push(StoreEntry {
                path,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                key,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// Least-recently-used collection: sweeps stale temp files, then
    /// deletes the oldest entries until the directory holds at most
    /// `max_bytes` of entries.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (individual deletions are
    /// best-effort).
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let now = SystemTime::now();
        for dirent in fs::read_dir(&self.config.dir)? {
            let Ok(dirent) = dirent else { continue };
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("tmp") {
                continue;
            }
            let stale = dirent
                .metadata()
                .and_then(|m| m.modified())
                .map(|t| now.duration_since(t).unwrap_or_default() >= STALE_TMP_AGE)
                .unwrap_or(false);
            if stale && fs::remove_file(&path).is_ok() {
                report.stale_tmp_removed += 1;
            }
        }
        let mut entries = self.entries()?;
        entries.sort_by_key(|e| e.modified);
        report.scanned = entries.len();
        report.bytes_before = entries.iter().map(|e| e.bytes).sum();
        report.bytes_after = report.bytes_before;
        for entry in &entries {
            if report.bytes_after <= max_bytes {
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                report.removed += 1;
                report.bytes_after -= entry.bytes;
                siro_trace::counter("store.gc_removed", 1);
                // A compiled sibling without its entry is an orphan; sweep
                // it with the entry (best-effort).
                let _ = fs::remove_file(entry.path.with_extension(COMPILED_EXT));
            }
        }
        Ok(report)
    }

    /// The on-disk path of the compiled (`.sirx`) sibling of `key`'s
    /// entry: same stem as [`TranslatorStore::entry_path`], compiled
    /// extension.
    pub fn compiled_path(&self, key: &StoreKey) -> PathBuf {
        self.entry_path(key).with_extension(COMPILED_EXT)
    }

    /// Atomically persists the compiled form of an outcome next to its
    /// `.sirt` entry (unique temp file + `rename`, like
    /// [`TranslatorStore::save`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up).
    pub fn save_compiled(&self, key: &StoreKey, compiled: &CompiledTranslator) -> io::Result<()> {
        let bytes = encode_compiled(key, compiled);
        let final_path = self.compiled_path(key);
        let tmp_path = self.config.dir.join(format!(
            ".{}.{}.{}.tmp",
            key.file_name(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp_path);
            return write;
        }
        note_sirx_write();
        Ok(())
    }

    /// Loads and validates the compiled entry for `key`. A missing file is
    /// silent (compiled entries are an optional acceleration); a damaged,
    /// stale, or otherwise invalid one counts `compile.sirx_corrupt` and
    /// returns `None` — the caller re-lowers from the outcome (or serves
    /// interpreted), never trusts the file.
    pub fn load_compiled(&self, key: &StoreKey) -> Option<Arc<CompiledTranslator>> {
        let bytes = fs::read(self.compiled_path(key)).ok()?;
        match decode_compiled(&bytes, key) {
            Ok(compiled) => {
                note_sirx_loaded();
                Some(Arc::new(compiled))
            }
            Err(EntryError::Corrupt(_)) => {
                note_sirx_corrupt();
                None
            }
        }
    }

    /// The on-disk path of a composed-chain manifest, e.g.
    /// `c13.0-t3.6-9e3779b97f4a7c15.sirc`.
    pub fn chain_path(&self, persist_key: &str) -> PathBuf {
        self.config.dir.join(format!("{persist_key}.{CHAIN_EXT}"))
    }

    /// Atomically persists a composed-chain manifest under its persist
    /// key. Manifests are plaintext (`SIRC 1` header, one `hop` line per
    /// leg) with a trailing FNV-1a checksum line; the hop translators
    /// themselves live in their own `.sirt` entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up).
    pub fn save_chain(&self, persist_key: &str, manifest: &str) -> io::Result<()> {
        let mut bytes = manifest.as_bytes().to_vec();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(format!("checksum {checksum:016x}\n").as_bytes());
        let final_path = self.chain_path(persist_key);
        let tmp_path = self.config.dir.join(format!(
            ".{persist_key}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp_path);
            return write;
        }
        siro_trace::counter("store.chain_writes", 1);
        Ok(())
    }

    /// Loads a composed-chain manifest and validates its checksum line.
    /// Returns the manifest body (checksum line stripped); a missing file
    /// or checksum mismatch returns `None` — the caller simply re-composes.
    pub fn load_chain(&self, persist_key: &str) -> Option<String> {
        let text = fs::read_to_string(self.chain_path(persist_key)).ok()?;
        let body = text.strip_suffix('\n').unwrap_or(&text);
        let (body, checksum_line) = body.rsplit_once('\n')?;
        let body = format!("{body}\n");
        let expected = checksum_line.strip_prefix("checksum ")?;
        let expected = u64::from_str_radix(expected.trim(), 16).ok()?;
        (fnv1a64(body.as_bytes()) == expected).then_some(body)
    }

    /// The path of a named plaintext entry (`name` carries its own
    /// extension, e.g. `w1.0-t3.0.sirw`).
    pub fn named_path(&self, name: &str) -> PathBuf {
        self.config.dir.join(name)
    }

    /// Atomically persists a named plaintext entry with a trailing FNV-1a
    /// checksum line — the persistence channel for non-Siro translator
    /// payloads (`.sirw` WIR translators, `.sirb` bridge certificates)
    /// that share the store directory with `.sirt`/`.sirx`/`.sirc`
    /// entries.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the temp file is cleaned up).
    pub fn save_named(&self, name: &str, text: &str) -> io::Result<()> {
        let mut bytes = text.as_bytes().to_vec();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(format!("checksum {checksum:016x}\n").as_bytes());
        let final_path = self.named_path(name);
        let tmp_path = self.config.dir.join(format!(
            ".{name}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let write = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp_path);
            return write;
        }
        siro_trace::counter("store.named_writes", 1);
        Ok(())
    }

    /// Loads a named plaintext entry and validates its checksum line.
    /// Returns the body (checksum line stripped); a missing file or a
    /// checksum mismatch returns `None` — the caller re-synthesizes.
    pub fn load_named(&self, name: &str) -> Option<String> {
        let text = fs::read_to_string(self.named_path(name)).ok()?;
        let body = text.strip_suffix('\n').unwrap_or(&text);
        let (body, checksum_line) = body.rsplit_once('\n')?;
        let body = format!("{body}\n");
        let expected = checksum_line.strip_prefix("checksum ")?;
        let expected = u64::from_str_radix(expected.trim(), 16).ok()?;
        (fnv1a64(body.as_bytes()) == expected).then_some(body)
    }

    /// Lists every persisted `.sirc` chain manifest path.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn chains(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for dirent in fs::read_dir(&self.config.dir)? {
            let path = dirent?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(CHAIN_EXT) {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Fully re-validates every entry against the *current* oracle corpus
    /// of its pair (format, checksum, key, registry, well-typedness, and
    /// oracle behaviour), regardless of the configured load mode.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures; per-entry problems land in the
    /// returned outcomes.
    pub fn verify(&self) -> io::Result<Vec<VerifyOutcome>> {
        let mut out = Vec::new();
        for entry in self.entries()? {
            let Some(key) = entry.key else {
                out.push(VerifyOutcome {
                    path: entry.path,
                    pair: None,
                    result: Err("unreadable entry header".into()),
                });
                continue;
            };
            let tests = oracle_corpus(key.source, key.target);
            let expected = StoreKey {
                corpus_fingerprint: crate::cache::corpus_fingerprint(&tests),
                ..key
            };
            let result = fs::read(&entry.path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|bytes| {
                    decode_entry(&bytes, &expected, ValidationMode::Full, &tests)
                        .map(|_| ())
                        .map_err(|EntryError::Corrupt(why)| why)
                });
            out.push(VerifyOutcome {
                path: entry.path,
                pair: Some((key.source, key.target)),
                result,
            });
        }
        Ok(out)
    }
}

/// Reads just the header (magic, format, key) of entry bytes, without
/// validating the body. Used by listings and warm-start to discover which
/// pair/config an entry belongs to.
pub fn peek_key(bytes: &[u8]) -> Option<StoreKey> {
    let mut r = ByteReader::new(bytes);
    if r.take(4).ok()? != STORE_MAGIC || r.u16().ok()? != STORE_FORMAT {
        return None;
    }
    StoreKey::decode(&mut r).ok()
}

// ---- Process-global attachment + counters ---------------------------------

static ACTIVE: OnceLock<Mutex<Option<Arc<TranslatorStore>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static CORRUPT: AtomicU64 = AtomicU64::new(0);
static WRITES: AtomicU64 = AtomicU64::new(0);
static WARM_LOADED: AtomicU64 = AtomicU64::new(0);

fn active_cell() -> &'static Mutex<Option<Arc<TranslatorStore>>> {
    ACTIVE.get_or_init(|| Mutex::new(None))
}

/// Attaches (or, with `None`, detaches) the process-wide store consulted
/// by [`crate::cache::TranslatorCache::lookup_or_synthesize`]. Returns the
/// previously attached store.
pub fn set_active_store(store: Option<Arc<TranslatorStore>>) -> Option<Arc<TranslatorStore>> {
    std::mem::replace(
        &mut *active_cell().lock().expect("active store poisoned"),
        store,
    )
}

/// The currently attached store, if any.
pub fn active_store() -> Option<Arc<TranslatorStore>> {
    active_cell().lock().expect("active store poisoned").clone()
}

/// Counts one warm-start load (called by
/// [`crate::cache::TranslatorCache::warm_from_store`]).
pub(crate) fn note_warm_loaded() {
    WARM_LOADED.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("store.warm_loaded", 1);
}

/// Point-in-time store counters (process-global, across every store this
/// process attached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Whether a store is currently attached.
    pub attached: bool,
    /// Loads that returned a validated entry.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Loads that rejected a damaged/mismatched entry.
    pub corrupt: u64,
    /// Entries written back.
    pub writes: u64,
    /// Entries pre-loaded into the in-memory cache at warm start.
    pub warm_loaded: u64,
}

/// Current store counters.
pub fn store_stats() -> StoreStats {
    StoreStats {
        attached: active_store().is_some(),
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        corrupt: CORRUPT.load(Ordering::Relaxed),
        writes: WRITES.load(Ordering::Relaxed),
        warm_loaded: WARM_LOADED.load(Ordering::Relaxed),
    }
}

/// Zeroes the store counters (benchmarks measuring cold/warm phases).
pub fn reset_store_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    CORRUPT.store(0, Ordering::Relaxed);
    WRITES.store(0, Ordering::Relaxed);
    WARM_LOADED.store(0, Ordering::Relaxed);
}
