//! Per-test translators (Def. 4.4, Alg. 3) and their differential-testing
//! validation (Fig. 6).
//!
//! For one test case, every instruction location gets a box that can be
//! filled with a candidate atomic translator; enumerating the boxes yields
//! per-test translators, each validated by translating the whole test case,
//! "compiling" it (verifier + backend feasibility), executing it, and
//! comparing the result against the test's oracle.
//!
//! Optimization I lives here in both of its forms: locations with the same
//! `(kind, σ&)` share one box, and candidates whose probe against the
//! actual instructions produces identical IR are merged into equivalence
//! classes enumerated through a single representative.

use std::cell::Cell;

use siro_api::{ApiProgram, ApiRegistry, PredConj, TranslationCtx};
use siro_core::{InstTranslator, Skeleton, TranslateResult};
use siro_ir::{interp::Machine, verify, IrVersion, Module, Opcode};

/// A test case in the form the synthesizer consumes: a module plus its
/// execution oracle.
#[derive(Debug, Clone)]
pub struct OracleTest {
    /// Case name (diagnostics only).
    pub name: String,
    /// The source-version program.
    pub module: Module,
    /// The constant `main` must return.
    pub oracle: i64,
}

/// One enumeration box: a set of locations sharing `(kind, σ&)` plus the
/// candidate domain for those locations.
#[derive(Debug, Clone)]
pub struct Slot {
    /// The instruction kind.
    pub kind: Opcode,
    /// The shared predicate conjunction.
    pub conj: PredConj,
    /// The locations this box fills.
    pub locs: Vec<usize>,
    /// Equivalence classes of candidate indices (into Λ*_kind); each class
    /// is enumerated through its first element.
    pub groups: Vec<Vec<usize>>,
}

impl Slot {
    /// Representatives, one per equivalence class.
    pub fn representatives(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// Expands a representative back to its full equivalence class.
    pub fn expand(&self, rep: usize) -> &[usize] {
        self.groups
            .iter()
            .find(|g| g[0] == rep)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The enumeration structure for one test case.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// The boxes.
    pub slots: Vec<Slot>,
    /// location -> slot index.
    pub slot_of_loc: Vec<usize>,
}

impl Enumeration {
    /// Total number of per-test translators (product of representative
    /// counts), without materialising them.
    pub fn assignment_count(&self) -> u128 {
        self.slots.iter().map(|s| s.groups.len() as u128).product()
    }

    /// Decodes assignment number `n` (mixed radix) into one representative
    /// candidate index per slot.
    pub fn decode(&self, mut n: u128) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let base = s.groups.len() as u128;
            let d = (n % base) as usize;
            n /= base;
            out.push(s.groups[d][0]);
        }
        out
    }
}

/// Probes one candidate against one concrete instruction: sets up a fresh
/// translation context (blocks pre-mapped, functions pre-registered), runs
/// the candidate, and returns a structural signature of what it built.
///
/// # Errors
///
/// Returns the candidate's translation failure, which removes it from the
/// location's domain (the "reject at an early stage" effect of §6.4).
pub fn probe_candidate(
    registry: &ApiRegistry,
    module: &Module,
    row: &crate::profile::ProfiledInst,
    program: &ApiProgram,
) -> Result<String, siro_api::ApiError> {
    let mut ctx = TranslationCtx::new(module, registry.tgt_version);
    for f in module.func_ids() {
        ctx.clone_signature(f);
    }
    let tgt_f = ctx.translate_func(row.func)?;
    ctx.begin_function(row.func, tgt_f);
    let func = module.func(row.func);
    for b in func.block_ids() {
        let name = func.block(b).name.clone();
        let tb = ctx.tgt.func_mut(tgt_f).add_block(name);
        ctx.map_block(b, tb);
    }
    let tb = ctx.translate_block(row.block)?;
    ctx.set_insertion(tb);
    let out = program.run(registry, &mut ctx, row.inst)?;
    // Structural signature: every instruction the candidate built plus the
    // value it returned. Identical signatures => equivalent behaviour on
    // this instruction (Optimization I's object-equivalence merging).
    let built = &ctx.tgt.func(tgt_f).insts;
    Ok(format!("{out:?} | {built:?}"))
}

/// The per-test translator of Alg. 3: dispatches each location to its
/// assigned candidate, relying on the skeleton's deterministic traversal
/// order (the location profiler uses the same order).
pub struct PerTestTranslator<'a> {
    registry: &'a ApiRegistry,
    /// Program per location.
    programs: Vec<&'a ApiProgram>,
    counter: Cell<usize>,
}

impl std::fmt::Debug for PerTestTranslator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PerTestTranslator({} locations)", self.programs.len())
    }
}

impl<'a> PerTestTranslator<'a> {
    /// Creates a per-test translator from one program per location.
    pub fn new(registry: &'a ApiRegistry, programs: Vec<&'a ApiProgram>) -> Self {
        PerTestTranslator {
            registry,
            programs,
            counter: Cell::new(0),
        }
    }
}

impl InstTranslator for PerTestTranslator<'_> {
    fn translate_inst(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst: siro_ir::InstId,
    ) -> TranslateResult<siro_ir::ValueRef> {
        let loc = self.counter.get();
        self.counter.set(loc + 1);
        let program = self.programs.get(loc).ok_or_else(|| {
            siro_core::TranslateError::Ir(siro_ir::IrError::Other(format!(
                "location {loc} beyond the profile table"
            )))
        })?;
        Ok(program.run(self.registry, ctx, inst)?)
    }
}

/// Timing split of one validation (translate+compile vs execute).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidationTiming {
    /// Nanoseconds spent translating and "compiling" (verify + backend
    /// check).
    pub translate_compile_ns: u64,
    /// Nanoseconds spent executing the translated program.
    pub execute_ns: u64,
}

/// Validates one per-test translator assignment against the oracle
/// (Fig. 6): translate, compile (verify + backend-feasibility check),
/// execute, and compare the returned constant.
#[allow(clippy::too_many_arguments)]
pub fn validate_assignment(
    registry: &ApiRegistry,
    test: &OracleTest,
    enumeration: &Enumeration,
    per_kind: &std::collections::HashMap<Opcode, Vec<ApiProgram>>,
    assignment: &[usize],
    target: IrVersion,
    timing: &mut ValidationTiming,
) -> bool {
    debug_assert_eq!(target, registry.tgt_version);
    let t0 = std::time::Instant::now();
    let programs: Vec<&ApiProgram> = enumeration
        .slot_of_loc
        .iter()
        .map(|&si| {
            let slot = &enumeration.slots[si];
            &per_kind[&slot.kind][assignment[si]]
        })
        .collect();
    let translator = PerTestTranslator::new(registry, programs);
    let skel = Skeleton::new(registry.tgt_version);
    let translated = match skel.translate_module(&test.module, &translator) {
        Ok(m) => m,
        Err(_) => {
            timing.translate_compile_ns += t0.elapsed().as_nanos() as u64;
            siro_trace::counter("synth.validate_translate_rejects", 1);
            return false;
        }
    };
    let compiled =
        verify::verify_module(&translated).is_ok() && verify::codegen_check(&translated).is_ok();
    timing.translate_compile_ns += t0.elapsed().as_nanos() as u64;
    if !compiled {
        siro_trace::counter("synth.validate_compile_rejects", 1);
        return false;
    }
    siro_trace::counter("synth.validate_executions", 1);
    let t1 = std::time::Instant::now();
    let ok = Machine::new(&translated)
        .with_fuel(200_000)
        .run_main()
        .map(|o| o.return_int() == Some(test.oracle))
        .unwrap_or(false);
    timing.execute_ns += t1.elapsed().as_nanos() as u64;
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candgen::{generate_for_kind, GenLimits};
    use crate::profile::profile_module;
    use crate::typegraph::TypeGraph;
    use siro_ir::{FuncBuilder, ValueRef};

    fn uncond_br_test() -> OracleTest {
        let mut m = Module::new("t", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let x = b.add_block("exit");
        b.position_at_end(e);
        b.br(x);
        b.position_at_end(x);
        b.ret(Some(ValueRef::const_int(i32t, 5)));
        OracleTest {
            name: "uncond".into(),
            module: m,
            oracle: 5,
        }
    }

    #[test]
    fn probe_prunes_wrong_subkind_candidates() {
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let graph = TypeGraph::new(&reg);
        let br_cands = generate_for_kind(&graph, Opcode::Br, GenLimits::default());
        let test = uncond_br_test();
        let table = profile_module(&reg, &test.module).unwrap();
        let br_row = &table.rows[0];
        assert_eq!(br_row.kind, Opcode::Br);
        let mut ok = 0;
        let mut dead = 0;
        for c in &br_cands {
            match probe_candidate(&reg, &test.module, br_row, c) {
                Ok(_) => ok += 1,
                Err(_) => dead += 1,
            }
        }
        // Conditional-branch candidates (needing get_condition /
        // successor 1) must die on an unconditional branch.
        assert!(ok >= 1, "no candidate survived the probe");
        assert!(dead > ok, "probe pruned nothing: ok={ok}, dead={dead}");
    }

    #[test]
    fn probe_signatures_merge_aliases() {
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let graph = TypeGraph::new(&reg);
        let br_cands = generate_for_kind(&graph, Opcode::Br, GenLimits::default());
        let test = uncond_br_test();
        let table = profile_module(&reg, &test.module).unwrap();
        let row = &table.rows[0];
        // get_successor(0) and get_block_operand(0) produce identical IR for
        // an unconditional branch -> identical signatures.
        let find = |needle: &str| {
            br_cands
                .iter()
                .find(|c| c.summary(&reg) == needle)
                .unwrap_or_else(|| panic!("candidate {needle} not generated"))
        };
        let a = find("create_br(translate_block(get_successor(inst, const_0())))");
        let b = find("create_br(translate_block(get_block_operand(inst, const_0())))");
        let sa = probe_candidate(&reg, &test.module, row, a).unwrap();
        let sb = probe_candidate(&reg, &test.module, row, b).unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn enumeration_counts_and_decoding() {
        let e = Enumeration {
            slots: vec![
                Slot {
                    kind: Opcode::Br,
                    conj: PredConj::new(),
                    locs: vec![0],
                    groups: vec![vec![3], vec![5, 6]],
                },
                Slot {
                    kind: Opcode::Ret,
                    conj: PredConj::new(),
                    locs: vec![1],
                    groups: vec![vec![0], vec![1], vec![2]],
                },
            ],
            slot_of_loc: vec![0, 1],
        };
        assert_eq!(e.assignment_count(), 6);
        assert_eq!(e.decode(0), vec![3, 0]);
        assert_eq!(e.decode(1), vec![5, 0]);
        assert_eq!(e.decode(5), vec![5, 2]);
        assert_eq!(e.slots[0].expand(5), &[5, 6]);
    }
}
