//! The synthesis driver: Alg. 2 end to end.
//!
//! ```text
//! Λ* <- Generate(Lib, K)                  // type-guided generation  ➊
//! for t in T (ordered, Opt. III):
//!     τ_t  <- Profile(t)                  // three profilers          ➋
//!     PT_t <- Enumerate(Λ*, τ_t)          // per-test translators     ➋
//!     PT✓  <- Validate(PT_t, t)           // differential testing     ➌
//!     Refine(M*, PT✓, τ_t)                // Alg. 4                   ➍
//! return CompleteSkeleton(M*)             //                          ➎
//! ```
//!
//! The three optimizations of §4.4 are independently switchable so the RQ3
//! ablation can reproduce the paper's blow-ups:
//!
//! * **Opt. I (equivalence)** — locations sharing `(kind, σ&)` share one
//!   enumeration box, and probe-equivalent candidates are enumerated
//!   through one representative;
//! * **Opt. II (memoization)** — a conjunction already in `M*` restricts
//!   the box to the memoized survivors;
//! * **Opt. III (ordering)** — simpler test cases run first so later,
//!   larger cases start from refined boxes.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use siro_api::{ApiProgram, ApiRegistry};
use siro_core::SynthesizedTranslator;
use siro_ir::{IrVersion, Opcode};

use crate::candgen::{generate_all, GenLimits};
use crate::complete::{candidate_loc, complete_translator, render_translator};
use crate::pertest::{
    probe_candidate, validate_assignment, Enumeration, OracleTest, Slot, ValidationTiming,
};
use crate::profile::profile_module;
use crate::refine::{MStar, SynthFault};
use crate::typegraph::TypeGraph;

/// Configuration of one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Source IR version (getter side).
    pub source: IrVersion,
    /// Target IR version (builder side).
    pub target: IrVersion,
    /// Optimization I: equivalence merging.
    pub opt_equivalence: bool,
    /// Optimization II: memoization through `M*`.
    pub opt_memoization: bool,
    /// Optimization III: simple-tests-first ordering.
    pub opt_ordering: bool,
    /// Validation worker threads.
    pub threads: usize,
    /// Candidate-generation limits.
    pub limits: GenLimits,
    /// Per-test translator budget; exceeding it aborts like the paper's
    /// 24-hour timeout with 13,000,000 translators pending.
    pub max_assignments_per_test: u128,
    /// Test-only fault injection: a deliberately broken synthesis rule the
    /// differential fuzzer must find. `None` (the default and the only
    /// production value) synthesizes normally.
    pub fault: Option<SynthFault>,
}

impl SynthesisConfig {
    /// Default configuration for a version pair (all optimizations on).
    pub fn new(source: IrVersion, target: IrVersion) -> Self {
        SynthesisConfig {
            source,
            target,
            opt_equivalence: true,
            opt_memoization: true,
            opt_ordering: true,
            threads: resolve_threads(),
            limits: GenLimits::default(),
            max_assignments_per_test: 500_000,
            fault: None,
        }
    }
}

/// Resolves the worker-thread count for synthesis: the `SIRO_THREADS`
/// environment variable when set to a positive integer, otherwise every
/// core `available_parallelism` reports. Resolved once per process —
/// [`SynthesisConfig::new`] runs on the serving hot path (the router
/// builds a config per catalog edge per plan), and the env lookup plus
/// `available_parallelism` syscall dominated it.
pub fn resolve_threads() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| threads_from_override(std::env::var("SIRO_THREADS").ok().as_deref()))
}

/// Pure core of [`resolve_threads`], split out so the fallback rules are
/// testable without racing on the process environment. Zero or unparsable
/// overrides fall back to the detected parallelism, so `SIRO_THREADS=0`
/// can never configure a run with no workers.
pub fn threads_from_override(raw: Option<&str>) -> usize {
    let detected = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    match raw.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => detected,
    }
}

/// Wall-clock breakdown of the synthesis stages (the RQ3 "time breakdown").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Type-guided candidate generation.
    pub generation: Duration,
    /// Profiling all test cases.
    pub profiling: Duration,
    /// Per-test translator enumeration (incl. probing).
    pub enumeration: Duration,
    /// Differential-testing validation (wall clock).
    pub validation: Duration,
    /// CPU time inside validation spent *executing* translated tests (the
    /// paper reports this separately: 0.19 h of 2.64 h).
    pub validation_execute_cpu: Duration,
    /// CPU time inside validation spent translating + compiling.
    pub validation_translate_cpu: Duration,
    /// Refinement (Alg. 4).
    pub refinement: Duration,
    /// Skeleton completion + rendering.
    pub completion: Duration,
}

impl StageTimings {
    /// Total wall-clock of all stages.
    pub fn total(&self) -> Duration {
        self.generation
            + self.profiling
            + self.enumeration
            + self.validation
            + self.refinement
            + self.completion
    }
}

/// Per-test statistics (drives the "did this test prune anything" feedback
/// the paper uses to spot duplicated test cases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestStats {
    /// Test name.
    pub name: String,
    /// Per-test translators validated.
    pub assignments: u64,
    /// How many passed the oracle.
    pub passed: u64,
    /// Candidates eliminated from `M*` by this test.
    pub pruned: u64,
}

/// The full report of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// The version pair.
    pub pair: (IrVersion, IrVersion),
    /// Number of test cases consumed.
    pub tests_used: usize,
    /// Initial candidate count per kind (Fig. 12(a)).
    pub candidate_counts: BTreeMap<Opcode, usize>,
    /// Refined candidate count per kind (Fig. 12(b)).
    pub refined_counts: BTreeMap<Opcode, usize>,
    /// Total per-test translators validated.
    pub assignments_validated: u64,
    /// Stage timings.
    pub timings: StageTimings,
    /// Rendered-source line count of all initial candidates ("#Atomic Trans
    /// (LOC)" of Tab. 3).
    pub candidate_loc: usize,
    /// Rendered-source line count of the final translator ("#Inst Trans
    /// (LOC)").
    pub translator_loc: usize,
    /// Per-test statistics in execution order.
    pub per_test: Vec<TestStats>,
}

impl SynthesisReport {
    /// Tests that eliminated no candidates — duplicates the user can drop.
    pub fn redundant_tests(&self) -> Vec<&str> {
        self.per_test
            .iter()
            .filter(|t| t.pruned == 0)
            .map(|t| t.name.as_str())
            .collect()
    }
}

/// A completed synthesis: the pluggable translator plus its report and
/// rendered source.
#[derive(Debug)]
pub struct SynthesisOutcome {
    /// The executable instruction-translator set.
    pub translator: SynthesizedTranslator,
    /// Statistics and timings.
    pub report: SynthesisReport,
    /// The final translator rendered as source code (Fig. 4 style).
    pub rendered: String,
    /// The lazily lowered compiled tier: unset until the first
    /// [`SynthesisOutcome::compiled`] call (or a `.sirx` store load seeds
    /// it), then memoized — `None` records a failed lowering so it is not
    /// re-attempted per request.
    pub(crate) compiled_slot: OnceLock<Option<Arc<crate::compile::CompiledTranslator>>>,
}

/// Synthesis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// A test case produced more per-test translators than the budget —
    /// the ablation's "timeout" signal.
    Blowup {
        /// The offending test.
        test: String,
        /// How many per-test translators would have to be validated.
        assignments: u128,
    },
    /// No per-test translator passed a test: the candidate space lacks a
    /// correct translator or the corpus is inconsistent.
    Conflict {
        /// The offending test.
        test: String,
    },
    /// A profiler or API failure.
    Api(String),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Blowup { test, assignments } => write!(
                f,
                "enumeration blow-up on `{test}`: {assignments} per-test translators pending"
            ),
            SynthError::Conflict { test } => {
                write!(f, "no per-test translator satisfied `{test}`")
            }
            SynthError::Api(m) => write!(f, "API failure: {m}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// The synthesis system of Fig. 5.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    /// Run configuration.
    pub config: SynthesisConfig,
}

impl Synthesizer {
    /// Creates a synthesizer.
    pub fn new(config: SynthesisConfig) -> Self {
        Synthesizer { config }
    }

    /// Convenience constructor with defaults for a pair.
    pub fn for_pair(source: IrVersion, target: IrVersion) -> Self {
        Synthesizer::new(SynthesisConfig::new(source, target))
    }

    /// Runs Alg. 2 over the given test cases.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize(&self, tests: &[OracleTest]) -> Result<SynthesisOutcome, SynthError> {
        let cfg = &self.config;
        let _run = siro_trace::span!(
            "synth.run",
            "{}->{} ({} tests)",
            cfg.source,
            cfg.target,
            tests.len()
        );
        let registry = Arc::new(ApiRegistry::for_pair(cfg.source, cfg.target));
        let mut timings = StageTimings::default();

        // ➊ Type-guided generation.
        let t0 = Instant::now();
        let sp = siro_trace::span!("synth.generate");
        let per_kind: HashMap<Opcode, Vec<ApiProgram>> = {
            let graph = TypeGraph::new(&registry);
            generate_all(&graph, cfg.limits).into_iter().collect()
        };
        drop(sp);
        timings.generation = t0.elapsed();
        let candidate_counts: BTreeMap<Opcode, usize> =
            per_kind.iter().map(|(k, v)| (*k, v.len())).collect();

        // Opt. III: order the tests simplest-first (fewest distinct kinds,
        // then fewest instructions).
        let mut order: Vec<usize> = (0..tests.len()).collect();
        if cfg.opt_ordering {
            let keys: Vec<(usize, usize)> = tests
                .iter()
                .map(|t| {
                    let mut kinds = BTreeSet::new();
                    let mut insts = 0usize;
                    for f in &t.module.funcs {
                        for i in &f.insts {
                            kinds.insert(i.opcode);
                            insts += 1;
                        }
                    }
                    (kinds.len(), insts)
                })
                .collect();
            order.sort_by_key(|&i| keys[i]);
        }

        let mut mstar = MStar::new();
        let mut per_test_stats = Vec::new();
        let mut assignments_total: u64 = 0;

        for &ti in &order {
            let test = &tests[ti];
            let _t = siro_trace::span!("synth.test", "{}", test.name);
            // ➋ Profiling.
            let tp = Instant::now();
            let sp = siro_trace::span!("synth.profile");
            let table = profile_module(&registry, &test.module)
                .map_err(|e| SynthError::Api(format!("{}: {e}", test.name)))?;
            drop(sp);
            timings.profiling += tp.elapsed();

            // ➋ Enumeration: build the boxes.
            let te = Instant::now();
            let sp = siro_trace::span!("synth.enumerate");
            let enumeration = self.enumerate(&registry, &per_kind, test, &table, &mstar)?;
            drop(sp);
            timings.enumeration += te.elapsed();

            let count = enumeration.assignment_count();
            if count > cfg.max_assignments_per_test {
                return Err(SynthError::Blowup {
                    test: test.name.clone(),
                    assignments: count,
                });
            }
            let count = count as u64;
            siro_trace::counter("synth.enum_slots", enumeration.slots.len() as u64);
            siro_trace::counter("synth.enum_assignments", count);

            // ➌ Validation (parallel differential testing).
            let tv = Instant::now();
            let sp = siro_trace::span!("synth.validate", "{} assignments", count);
            let (passing, exec_ns, trans_ns) =
                self.validate_all(&registry, &per_kind, test, &enumeration, count);
            drop(sp);
            timings.validation += tv.elapsed();
            timings.validation_execute_cpu += Duration::from_nanos(exec_ns);
            timings.validation_translate_cpu += Duration::from_nanos(trans_ns);
            assignments_total += count;
            siro_trace::counter("synth.assignments_validated", count);
            siro_trace::counter("synth.assignments_passed", passing.len() as u64);
            siro_trace::counter(
                "synth.assignments_failed",
                count.saturating_sub(passing.len() as u64),
            );

            if passing.is_empty() {
                return Err(SynthError::Conflict {
                    test: test.name.clone(),
                });
            }

            // ➍ Refinement (Alg. 4).
            let tr = Instant::now();
            let sp = siro_trace::span!("synth.refine", "{} passing", passing.len());
            let before: usize = enumeration
                .slots
                .iter()
                .map(|s| {
                    mstar
                        .lookup(s.kind, &s.conj)
                        .map_or(per_kind[&s.kind].len(), BTreeSet::len)
                })
                .sum();
            for (si, slot) in enumeration.slots.iter().enumerate() {
                let mut survivors: BTreeSet<usize> = BTreeSet::new();
                for assignment in &passing {
                    survivors.extend(slot.expand(assignment[si]).iter().copied());
                }
                mstar.refine(slot.kind, &slot.conj, &survivors);
            }
            let after: usize = enumeration
                .slots
                .iter()
                .map(|s| mstar.lookup(s.kind, &s.conj).map_or(0, BTreeSet::len))
                .sum();
            drop(sp);
            timings.refinement += tr.elapsed();

            let pruned = before.saturating_sub(after) as u64;
            siro_trace::counter("synth.candidates_pruned", pruned);
            per_test_stats.push(TestStats {
                name: test.name.to_string(),
                assignments: count,
                passed: passing.len() as u64,
                pruned,
            });
        }

        // Armed fault injection (test-only): corrupt the refinement state
        // after the test loop so the run still completes but the completed
        // translator is wrong — the seeded bug the difftest fuzzer must
        // rediscover.
        if let Some(SynthFault::ForgetRefinement(kind)) = cfg.fault {
            if let Some(cands) = per_kind.get(&kind) {
                mstar.forget_refinement(kind, cands.len());
                siro_trace::counter("synth.fault_injected", 1);
            }
        }

        // ➎ Skeleton completion.
        let tc = Instant::now();
        let sp = siro_trace::span!("synth.complete");
        let mut translator = complete_translator(Arc::clone(&registry), &mstar, &per_kind);
        if let Some(SynthFault::SwapOperands(kind)) = cfg.fault {
            apply_swap_operands_fault(&registry, &mut translator, kind);
        }
        let rendered = render_translator(&translator);
        drop(sp);
        timings.completion = tc.elapsed();

        let refined_counts: BTreeMap<Opcode, usize> = mstar
            .kinds()
            .into_iter()
            .map(|k| (k, mstar.refined_candidates(k).len()))
            .collect();
        let report = SynthesisReport {
            pair: (cfg.source, cfg.target),
            tests_used: tests.len(),
            candidate_counts,
            refined_counts,
            assignments_validated: assignments_total,
            timings,
            candidate_loc: candidate_loc(&registry, &per_kind),
            translator_loc: rendered.lines().count(),
            per_test: per_test_stats,
        };
        Ok(SynthesisOutcome {
            translator,
            report,
            rendered,
            compiled_slot: OnceLock::new(),
        })
    }

    /// Builds the enumeration boxes for one test.
    fn enumerate(
        &self,
        registry: &ApiRegistry,
        per_kind: &HashMap<Opcode, Vec<ApiProgram>>,
        test: &OracleTest,
        table: &crate::profile::ProfileTable,
        mstar: &MStar,
    ) -> Result<Enumeration, SynthError> {
        let cfg = &self.config;
        let mut slots: Vec<Slot> = Vec::new();
        let mut slot_of_loc = vec![usize::MAX; table.len()];
        for row in &table.rows {
            // Opt. I(a): share a box with an earlier location of the same
            // (kind, σ&).
            if cfg.opt_equivalence {
                if let Some((si, slot)) = slots
                    .iter_mut()
                    .enumerate()
                    .find(|(_, s)| s.kind == row.kind && s.conj == row.conj)
                {
                    slot.locs.push(row.loc);
                    slot_of_loc[row.loc] = si;
                    continue;
                }
            }
            let all = per_kind.get(&row.kind).ok_or_else(|| {
                SynthError::Api(format!("no candidates generated for `{}`", row.kind))
            })?;
            // Opt. II: memoized survivors, if this conjunction was seen.
            let base: Vec<usize> = if cfg.opt_memoization {
                match mstar.lookup(row.kind, &row.conj) {
                    Some(set) => set.iter().copied().collect(),
                    None => (0..all.len()).collect(),
                }
            } else {
                (0..all.len()).collect()
            };
            // Probe each candidate against the concrete instruction (in
            // parallel; probe order is preserved so grouping stays
            // deterministic); failures are dropped, successes grouped by
            // signature (Opt. I(b)) or kept singleton.
            let probes = self.probe_all(registry, test, row, all, &base);
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut by_sig: HashMap<String, usize> = HashMap::new();
            for (ci, sig) in probes {
                let Some(sig) = sig else {
                    siro_trace::counter("synth.probes_failed", 1);
                    continue;
                };
                if cfg.opt_equivalence {
                    if let Some(&gi) = by_sig.get(&sig) {
                        groups[gi].push(ci);
                    } else {
                        by_sig.insert(sig, groups.len());
                        groups.push(vec![ci]);
                    }
                } else {
                    groups.push(vec![ci]);
                }
            }
            if groups.is_empty() {
                return Err(SynthError::Conflict {
                    test: format!("{} (no candidate translates `{}`)", test.name, row.kind),
                });
            }
            slot_of_loc[row.loc] = slots.len();
            slots.push(Slot {
                kind: row.kind,
                conj: row.conj.clone(),
                locs: vec![row.loc],
                groups,
            });
        }
        Ok(Enumeration { slots, slot_of_loc })
    }

    /// Probes every candidate in `base` against the concrete instruction,
    /// fanning the work out over contiguous chunks that are reassembled in
    /// order — the result is identical to a sequential probe loop, so the
    /// downstream signature grouping (and hence the synthesized translator)
    /// does not depend on the thread count. Failed probes come back `None`.
    fn probe_all(
        &self,
        registry: &ApiRegistry,
        test: &OracleTest,
        row: &crate::profile::ProfiledInst,
        all: &[ApiProgram],
        base: &[usize],
    ) -> Vec<(usize, Option<String>)> {
        siro_trace::counter("synth.probes", base.len() as u64);
        let probe = |&ci: &usize| {
            (
                ci,
                probe_candidate(registry, &test.module, row, &all[ci]).ok(),
            )
        };
        let threads = self.config.threads.max(1).min(base.len().max(1));
        // Below this size thread spawn overhead beats the win.
        if threads == 1 || base.len() < 64 {
            return base.iter().map(probe).collect();
        }
        let chunk = base.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = base
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(probe).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("probe worker panicked"))
                .collect()
        })
    }

    /// Validates every assignment, in parallel, returning the passing
    /// representative vectors plus CPU-time counters.
    fn validate_all(
        &self,
        registry: &ApiRegistry,
        per_kind: &HashMap<Opcode, Vec<ApiProgram>>,
        test: &OracleTest,
        enumeration: &Enumeration,
        count: u64,
    ) -> (Vec<Vec<usize>>, u64, u64) {
        let threads = self.config.threads.max(1).min(count.max(1) as usize);
        let exec_ns = AtomicU64::new(0);
        let trans_ns = AtomicU64::new(0);
        let target = self.config.target;
        let passing: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let exec_ns = &exec_ns;
                let trans_ns = &trans_ns;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut timing = ValidationTiming::default();
                    let mut n = w as u64;
                    while n < count {
                        let assignment = enumeration.decode(u128::from(n));
                        if validate_assignment(
                            registry,
                            test,
                            enumeration,
                            per_kind,
                            &assignment,
                            target,
                            &mut timing,
                        ) {
                            local.push(assignment);
                        }
                        n += threads as u64;
                    }
                    exec_ns.fetch_add(timing.execute_ns, AtomicOrd::Relaxed);
                    trans_ns.fetch_add(timing.translate_compile_ns, AtomicOrd::Relaxed);
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("validation worker panicked"))
                .collect()
        });
        (
            passing,
            exec_ns.load(AtomicOrd::Relaxed),
            trans_ns.load(AtomicOrd::Relaxed),
        )
    }
}

/// Implements [`SynthFault::SwapOperands`]: rewrites every arm of the
/// kind's completed translator so steps fetching operand 0 fetch operand 1
/// and vice versa. The corrupted program stays well-typed (the two index
/// constants have the same API type), so the bug is a silent miscompile
/// rather than a loud translation failure.
fn apply_swap_operands_fault(
    registry: &ApiRegistry,
    translator: &mut SynthesizedTranslator,
    kind: Opcode,
) {
    let (Some(c0), Some(c1)) = (registry.find("const_0"), registry.find("const_1")) else {
        return;
    };
    if let Some(kt) = translator.kinds.get_mut(&kind) {
        for arm in &mut kt.arms {
            for step in &mut arm.program.steps {
                if step.api == c0 {
                    step.api = c1;
                } else if step.api == c1 {
                    step.api = c0;
                }
            }
        }
        siro_trace::counter("synth.fault_injected", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::{ReferenceTranslator, Skeleton};
    use siro_ir::interp::Machine;

    fn tests_from_corpus(src: IrVersion, tgt: IrVersion, names: &[&str]) -> Vec<OracleTest> {
        siro_testcases::corpus_for_pair(src, tgt)
            .into_iter()
            .filter(|c| names.is_empty() || names.contains(&c.name))
            .map(|c| OracleTest {
                name: c.name.to_string(),
                module: c.build(src),
                oracle: c.oracle,
            })
            .collect()
    }

    #[test]
    fn thread_override_rules() {
        let detected = threads_from_override(None);
        assert!(detected >= 1, "no override: detected parallelism");
        assert_eq!(threads_from_override(Some("3")), 3);
        assert_eq!(threads_from_override(Some(" 5 ")), 5);
        // Zero or garbage can never configure a run with no workers.
        assert_eq!(threads_from_override(Some("0")), detected);
        assert_eq!(threads_from_override(Some("lots")), detected);
        assert_eq!(threads_from_override(Some("")), detected);
        assert_eq!(threads_from_override(Some("-2")), detected);
        // The default config inherits the resolved count.
        let cfg = SynthesisConfig::new(IrVersion::V13_0, IrVersion::V3_6);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn synthesizes_branch_and_arithmetic_translators() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(
            src,
            tgt,
            &[
                "ret_const",
                "add_asym",
                "sub_asym",
                "icmp_three_preds",
                "br_cond_true",
                "br_cond_false",
                "br_uncond_chain",
            ],
        );
        assert_eq!(tests.len(), 7);
        let outcome = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        // The synthesized translator must now translate a fresh program
        // correctly.
        let case = siro_testcases::full_corpus()
            .into_iter()
            .find(|c| c.name == "br_cond_false")
            .unwrap();
        let m = case.build(src);
        let out = Skeleton::new(tgt)
            .translate_module(&m, &outcome.translator)
            .unwrap();
        siro_ir::verify::verify_module(&out).unwrap();
        assert_eq!(
            Machine::new(&out).run_main().unwrap().return_int(),
            Some(case.oracle)
        );
        // The report carries Fig. 12 data.
        assert!(outcome.report.candidate_counts[&Opcode::Br] >= 10);
        assert!(outcome.report.refined_counts[&Opcode::Br] >= 1);
        assert!(outcome.rendered.contains("translate_br"));
    }

    #[test]
    fn refinement_kills_swapped_subtraction() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &["sub_asym"]);
        let outcome = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        // After the asymmetric test, exactly the correct operand order
        // remains (modulo true equivalences, of which sub has none).
        let refined = outcome.report.refined_counts[&Opcode::Sub];
        assert_eq!(refined, 1, "sub should refine to a single candidate");
    }

    #[test]
    fn weak_test_keeps_wrong_candidates_alive() {
        // The paper's Fig. 7 left-hand case: symmetric operands cannot
        // reject duplicated/swapped operands.
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &["add_sym"]);
        let outcome = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        assert!(
            outcome.report.refined_counts[&Opcode::Add] >= 3,
            "symmetric test should leave ambiguous candidates"
        );
    }

    #[test]
    fn synthesized_translator_matches_reference_on_corpus() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &[]);
        let outcome = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        // Every corpus case translates identically (behaviourally) under
        // the synthesized and the reference translators.
        for case in siro_testcases::corpus_for_pair(src, tgt) {
            let m = case.build(src);
            let skel = Skeleton::new(tgt);
            let a = skel.translate_module(&m, &outcome.translator).unwrap();
            let b = skel.translate_module(&m, &ReferenceTranslator).unwrap();
            let ra = Machine::new(&a).run_main().unwrap().return_int();
            let rb = Machine::new(&b).run_main().unwrap().return_int();
            assert_eq!(ra, rb, "case {}", case.name);
            assert_eq!(ra, Some(case.oracle), "case {}", case.name);
        }
    }

    #[test]
    fn injected_fault_corrupts_the_completed_translator() {
        // The difftest acceptance bug: the swapped-operand Sub candidate
        // the asymmetric corpus had specifically eliminated.
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &["ret_const", "sub_asym"]);
        let mut cfg = SynthesisConfig::new(src, tgt);
        cfg.fault = Some(crate::refine::SynthFault::SwapOperands(Opcode::Sub));
        let outcome = Synthesizer::new(cfg).synthesize(&tests).unwrap();
        let case = siro_testcases::full_corpus()
            .into_iter()
            .find(|c| c.name == "sub_asym")
            .unwrap();
        let m = case.build(src);
        let out = Skeleton::new(tgt)
            .translate_module(&m, &outcome.translator)
            .unwrap();
        siro_ir::verify::verify_module(&out).unwrap();
        let got = Machine::new(&out).run_main().unwrap().return_int();
        assert_ne!(
            got,
            Some(case.oracle),
            "the armed fault must change observable behaviour"
        );
        // Without the fault the same corpus synthesizes correctly.
        let clean = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        let out = Skeleton::new(tgt)
            .translate_module(&m, &clean.translator)
            .unwrap();
        assert_eq!(
            Machine::new(&out).run_main().unwrap().return_int(),
            Some(case.oracle)
        );
    }

    #[test]
    fn blowup_error_without_optimizations() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &["switch_both", "gep_struct"]);
        let mut cfg = SynthesisConfig::new(src, tgt);
        cfg.opt_equivalence = false;
        cfg.opt_memoization = false;
        cfg.max_assignments_per_test = 10_000;
        let err = Synthesizer::new(cfg).synthesize(&tests).unwrap_err();
        assert!(matches!(err, SynthError::Blowup { .. }), "{err}");
    }

    #[test]
    fn unseen_predicate_warns_after_partial_corpus() {
        // Synthesize with only unconditional branches, then meet a
        // conditional one: the generated warning branch must fire.
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let tests = tests_from_corpus(src, tgt, &["ret_const", "br_uncond_chain"]);
        let outcome = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
        let case = siro_testcases::full_corpus()
            .into_iter()
            .find(|c| c.name == "br_cond_true")
            .unwrap();
        let m = case.build(src);
        let err = Skeleton::new(tgt)
            .translate_module(&m, &outcome.translator)
            .unwrap_err();
        assert!(
            matches!(err, siro_core::TranslateError::UnseenPredicate { .. }),
            "{err}"
        );
    }
}
