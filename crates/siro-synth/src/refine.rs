//! Refinement (Alg. 4): the conservative mapping `M*` from predicate
//! conjunctions to surviving candidate sets.
//!
//! `M*_k : [Σ&_k -> Λ*_k]` records, for each instruction kind and each
//! runtime predicate conjunction encountered so far, the candidates that
//! participated in at least one successful per-test translation of every
//! test exercising that conjunction. New conjunctions install the observed
//! set; repeated conjunctions intersect — an over-approximation of
//! correctness that only ever shrinks.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use siro_api::PredConj;
use siro_ir::Opcode;

/// Candidate index into the kind's Λ* list.
pub type CandIdx = usize;

/// A deliberately broken synthesis rule, armed through
/// [`SynthesisConfig::fault`](crate::SynthesisConfig) so correctness
/// tooling (the `siro-difftest` fuzzer, regression replays) has a known
/// translator bug to find. Faults act *after* the per-test loop so the run
/// still completes — they corrupt the final translator, never abort
/// synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthFault {
    /// Discards every refinement decision Alg. 4 made for one kind: each
    /// observed conjunction is reset to the full candidate domain, so
    /// completion falls back to the lowest-index candidate as if the corpus
    /// had never discriminated.
    ForgetRefinement(Opcode),
    /// Swaps the operand-index constants in the completed translator for
    /// one kind — the Fig. 7 swapped-operand candidate surviving refinement.
    /// For non-commutative kinds this is a silent miscompile: the output
    /// verifies and runs, but computes `op1 ⊕ op0`.
    SwapOperands(Opcode),
}

impl SynthFault {
    /// The instruction kind the fault corrupts.
    pub fn kind(&self) -> Opcode {
        match *self {
            SynthFault::ForgetRefinement(k) | SynthFault::SwapOperands(k) => k,
        }
    }
}

impl std::fmt::Display for SynthFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthFault::ForgetRefinement(k) => write!(f, "forget-refine:{}", k.name()),
            SynthFault::SwapOperands(k) => write!(f, "swap-operands:{}", k.name()),
        }
    }
}

impl std::str::FromStr for SynthFault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            Some(("forget-refine", kind)) => kind
                .parse::<Opcode>()
                .map(SynthFault::ForgetRefinement)
                .map_err(|_| format!("unknown opcode `{kind}` in fault spec")),
            Some(("swap-operands", kind)) => kind
                .parse::<Opcode>()
                .map(SynthFault::SwapOperands)
                .map_err(|_| format!("unknown opcode `{kind}` in fault spec")),
            _ => Err(format!(
                "unknown fault `{s}` (expected forget-refine:<opcode> or \
                 swap-operands:<opcode>)"
            )),
        }
    }
}

/// The refinement state for all kinds.
#[derive(Debug, Clone, Default)]
pub struct MStar {
    map: HashMap<Opcode, BTreeMap<PredConj, BTreeSet<CandIdx>>>,
}

impl MStar {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// The refined candidate set for `(kind, conj)`, if that conjunction
    /// has been observed (the memoization source of Optimization II).
    pub fn lookup(&self, kind: Opcode, conj: &PredConj) -> Option<&BTreeSet<CandIdx>> {
        self.map.get(&kind).and_then(|m| m.get(conj))
    }

    /// Alg. 4: installs or intersects the surviving candidates for one
    /// conjunction.
    pub fn refine(&mut self, kind: Opcode, conj: &PredConj, survivors: &BTreeSet<CandIdx>) {
        siro_trace::counter("synth.refine_iterations", 1);
        let per_kind = self.map.entry(kind).or_default();
        match per_kind.get_mut(conj) {
            None => {
                per_kind.insert(conj.clone(), survivors.clone());
                siro_trace::counter("synth.refine_conjunctions", 1);
            }
            Some(existing) => {
                existing.retain(|c| survivors.contains(c));
            }
        }
    }

    /// All observed conjunctions and their candidate sets for one kind.
    pub fn entries(&self, kind: Opcode) -> Option<&BTreeMap<PredConj, BTreeSet<CandIdx>>> {
        self.map.get(&kind)
    }

    /// Kinds with at least one observed conjunction.
    pub fn kinds(&self) -> Vec<Opcode> {
        let mut v: Vec<Opcode> = self.map.keys().copied().collect();
        v.sort();
        v
    }

    /// The union of all surviving candidates for a kind (Fig. 12(b)'s
    /// "refined atomic translators" count).
    pub fn refined_candidates(&self, kind: Opcode) -> BTreeSet<CandIdx> {
        self.map
            .get(&kind)
            .map(|m| m.values().flatten().copied().collect())
            .unwrap_or_default()
    }

    /// Applies [`SynthFault::ForgetRefinement`]: resets every observed
    /// conjunction for `kind` to the full candidate domain `0..domain`, as
    /// if Alg. 4 had installed but never intersected. Test-only tooling —
    /// production paths never arm a fault.
    pub fn forget_refinement(&mut self, kind: Opcode, domain: usize) {
        if let Some(per_kind) = self.map.get_mut(&kind) {
            for set in per_kind.values_mut() {
                *set = (0..domain).collect();
            }
        }
    }

    /// Whether any conjunction for `kind` has an empty candidate set — a
    /// contradiction meaning the test corpus is inconsistent or the search
    /// space lacked a correct translator.
    pub fn has_conflict(&self, kind: Opcode) -> bool {
        self.map
            .get(&kind)
            .is_some_and(|m| m.values().any(BTreeSet::is_empty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::PredValue;

    fn conj(v: bool) -> PredConj {
        let mut c = PredConj::new();
        c.insert("is_unconditional".into(), PredValue::Bool(v));
        c
    }

    fn set(xs: &[usize]) -> BTreeSet<CandIdx> {
        xs.iter().copied().collect()
    }

    #[test]
    fn install_then_intersect() {
        let mut m = MStar::new();
        m.refine(Opcode::Br, &conj(true), &set(&[1, 2, 3]));
        assert_eq!(m.lookup(Opcode::Br, &conj(true)), Some(&set(&[1, 2, 3])));
        // A second test kills candidate 3 (the Fig. 7 dynamic).
        m.refine(Opcode::Br, &conj(true), &set(&[2, 3, 9]));
        assert_eq!(m.lookup(Opcode::Br, &conj(true)), Some(&set(&[2, 3])));
        // Distinct conjunction tracked separately.
        m.refine(Opcode::Br, &conj(false), &set(&[7]));
        assert_eq!(m.lookup(Opcode::Br, &conj(false)), Some(&set(&[7])));
        assert_eq!(m.refined_candidates(Opcode::Br), set(&[2, 3, 7]));
    }

    #[test]
    fn conflicts_detected() {
        let mut m = MStar::new();
        m.refine(Opcode::Add, &conj(true), &set(&[1]));
        assert!(!m.has_conflict(Opcode::Add));
        m.refine(Opcode::Add, &conj(true), &set(&[2]));
        assert!(m.has_conflict(Opcode::Add));
    }

    #[test]
    fn unknown_kind_is_empty() {
        let m = MStar::new();
        assert!(m.lookup(Opcode::Phi, &conj(true)).is_none());
        assert!(m.refined_candidates(Opcode::Phi).is_empty());
        assert!(!m.has_conflict(Opcode::Phi));
    }
}
