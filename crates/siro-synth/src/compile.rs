//! The AOT compilation tier: synthesized translators lowered to a flat,
//! pre-resolved instruction stream.
//!
//! A [`crate::SynthesisOutcome`] carries its translator as *data*: per-kind
//! arms of predicate-guarded [`siro_api::ApiProgram`]s, interpreted by
//! re-resolving everything on every instruction — a full registry scan to
//! enumerate the kind's predicate getters, per-predicate `String` keys into
//! a fresh `BTreeMap` conjunction, arm selection by map equality, and a
//! fresh argument `Vec` per program step. That is the right shape for
//! synthesis (the searcher needs programs it can enumerate, merge, and
//! render) but pure overhead once a translator is validated and served on
//! the hot path.
//!
//! This module lowers a validated [`SynthesizedTranslator`] once, ahead of
//! time, into a [`CompiledTranslator`]:
//!
//! * a **dense dispatch table** indexed by `opcode as usize` — no hash-map
//!   probing; kinds the target version lacks dispatch straight to the
//!   new-instruction lowerings, absent kinds straight to the error path;
//! * **pre-resolved API references** — every program step and predicate
//!   getter holds its direct [`siro_api::ApiId`] function index, resolved
//!   at compile time;
//! * **pre-bound operand slots** — each step's argument registers live in a
//!   flat slice, executed against thread-local scratch buffers instead of
//!   per-step allocations;
//! * **pre-flattened guards** — each arm's covering conjunctions become
//!   rows of bare [`PredValue`]s aligned with the kind's predicate order,
//!   so arm selection is a slice comparison, not a `BTreeMap` walk. A kind
//!   whose first arm carries the `true` guard skips predicate evaluation
//!   entirely (the interpreter computes the conjunction and then ignores
//!   it; predicate getters are pure source-side reads, so eliding them
//!   cannot change the translated module).
//!
//! The split between [`TranslatorBackend::lower`] (whole translator → table)
//! and [`TranslatorBackend::lower_kind`] (one kind → stream) mirrors
//! wasmer's `ModuleCodeGenerator` / `FunctionCodeGenerator` pair: the
//! module-level walk is generic, the per-unit codegen is the part a backend
//! may specialize.
//!
//! **Fallback contract:** compilation is an optimization, never a
//! requirement. Any lowering failure ([`CompileError`]), any `.sirx`
//! load/validation failure, and any runtime error of the compiled tier
//! falls back to the interpreter — observable through
//! [`compile_stats`] and the `translate.compiled` /
//! `translate.interpreted` / `translate.compiled_fallback` trace counters,
//! never through a changed result. See `docs/COMPILED.md`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use siro_api::{
    ApiCall, ApiError, ApiFn, ApiKind, ApiRegistry, ApiResult, ApiValue, PredConj, PredValue, Reg,
    Side, TranslationCtx,
};
use siro_core::{newinst, InstTranslator, Skeleton, SynthesizedTranslator, TranslateResult};
use siro_core::{KindTranslator, TranslateError};
use siro_ir::{
    AsmId, BlockId, FuncId, Function, Global, GlobalId, InlineAsm, InstAttrs, InstId, Instruction,
    Module, Opcode, Type, TypeId, TypeTable, ValueRef,
};

use crate::driver::SynthesisOutcome;

// ---- Enable gate -----------------------------------------------------------

/// 0 = follow `SIRO_COMPILE`, 1 = forced on, 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();

/// Whether the compiled tier is enabled for this process.
///
/// On by default; `SIRO_COMPILE=0` (or `off`/`false`) disables it, and
/// [`set_compile_enabled`] overrides the environment either way.
pub fn compile_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_DEFAULT.get_or_init(|| {
            !matches!(
                std::env::var("SIRO_COMPILE").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        }),
    }
}

/// Forces the compiled tier on or off, overriding `SIRO_COMPILE`. Returns
/// the previous effective setting. Used by the serve CLI (`--no-compile`),
/// benches, and tests.
pub fn set_compile_enabled(on: bool) -> bool {
    let before = compile_enabled();
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    before
}

// ---- Process-wide counters -------------------------------------------------

static LOWERED: AtomicU64 = AtomicU64::new(0);
static LOWER_FAILURES: AtomicU64 = AtomicU64::new(0);
static TRANSLATE_COMPILED: AtomicU64 = AtomicU64::new(0);
static TRANSLATE_INTERPRETED: AtomicU64 = AtomicU64::new(0);
static RUNTIME_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static SIRX_LOADED: AtomicU64 = AtomicU64::new(0);
static SIRX_CORRUPT: AtomicU64 = AtomicU64::new(0);
static SIRX_WRITES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time compiled-tier counters, exported on the serve daemon's
/// `STATS`/`METRICS` pages next to the cache and store funnels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Translators lowered to the compiled form in this process.
    pub lowered: u64,
    /// Lowerings that failed (the outcome serves interpreted instead).
    pub lower_failures: u64,
    /// Module translations served by the compiled tier.
    pub translations_compiled: u64,
    /// Module translations served by the interpreter.
    pub translations_interpreted: u64,
    /// Compiled-tier runtime errors that re-ran on the interpreter.
    pub runtime_fallbacks: u64,
    /// Compiled entries (`.sirx`) adopted from the persistent store.
    pub sirx_loaded: u64,
    /// Compiled entries rejected as damaged/stale (load degraded to a
    /// fresh lowering, or to the interpreter if that also failed).
    pub sirx_corrupt: u64,
    /// Compiled entries written back to the persistent store.
    pub sirx_writes: u64,
}

/// Current compiled-tier counters.
pub fn compile_stats() -> CompileStats {
    CompileStats {
        lowered: LOWERED.load(Ordering::Relaxed),
        lower_failures: LOWER_FAILURES.load(Ordering::Relaxed),
        translations_compiled: TRANSLATE_COMPILED.load(Ordering::Relaxed),
        translations_interpreted: TRANSLATE_INTERPRETED.load(Ordering::Relaxed),
        runtime_fallbacks: RUNTIME_FALLBACKS.load(Ordering::Relaxed),
        sirx_loaded: SIRX_LOADED.load(Ordering::Relaxed),
        sirx_corrupt: SIRX_CORRUPT.load(Ordering::Relaxed),
        sirx_writes: SIRX_WRITES.load(Ordering::Relaxed),
    }
}

/// Zeroes the compiled-tier counters (benchmarks and tests).
pub fn reset_compile_stats() {
    for c in [
        &LOWERED,
        &LOWER_FAILURES,
        &TRANSLATE_COMPILED,
        &TRANSLATE_INTERPRETED,
        &RUNTIME_FALLBACKS,
        &SIRX_LOADED,
        &SIRX_CORRUPT,
        &SIRX_WRITES,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn note_sirx_loaded() {
    SIRX_LOADED.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("compile.sirx_loaded", 1);
}

pub(crate) fn note_sirx_corrupt() {
    SIRX_CORRUPT.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("compile.sirx_corrupt", 1);
}

pub(crate) fn note_sirx_write() {
    SIRX_WRITES.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("compile.sirx_writes", 1);
}

// ---- Compile errors --------------------------------------------------------

/// Why a translator could not be lowered. Every variant degrades the
/// outcome to the interpreted tier; none is ever fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// An arm's covering conjunction names a predicate set different from
    /// the kind's predicate getters — the flat guard rows cannot be
    /// aligned. (Synthesis never produces this; a hand-built or damaged
    /// translator can.)
    CoverMismatch {
        /// The instruction kind.
        kind: Opcode,
        /// The predicate name that failed to align (or a summary).
        detail: String,
    },
    /// A program is not well-typed against the registry, so its pre-bound
    /// operand slots would be meaningless.
    IllTyped {
        /// The instruction kind.
        kind: Opcode,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::CoverMismatch { kind, detail } => {
                write!(f, "cannot align guards for `{kind}`: {detail}")
            }
            CompileError::IllTyped { kind } => {
                write!(f, "program for `{kind}` is not well-typed")
            }
        }
    }
}

impl std::error::Error for CompileError {}

// ---- Compiled form ---------------------------------------------------------

/// One sub-kind predicate, pre-bound. The catalog's predicate getters are
/// all infallible single-field reads on the source instruction; each gets a
/// direct micro-op so the steady state evaluates a guard without touching
/// the registry, cloning the instruction, or boxing a name. A predicate the
/// binder does not recognize keeps its pre-resolved [`ApiFn`] handle
/// (`Slow`) — slower, never wrong.
#[derive(Debug, Clone)]
pub(crate) enum PredOp {
    IsUnconditional,
    IsVoidReturn,
    IsTailCall,
    IsIndirectCall,
    IsInbounds,
    IsVolatile,
    IsCleanup,
    Slow(ApiFn),
}

/// A pre-resolved predicate getter: interned name (error paths,
/// guard-row alignment, and `.sirx` serialization), micro-op.
#[derive(Debug, Clone)]
pub(crate) struct CompiledPred {
    pub(crate) name: Arc<str>,
    op: PredOp,
}

impl CompiledPred {
    fn eval<E: ExecEnv>(
        &self,
        ctx: &mut E,
        inst_id: InstId,
        inst: &Instruction,
    ) -> TranslateResult<PredValue> {
        let b = match &self.op {
            PredOp::IsUnconditional => inst.is_unconditional_branch(),
            PredOp::IsVoidReturn => inst.is_void_return(),
            PredOp::IsTailCall => inst.attrs.tail_call,
            PredOp::IsIndirectCall => !matches!(
                inst.callee(),
                Some(ValueRef::Func(_) | ValueRef::InlineAsm(_))
            ),
            PredOp::IsInbounds => inst.attrs.inbounds,
            PredOp::IsVolatile => inst.attrs.volatile,
            PredOp::IsCleanup => inst.attrs.is_cleanup,
            PredOp::Slow(f) => {
                let out = ctx.api_call(f, &[ApiValue::SrcInst(inst_id)])?;
                return out.as_pred().ok_or_else(|| {
                    TranslateError::Api(ApiError::Type(format!("{} is not a predicate", self.name)))
                });
            }
        };
        Ok(PredValue::Bool(b))
    }
}

/// A getter micro-op: the interpreter's getter closure specialized to a
/// borrowed `&Instruction` — no instruction clone per call, immediates
/// (operand indices) pre-bound at compile time. Each variant replicates the
/// corresponding registry closure exactly, including its error strings, so
/// the two tiers stay indistinguishable through results *and* failures.
#[derive(Debug, Clone)]
pub(crate) enum GetterOp {
    Operand(u32),
    OperandType(u32),
    ResultType,
    BlockOperand(u32),
    Successor(u32),
    IsUnconditional,
    Condition,
    IsVoidReturn,
    ReturnValue,
    DefaultDest,
    Cases,
    Address,
    Destinations,
    Callee,
    CalledFunction,
    Arguments,
    CalleeType,
    NormalDest,
    UnwindDest,
    FallthroughDest,
    IndirectDests,
    IsTailCall,
    IsIndirectCall,
    IntPredicateOf,
    FloatPredicateOf,
    Lhs,
    Rhs,
    AllocatedType,
    PointerOperand(u32),
    IsVolatile,
    ValueOperand,
    SourceElementType,
    GepIndices,
    IsInbounds,
    OrderingOf,
    RmwOperation,
    IndexPath,
    ShuffleMask,
    Incoming,
    IsCleanup,
    Handlers,
    Dest,
}

/// One pre-bound program step. Operand translators dispatch straight to
/// their [`TranslationCtx`] method, getters to their [`GetterOp`], constants
/// to a pre-evaluated literal, common builders to their [`BuildOp`];
/// anything the binder does not recognize keeps a pre-resolved [`ApiFn`]
/// and marshals arguments exactly like the interpreter.
#[derive(Debug, Clone)]
pub(crate) enum StepOp {
    Lit(ApiValue),
    TranslateValue(Reg),
    TranslateBlock(Reg),
    TranslateType(Reg),
    TranslateValues(Reg),
    TranslateBlocks(Reg),
    TranslateCases(Reg),
    TranslateIncoming(Reg),
    Getter(GetterOp),
    Build(BuildOp),
    Call { f: ApiFn, args: Box<[Reg]> },
}

/// A builder micro-op: the registry's builder closure specialized to
/// pre-bound argument registers. Executing one reads its arguments straight
/// out of the step results — no per-call argument vector, no `ApiValue`
/// clones (list arguments are *copied element-wise* into the operand vector
/// instead of cloning the list and extending from it), no dynamic dispatch.
/// Each variant replicates the corresponding `siro_api` builder closure
/// exactly, including result-type inference and error strings.
///
/// Name-based binding is sound for builders because each builder name is
/// registered once per registry (signatures differ across target versions,
/// which the binder distinguishes by arity), and the opcode-parameterized
/// families (`create_add`..`create_xor`, the casts) share one closure body
/// parameterized only by the opcode the name itself spells.
#[derive(Debug, Clone)]
pub(crate) enum BuildOp {
    Ret(Reg),
    RetVoid,
    Br(Reg),
    CondBr(Reg, Reg, Reg),
    Switch(Reg, Reg, Reg),
    /// Pre-9.0 `create_call(callee, args)`: return type read off the callee.
    CallImplicit {
        callee: Reg,
        args: ListArg,
    },
    /// 9.0+ `create_call(fnty, callee, args)`: explicit function type.
    CallExplicit {
        fnty: Reg,
        callee: Reg,
        args: ListArg,
    },
    Unreachable,
    /// The 18 two-operand arithmetic/bitwise builders.
    Bin {
        op: Opcode,
        a: Reg,
        b: Reg,
    },
    FNeg(Reg),
    Alloca(Reg),
    /// 9.0+ `create_load(ty, ptr)`.
    LoadExplicit {
        ty: Reg,
        ptr: Reg,
    },
    /// Pre-9.0 `create_load(ptr)`: pointee type read off the pointer.
    LoadImplicit {
        ptr: Reg,
    },
    Store {
        v: Reg,
        p: Reg,
    },
    /// 9.0+ `create_gep(src_ty, base, indices)`.
    GepExplicit {
        ty: Reg,
        base: Reg,
        idx: ListArg,
    },
    /// Pre-9.0 `create_gep(base, indices)`.
    GepImplicit {
        base: Reg,
        idx: ListArg,
    },
    /// The 13 single-value cast builders (`create_trunc`..).
    Cast {
        op: Opcode,
        v: Reg,
        ty: Reg,
    },
    ICmp {
        pred: Reg,
        a: Reg,
        b: Reg,
    },
    FCmp {
        pred: Reg,
        a: Reg,
        b: Reg,
    },
    Phi {
        ty: Reg,
        pairs: Reg,
    },
    Select {
        c: Reg,
        t: Reg,
        f: Reg,
    },
    Freeze(Reg),
}

/// A builder's value-list argument. `Reg` reads an already-translated
/// target list from a step register; `Fused` is the list-fusion peephole's
/// form — the getter + `translate_values` + copy chain collapsed so source
/// operands translate *directly into the final operand vector*, skipping
/// two intermediate list allocations per instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ListArg {
    Reg(Reg),
    Fused(FusedList),
}

/// Which source list a fused builder argument reads off the instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FusedList {
    /// `get_arguments` + `translate_values`: the call's argument operands.
    CallArgs,
    /// `get_indices` + `translate_values`: the GEP's index operands.
    GepIndices,
}

/// One lowered arm: flattened guard rows plus the pre-bound program (and
/// its symbolic form, kept for `.sirx` serialization).
#[derive(Debug, Clone)]
pub(crate) struct CompiledArm {
    /// Guard rows, one [`PredValue`] per predicate in the kind's predicate
    /// order. Empty = the `true` guard (always matches).
    pub(crate) covers: Box<[Box<[PredValue]>]>,
    pub(crate) steps: Box<[StepOp]>,
    /// The symbolic `(api, args)` steps the micro-ops were bound from —
    /// what `.sirx` persists (micro-ops are a process-local encoding).
    pub(crate) calls: Box<[ApiCall]>,
    /// The arm's mirror-mode rewrite template, when the bound steps fall
    /// inside the derivable fragment (see [`derive_tmpl`]); arms without
    /// one run the step stream through [`MirrorEnv`] instead.
    pub(crate) tmpl: Option<MirrorTmpl>,
}

impl CompiledArm {
    fn matches(&self, evaluated: &[PredValue]) -> bool {
        self.covers.is_empty() || self.covers.iter().any(|row| **row == *evaluated)
    }
}

/// The compiled stream for one instruction kind.
#[derive(Debug, Clone)]
pub struct CompiledKind {
    /// The kind's predicate getters, pre-resolved, in registry order (the
    /// same order the interpreter evaluates them in).
    pub(crate) preds: Box<[CompiledPred]>,
    pub(crate) arms: Box<[CompiledArm]>,
    /// When the first arm carries the `true` guard it wins regardless of
    /// the conjunction, so predicate evaluation is elided entirely
    /// (predicate getters are pure source-side reads — skipping them
    /// cannot change results or errors).
    pub(crate) skip_preds: bool,
    /// Whether the in-place mirror driver may run this kind: every
    /// reachable arm emits exactly one instruction as its final step, and
    /// no reachable predicate or step needs a live registry call. Computed
    /// at lower time; a `false` here makes [`CompiledTranslator::
    /// translate_module_owned`] fall back to the push driver for the whole
    /// module.
    pub(crate) mirror_ok: bool,
}

/// Per-thread execution scratch: reused across instructions so the steady
/// state allocates nothing per instruction.
#[derive(Default)]
struct Scratch {
    evaluated: Vec<PredValue>,
    results: Vec<ApiValue>,
    args: Vec<ApiValue>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Binds one predicate getter to its micro-op by component name. Safe
/// across kinds: every registry instance of a given predicate name has the
/// same closure body (the per-kind registrations only differ in their
/// parameter type), so the micro-op replicates whichever instance `f` is.
fn bind_pred(f: &ApiFn) -> PredOp {
    match f.name.as_str() {
        "is_unconditional" => PredOp::IsUnconditional,
        "is_void_return" => PredOp::IsVoidReturn,
        "is_tail_call" => PredOp::IsTailCall,
        "is_indirect_call" => PredOp::IsIndirectCall,
        "is_inbounds" => PredOp::IsInbounds,
        "is_volatile" => PredOp::IsVolatile,
        "is_cleanup" => PredOp::IsCleanup,
        _ => PredOp::Slow(f.clone()),
    }
}

/// Binds one program step to its micro-op. Only applied to programs that
/// already passed `well_typed`, which guarantees the invariants the
/// micro-ops rely on: a getter's instruction argument is always
/// `Reg::Input` (no component returns a source instruction), and a `u32`
/// argument always comes from a constant provider (nothing else returns
/// `u32`). Anything unrecognized falls back to a pre-resolved [`ApiFn`]
/// call — identical to the interpreter, minus the registry lookup.
fn bind_step(
    reg: &ApiRegistry,
    kind: Opcode,
    call: &ApiCall,
    lowered: &[StepOp],
    dummy: &Module,
) -> StepOp {
    let f = reg.get(call.api);
    let generic = || StepOp::Call {
        f: f.clone(),
        args: call.args.clone().into_boxed_slice(),
    };
    match f.kind {
        // Constant providers are ctx-independent by contract; evaluate once
        // against a throwaway context and store the literal.
        ApiKind::Const if call.args.is_empty() => {
            let mut dctx = TranslationCtx::new(dummy, reg.tgt_version);
            match f.call(&mut dctx, &[]) {
                Ok(v) => StepOp::Lit(v),
                Err(_) => generic(),
            }
        }
        ApiKind::OperandTranslator if call.args.len() == 1 => {
            let r = call.args[0];
            match f.name.as_str() {
                "translate_value" => StepOp::TranslateValue(r),
                "translate_block" => StepOp::TranslateBlock(r),
                "translate_type" => StepOp::TranslateType(r),
                "translate_values" => StepOp::TranslateValues(r),
                "translate_blocks" => StepOp::TranslateBlocks(r),
                "translate_cases" => StepOp::TranslateCases(r),
                "translate_incoming" => StepOp::TranslateIncoming(r),
                _ => generic(),
            }
        }
        ApiKind::Getter if matches!(call.args.first(), Some(Reg::Input)) => {
            // An index immediate must resolve to an already-lowered
            // constant literal; otherwise the step stays generic.
            let lit_u32 = |i: usize| match call.args.get(i) {
                Some(Reg::Step(j)) => match lowered.get(*j) {
                    Some(StepOp::Lit(ApiValue::U32(k))) => Some(*k),
                    _ => None,
                },
                _ => None,
            };
            let op = match (f.name.as_str(), call.args.len()) {
                ("get_operand", 2) => lit_u32(1).map(GetterOp::Operand),
                ("get_operand_type", 2) => lit_u32(1).map(GetterOp::OperandType),
                ("get_result_type", 1) => Some(GetterOp::ResultType),
                ("get_block_operand", 2) => lit_u32(1).map(GetterOp::BlockOperand),
                ("get_successor", 2) => lit_u32(1).map(GetterOp::Successor),
                ("is_unconditional", 1) => Some(GetterOp::IsUnconditional),
                ("get_condition", 1) => Some(GetterOp::Condition),
                ("is_void_return", 1) => Some(GetterOp::IsVoidReturn),
                ("get_return_value", 1) => Some(GetterOp::ReturnValue),
                ("get_default_dest", 1) => Some(GetterOp::DefaultDest),
                ("get_cases", 1) => Some(GetterOp::Cases),
                ("get_address", 1) => Some(GetterOp::Address),
                ("get_destinations", 1) => Some(GetterOp::Destinations),
                ("get_called_value" | "get_called_operand", 1) => Some(GetterOp::Callee),
                ("get_called_function", 1) => Some(GetterOp::CalledFunction),
                ("get_arguments", 1) => Some(GetterOp::Arguments),
                ("get_callee_type", 1) => Some(GetterOp::CalleeType),
                ("get_normal_dest", 1) => Some(GetterOp::NormalDest),
                ("get_unwind_dest", 1) => Some(GetterOp::UnwindDest),
                ("get_fallthrough_dest", 1) => Some(GetterOp::FallthroughDest),
                ("get_indirect_dests", 1) => Some(GetterOp::IndirectDests),
                ("is_tail_call", 1) => Some(GetterOp::IsTailCall),
                ("is_indirect_call", 1) => Some(GetterOp::IsIndirectCall),
                ("get_predicate", 1) => Some(GetterOp::IntPredicateOf),
                ("get_float_predicate", 1) => Some(GetterOp::FloatPredicateOf),
                ("get_lhs", 1) => Some(GetterOp::Lhs),
                ("get_rhs", 1) => Some(GetterOp::Rhs),
                ("get_allocated_type", 1) => Some(GetterOp::AllocatedType),
                // The registered closure captures its operand index: 1 for
                // stores, 0 for loads/GEPs/atomics. Well-typedness pins the
                // component instance to this kind, so the kind decides.
                ("get_pointer_operand", 1) => {
                    Some(GetterOp::PointerOperand(u32::from(kind == Opcode::Store)))
                }
                ("is_volatile", 1) => Some(GetterOp::IsVolatile),
                ("get_value_operand", 1) => Some(GetterOp::ValueOperand),
                ("get_source_element_type", 1) => Some(GetterOp::SourceElementType),
                ("get_indices", 1) => Some(GetterOp::GepIndices),
                ("is_inbounds", 1) => Some(GetterOp::IsInbounds),
                ("get_ordering", 1) => Some(GetterOp::OrderingOf),
                ("get_rmw_operation", 1) => Some(GetterOp::RmwOperation),
                ("get_index_path", 1) => Some(GetterOp::IndexPath),
                ("get_shuffle_mask", 1) => Some(GetterOp::ShuffleMask),
                ("get_incoming", 1) => Some(GetterOp::Incoming),
                ("is_cleanup", 1) => Some(GetterOp::IsCleanup),
                ("get_handlers", 1) => Some(GetterOp::Handlers),
                ("get_dest", 1) => Some(GetterOp::Dest),
                _ => None,
            };
            match op {
                Some(g) => StepOp::Getter(g),
                None => generic(),
            }
        }
        ApiKind::Builder => match bind_build(f.name.as_str(), &call.args) {
            Some(b) => StepOp::Build(b),
            None => generic(),
        },
        _ => generic(),
    }
}

/// Binds a builder call to its micro-op by name and arity (arity separates
/// the pre/post-9.0 signatures of `create_call`/`create_load`/`create_gep`).
/// Builders the micro-op catalog does not cover (invoke, atomics, vector
/// and aggregate ops, exception handling) return `None` and stay on the
/// generic pre-resolved [`ApiFn`] path.
fn bind_build(name: &str, a: &[Reg]) -> Option<BuildOp> {
    use BuildOp as B;
    use Opcode::*;
    Some(match (name, a.len()) {
        ("create_ret", 1) => B::Ret(a[0]),
        ("create_ret_void", 0) => B::RetVoid,
        ("create_br", 1) => B::Br(a[0]),
        ("create_cond_br", 3) => B::CondBr(a[0], a[1], a[2]),
        ("create_switch", 3) => B::Switch(a[0], a[1], a[2]),
        ("create_call", 2) => B::CallImplicit {
            callee: a[0],
            args: ListArg::Reg(a[1]),
        },
        ("create_call", 3) => B::CallExplicit {
            fnty: a[0],
            callee: a[1],
            args: ListArg::Reg(a[2]),
        },
        ("create_unreachable", 0) => B::Unreachable,
        ("create_fneg", 1) => B::FNeg(a[0]),
        ("create_alloca", 1) => B::Alloca(a[0]),
        ("create_load", 2) => B::LoadExplicit {
            ty: a[0],
            ptr: a[1],
        },
        ("create_load", 1) => B::LoadImplicit { ptr: a[0] },
        ("create_store", 2) => B::Store { v: a[0], p: a[1] },
        ("create_gep", 3) => B::GepExplicit {
            ty: a[0],
            base: a[1],
            idx: ListArg::Reg(a[2]),
        },
        ("create_gep", 2) => B::GepImplicit {
            base: a[0],
            idx: ListArg::Reg(a[1]),
        },
        ("create_icmp", 3) => B::ICmp {
            pred: a[0],
            a: a[1],
            b: a[2],
        },
        ("create_fcmp", 3) => B::FCmp {
            pred: a[0],
            a: a[1],
            b: a[2],
        },
        ("create_phi", 2) => B::Phi {
            ty: a[0],
            pairs: a[1],
        },
        ("create_select", 3) => B::Select {
            c: a[0],
            t: a[1],
            f: a[2],
        },
        ("create_freeze", 1) => B::Freeze(a[0]),
        _ => {
            let stem = name.strip_prefix("create_")?;
            let op = Opcode::ALL.iter().copied().find(|o| o.name() == stem)?;
            match (op, a.len()) {
                (
                    Add | FAdd | Sub | FSub | Mul | FMul | UDiv | SDiv | FDiv | URem | SRem | FRem
                    | Shl | LShr | AShr | And | Or | Xor,
                    2,
                ) => B::Bin {
                    op,
                    a: a[0],
                    b: a[1],
                },
                (
                    Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
                    | PtrToInt | IntToPtr | BitCast | AddrSpaceCast,
                    2,
                ) => B::Cast {
                    op,
                    v: a[0],
                    ty: a[1],
                },
                _ => return None,
            }
        }
    })
}

/// Appends `r`'s register references (if any) to `out`.
fn step_regs(step: &StepOp, out: &mut Vec<Reg>) {
    match step {
        StepOp::Lit(_) | StepOp::Getter(_) => {}
        StepOp::TranslateValue(r)
        | StepOp::TranslateBlock(r)
        | StepOp::TranslateType(r)
        | StepOp::TranslateValues(r)
        | StepOp::TranslateBlocks(r)
        | StepOp::TranslateCases(r)
        | StepOp::TranslateIncoming(r) => out.push(*r),
        StepOp::Call { args, .. } => out.extend(args.iter().copied()),
        StepOp::Build(b) => {
            use BuildOp as B;
            let list = |l: &ListArg, out: &mut Vec<Reg>| {
                if let ListArg::Reg(r) = l {
                    out.push(*r);
                }
            };
            match b {
                B::RetVoid | B::Unreachable => {}
                B::Ret(r) | B::Br(r) | B::FNeg(r) | B::Alloca(r) | B::Freeze(r) => out.push(*r),
                B::CondBr(a, b, c) | B::Switch(a, b, c) => {
                    out.extend([*a, *b]);
                    out.push(*c);
                }
                B::CallImplicit { callee, args } => {
                    out.push(*callee);
                    list(args, out);
                }
                B::CallExplicit { fnty, callee, args } => {
                    out.extend([*fnty, *callee]);
                    list(args, out);
                }
                B::Bin { a, b, .. } | B::Cast { op: _, v: a, ty: b } | B::Store { v: a, p: b } => {
                    out.extend([*a, *b])
                }
                B::LoadExplicit { ty: a, ptr: b } => out.extend([*a, *b]),
                B::LoadImplicit { ptr } => out.push(*ptr),
                B::GepExplicit { ty, base, idx } => {
                    out.extend([*ty, *base]);
                    list(idx, out);
                }
                B::GepImplicit { base, idx } => {
                    out.push(*base);
                    list(idx, out);
                }
                B::ICmp { pred, a, b } | B::FCmp { pred, a, b } => out.extend([*pred, *a, *b]),
                B::Phi { ty, pairs } => out.extend([*ty, *pairs]),
                B::Select { c, t, f } => out.extend([*c, *t, *f]),
            }
        }
    }
}

/// The list-fusion peephole. When the arm ends in a builder whose list
/// argument is produced by a `Getter(Arguments|GepIndices)` +
/// `translate_values` pair used nowhere else, the pair is collapsed into
/// the builder ([`ListArg::Fused`]) and its steps become inert literals
/// (registers keep their indices).
///
/// Soundness: the getter is a pure, infallible source read, so executing it
/// at build time is unobservable. Moving the `translate_values` later is
/// safe only if no step between it and the builder translates or interns —
/// `translate_value` creates target globals/types on demand, so reordering
/// across another translating step could renumber them. The peephole
/// therefore requires every intervening step to be a literal or a
/// non-interning getter. Within the builder, fused translation runs
/// *before* result-type inference (`callee_fn_type` / `gep_result`),
/// preserving both error precedence and target-table interning order.
fn fuse_lists(steps: &mut [StepOp]) {
    let Some(bi) = steps.len().checked_sub(1) else {
        return;
    };
    let (j, fused) = match &steps[bi] {
        StepOp::Build(
            BuildOp::CallImplicit {
                args: ListArg::Reg(Reg::Step(j)),
                ..
            }
            | BuildOp::CallExplicit {
                args: ListArg::Reg(Reg::Step(j)),
                ..
            },
        ) => (*j, FusedList::CallArgs),
        StepOp::Build(
            BuildOp::GepExplicit {
                idx: ListArg::Reg(Reg::Step(j)),
                ..
            }
            | BuildOp::GepImplicit {
                idx: ListArg::Reg(Reg::Step(j)),
                ..
            },
        ) => (*j, FusedList::GepIndices),
        _ => return,
    };
    let i = match steps.get(j) {
        Some(StepOp::TranslateValues(Reg::Step(i))) => *i,
        _ => return,
    };
    let getter_ok = matches!(
        (steps.get(i), fused),
        (
            Some(StepOp::Getter(GetterOp::Arguments)),
            FusedList::CallArgs
        ) | (
            Some(StepOp::Getter(GetterOp::GepIndices)),
            FusedList::GepIndices
        )
    );
    if !getter_ok {
        return;
    }
    // Both intermediate registers must be consumed exactly once (by the
    // chain itself).
    let mut refs = Vec::new();
    for s in steps.iter() {
        step_regs(s, &mut refs);
    }
    let uses = |k: usize| {
        refs.iter()
            .filter(|r| matches!(r, Reg::Step(s) if *s == k))
            .count()
    };
    if uses(i) != 1 || uses(j) != 1 {
        return;
    }
    // No translating/interning step may sit between the translate and the
    // builder.
    let pure = steps[j + 1..bi].iter().all(|s| {
        matches!(s, StepOp::Lit(_))
            || matches!(s, StepOp::Getter(g) if !matches!(g, GetterOp::CalleeType))
    });
    if !pure {
        return;
    }
    steps[i] = StepOp::Lit(ApiValue::Bool(false));
    steps[j] = StepOp::Lit(ApiValue::Bool(false));
    if let StepOp::Build(b) = &mut steps[bi] {
        match b {
            BuildOp::CallImplicit { args, .. } | BuildOp::CallExplicit { args, .. } => {
                *args = ListArg::Fused(fused);
            }
            BuildOp::GepExplicit { idx, .. } | BuildOp::GepImplicit { idx, .. } => {
                *idx = ListArg::Fused(fused);
            }
            _ => {}
        }
    }
}

// ---- Mirror rewrite templates ----------------------------------------------
//
// The mirror driver's fast form. In mirror mode every value, block, and
// type translation is identity, which collapses most compiled arms into a
// direct "rewrite the instruction" recipe: fetch these operands, run these
// checks, emit this instruction shape. The recipe — a [`MirrorTmpl`] — is
// derived once at lower time by symbolically executing the arm's bound
// steps under the mirror-mode semantics, so executing it skips the step
// machine (no `ApiValue` traffic, no scratch registers) entirely.
//
// Soundness splits into two one-sided obligations:
//
// * **Success path**: a template only exists when the symbolic walk proved
//   every register feeding the final builder, and its runtime replicates
//   the builder's exact result construction — so when all checks pass, the
//   emitted instruction is byte-identical to the stream's by construction.
// * **Failure path**: the template never produces an error of its own; any
//   failed check returns `None`, the mirror pass aborts with the module
//   pristine, and the push driver re-runs from scratch — reproducing the
//   stream tier's exact error (or result). Bailing is therefore always
//   sound, merely slow; the derivation only has to be *conservative*,
//   never complete.
//
// The one derivation invariant beyond register matching: every fallible
// step (getters, translates) must feed the final builder. A checked-but-
// unused step could fail in the stream where the template — which only
// runs checks for the values it uses — would succeed; such arms keep the
// stream path.

/// How a template fetches one already-translated (identity) value off the
/// source instruction, with the same checks its getter + `translate_value`
/// chain performs. Any failure is a bail, not an error.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TmplVal {
    /// `Getter(Operand(i))`: bounds-checked, rejects block labels.
    Operand(u32),
    /// `Getter(PointerOperand(i))`: bounds-checked only.
    PointerOperand(u32),
    /// Fixed-index getters (`Lhs`, `Rhs`, `ValueOperand`) that index
    /// unchecked in the stream (a miss panics there); the template bails
    /// instead and lets the push-driver fallback reproduce the panic.
    OperandUnchecked(u32),
    /// `Getter(ReturnValue)`: first operand, required.
    ReturnValue,
    /// `Getter(Callee)`: the call's callee, required.
    Callee,
    /// `Getter(Condition)`: first operand, rejected on unconditional
    /// branches.
    Condition,
}

/// How a template fetches a block reference (identity-translated).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TmplBlock {
    /// `Getter(Successor(i))`: bounds-checked successor.
    Successor(u32),
}

/// A derived rewrite recipe for one arm under mirror-mode semantics: which
/// operands to fetch and which instruction shape to emit. Mirrors the
/// corresponding [`BuildOp`] runtime exactly on success; bails to the
/// whole-module fallback on any failed check.
#[derive(Debug, Clone)]
pub(crate) enum MirrorTmpl {
    Ret(TmplVal),
    RetVoid,
    Br(TmplBlock),
    CondBr(TmplVal, TmplBlock, TmplBlock),
    Unreachable,
    Bin {
        op: Opcode,
        a: TmplVal,
        b: TmplVal,
    },
    /// Cast whose target type register carried `translate_type(result
    /// type)` — identity in mirror mode, so the new type *is* `inst.ty`.
    Cast {
        op: Opcode,
        v: TmplVal,
    },
    LoadImplicit {
        ptr: TmplVal,
    },
    /// Explicit load whose type register carried the (identity-translated)
    /// result type.
    LoadExplicit {
        ptr: TmplVal,
    },
    Store {
        v: TmplVal,
        p: TmplVal,
    },
    /// Implicit call with the fused argument list (arguments translate —
    /// identity — straight into the operand vector).
    CallImplicit {
        callee: TmplVal,
    },
    /// Implicit GEP with the fused index list.
    GepImplicit {
        base: TmplVal,
    },
    ICmp {
        a: TmplVal,
        b: TmplVal,
    },
    FCmp {
        a: TmplVal,
        b: TmplVal,
    },
    Select {
        c: TmplVal,
        t: TmplVal,
        f: TmplVal,
    },
    FNeg(TmplVal),
    Freeze(TmplVal),
}

/// The symbolic value of one step register under mirror-mode execution.
#[derive(Debug, Clone, Copy)]
enum Sym {
    /// A literal (constant provider or fusion placeholder): inert, cannot
    /// fail, allowed to go unused.
    Lit,
    /// `SrcValue` fetched per the recipe.
    SrcVal(TmplVal),
    /// The above after identity `translate_value`.
    TgtVal(TmplVal),
    /// `SrcType(inst.ty)` from `Getter(ResultType)`.
    SrcResultTy,
    /// The above after identity `translate_type`.
    TgtResultTy,
    /// `SrcBlock` fetched per the recipe.
    SrcBlock(TmplBlock),
    /// The above after identity `translate_block`.
    TgtBlock(TmplBlock),
    /// `Getter(IntPredicateOf)` / `Getter(FloatPredicateOf)`.
    IntPred,
    FloatPred,
}

/// Symbolically executes one bound arm under mirror-mode semantics and
/// derives its rewrite template, or `None` when any step or builder
/// argument falls outside the modeled fragment (the arm then keeps the
/// stream path, which handles everything).
fn derive_tmpl(steps: &[StepOp]) -> Option<MirrorTmpl> {
    let n = steps.len();
    let build = match steps.last() {
        Some(StepOp::Build(b)) => b,
        _ => return None,
    };
    // Symbolic pass over everything but the final builder.
    let mut syms: Vec<Sym> = Vec::with_capacity(n - 1);
    for step in &steps[..n - 1] {
        let resolve = |r: &Reg| match r {
            Reg::Step(j) => syms.get(*j).copied(),
            Reg::Input => None,
        };
        let sym = match step {
            StepOp::Lit(_) => Sym::Lit,
            StepOp::Getter(g) => match g {
                GetterOp::Operand(i) => Sym::SrcVal(TmplVal::Operand(*i)),
                GetterOp::PointerOperand(i) => Sym::SrcVal(TmplVal::PointerOperand(*i)),
                GetterOp::ValueOperand => Sym::SrcVal(TmplVal::OperandUnchecked(0)),
                GetterOp::Lhs => Sym::SrcVal(TmplVal::OperandUnchecked(0)),
                GetterOp::Rhs => Sym::SrcVal(TmplVal::OperandUnchecked(1)),
                GetterOp::ReturnValue => Sym::SrcVal(TmplVal::ReturnValue),
                GetterOp::Callee => Sym::SrcVal(TmplVal::Callee),
                GetterOp::Condition => Sym::SrcVal(TmplVal::Condition),
                GetterOp::ResultType => Sym::SrcResultTy,
                GetterOp::Successor(i) => Sym::SrcBlock(TmplBlock::Successor(*i)),
                GetterOp::IntPredicateOf => Sym::IntPred,
                GetterOp::FloatPredicateOf => Sym::FloatPred,
                _ => return None,
            },
            StepOp::TranslateValue(r) => match resolve(r)? {
                Sym::SrcVal(v) => Sym::TgtVal(v),
                _ => return None,
            },
            StepOp::TranslateBlock(r) => match resolve(r)? {
                Sym::SrcBlock(b) => Sym::TgtBlock(b),
                _ => return None,
            },
            StepOp::TranslateType(r) => match resolve(r)? {
                Sym::SrcResultTy => Sym::TgtResultTy,
                _ => return None,
            },
            _ => return None,
        };
        syms.push(sym);
    }
    // Fallible-step consumption: every non-literal step must (transitively)
    // feed the builder, or its runtime checks would be skipped.
    let mut used = vec![false; n - 1];
    let mut regs = Vec::new();
    step_regs(&steps[n - 1], &mut regs);
    for r in &regs {
        if let Reg::Step(j) = r {
            used[*j] = true;
        }
    }
    for i in (0..n - 1).rev() {
        if !used[i] {
            continue;
        }
        regs.clear();
        step_regs(&steps[i], &mut regs);
        for r in &regs {
            if let Reg::Step(j) = r {
                used[*j] = true;
            }
        }
    }
    if used
        .iter()
        .zip(&syms)
        .any(|(&u, s)| !u && !matches!(s, Sym::Lit))
    {
        return None;
    }

    // Match the builder's argument registers against the symbolic state.
    let val = |r: &Reg| match r {
        Reg::Step(j) => match syms.get(*j)? {
            Sym::TgtVal(v) => Some(*v),
            _ => None,
        },
        Reg::Input => None,
    };
    let blk = |r: &Reg| match r {
        Reg::Step(j) => match syms.get(*j)? {
            Sym::TgtBlock(b) => Some(*b),
            _ => None,
        },
        Reg::Input => None,
    };
    let result_ty =
        |r: &Reg| matches!(r, Reg::Step(j) if matches!(syms.get(*j), Some(Sym::TgtResultTy)));
    let pred_is = |r: &Reg, want_int: bool| {
        matches!(r, Reg::Step(j) if match syms.get(*j) {
            Some(Sym::IntPred) => want_int,
            Some(Sym::FloatPred) => !want_int,
            _ => false,
        })
    };
    use BuildOp as B;
    use MirrorTmpl as T;
    Some(match build {
        B::Ret(r) => T::Ret(val(r)?),
        B::RetVoid => T::RetVoid,
        B::Br(r) => T::Br(blk(r)?),
        B::CondBr(c, t, f) => T::CondBr(val(c)?, blk(t)?, blk(f)?),
        B::Unreachable => T::Unreachable,
        B::Bin { op, a, b } => T::Bin {
            op: *op,
            a: val(a)?,
            b: val(b)?,
        },
        B::Cast { op, v, ty } if result_ty(ty) => T::Cast {
            op: *op,
            v: val(v)?,
        },
        B::LoadImplicit { ptr } => T::LoadImplicit { ptr: val(ptr)? },
        B::LoadExplicit { ty, ptr } if result_ty(ty) => T::LoadExplicit { ptr: val(ptr)? },
        B::Store { v, p } => T::Store {
            v: val(v)?,
            p: val(p)?,
        },
        B::CallImplicit {
            callee,
            args: ListArg::Fused(FusedList::CallArgs),
        } => T::CallImplicit {
            callee: val(callee)?,
        },
        B::GepImplicit {
            base,
            idx: ListArg::Fused(FusedList::GepIndices),
        } => T::GepImplicit { base: val(base)? },
        B::ICmp { pred, a, b } if pred_is(pred, true) => T::ICmp {
            a: val(a)?,
            b: val(b)?,
        },
        B::FCmp { pred, a, b } if pred_is(pred, false) => T::FCmp {
            a: val(a)?,
            b: val(b)?,
        },
        B::Select { c, t, f } => T::Select {
            c: val(c)?,
            t: val(t)?,
            f: val(f)?,
        },
        B::FNeg(r) => T::FNeg(val(r)?),
        B::Freeze(r) => T::Freeze(val(r)?),
        _ => return None,
    })
}

// ---- Execution environments ------------------------------------------------

/// What the micro-op executor needs from its surroundings: value/block/type
/// translation, side-table queries, and instruction emission. Two
/// monomorphized implementations share every `exec_*` body below —
/// [`TranslationCtx`] (the push mode: translate into a fresh target module)
/// and [`MirrorEnv`] (the in-place mode: the source module *is* the target
/// module, translation is identity, and the single built instruction is
/// captured for a buffered overwrite). Keeping one copy of the getter /
/// builder / step arms is what makes the two modes byte-identical by
/// construction.
pub(crate) trait ExecEnv {
    fn translate_value(&mut self, v: ValueRef) -> ApiResult<ValueRef>;
    fn translate_block(&mut self, b: BlockId) -> ApiResult<BlockId>;
    fn translate_type(&mut self, t: TypeId) -> TypeId;
    fn src_value_type(&self, v: ValueRef) -> Option<TypeId>;
    fn src_func(&self, f: FuncId) -> &Function;
    fn src_asm_ty(&self, a: AsmId) -> TypeId;
    fn src_types(&self) -> &TypeTable;
    fn src_types_mut(&mut self) -> &mut TypeTable;
    fn tgt_value_type(&self, v: ValueRef) -> Option<TypeId>;
    fn tgt_types(&self) -> &TypeTable;
    fn tgt_types_mut(&mut self) -> &mut TypeTable;
    fn tgt_global_ty(&self, g: GlobalId) -> TypeId;
    fn tgt_func_ret(&self, f: FuncId) -> TypeId;
    fn tgt_asm_ty(&self, a: AsmId) -> TypeId;
    fn build(&mut self, inst: Instruction) -> ApiResult<ValueRef>;
    /// Calls a pre-resolved registry function (`PredOp::Slow`,
    /// `StepOp::Call`). Only the push mode supports this; the mirror
    /// driver refuses kinds that need it at lower time.
    fn api_call(&mut self, f: &ApiFn, args: &[ApiValue]) -> ApiResult<ApiValue>;
}

impl ExecEnv for TranslationCtx<'_> {
    fn translate_value(&mut self, v: ValueRef) -> ApiResult<ValueRef> {
        TranslationCtx::translate_value(self, v)
    }
    fn translate_block(&mut self, b: BlockId) -> ApiResult<BlockId> {
        TranslationCtx::translate_block(self, b)
    }
    fn translate_type(&mut self, t: TypeId) -> TypeId {
        TranslationCtx::translate_type(self, t)
    }
    fn src_value_type(&self, v: ValueRef) -> Option<TypeId> {
        TranslationCtx::src_value_type(self, v)
    }
    fn src_func(&self, f: FuncId) -> &Function {
        self.src.func(f)
    }
    fn src_asm_ty(&self, a: AsmId) -> TypeId {
        self.src.asm(a).ty
    }
    fn src_types(&self) -> &TypeTable {
        &self.src_types
    }
    fn src_types_mut(&mut self) -> &mut TypeTable {
        &mut self.src_types
    }
    fn tgt_value_type(&self, v: ValueRef) -> Option<TypeId> {
        TranslationCtx::tgt_value_type(self, v)
    }
    fn tgt_types(&self) -> &TypeTable {
        &self.tgt.types
    }
    fn tgt_types_mut(&mut self) -> &mut TypeTable {
        &mut self.tgt.types
    }
    fn tgt_global_ty(&self, g: GlobalId) -> TypeId {
        self.tgt.global(g).ty
    }
    fn tgt_func_ret(&self, f: FuncId) -> TypeId {
        self.tgt.func(f).ret_ty
    }
    fn tgt_asm_ty(&self, a: AsmId) -> TypeId {
        self.tgt.asm(a).ty
    }
    fn build(&mut self, inst: Instruction) -> ApiResult<ValueRef> {
        TranslationCtx::build(self, inst)
    }
    fn api_call(&mut self, f: &ApiFn, args: &[ApiValue]) -> ApiResult<ApiValue> {
        f.call(self, args)
    }
}

/// The in-place execution environment: the owned request module plays both
/// sides. Value, block, and type translation are identity (ids are
/// preserved because nothing is re-created), side-table queries read the
/// module itself, and [`ExecEnv::build`] captures the one rewritten
/// instruction instead of appending — the mirror driver overwrites the
/// source slot with it after the whole module has translated cleanly.
///
/// Type interning (`get_callee_type`, GEP/cmp result types) appends to the
/// module's own table; that is invisible in written output because the
/// writer prints types structurally and never numbers them, and harmless on
/// abort because unreferenced table entries never print.
struct MirrorEnv<'m> {
    /// Function arena, read-only during the mirror pass (rewrites are
    /// buffered) — which is what lets the current instruction stay
    /// *borrowed* while this env holds the type table mutably: disjoint
    /// fields of the same destructured module, no per-instruction clone.
    funcs: &'m [Function],
    globals: &'m [Global],
    asms: &'m [InlineAsm],
    /// The one mutable piece: shared source/target table, interned into by
    /// `get_callee_type` and result-type inference.
    types: &'m mut TypeTable,
    /// The function being mirrored (element of `funcs`).
    func: &'m Function,
    cur: InstId,
    out: Option<Instruction>,
}

impl ExecEnv for MirrorEnv<'_> {
    fn translate_value(&mut self, v: ValueRef) -> ApiResult<ValueRef> {
        match v {
            ValueRef::Placeholder(_) => {
                Err(ApiError::Type("cannot translate a placeholder".into()))
            }
            v => Ok(v),
        }
    }
    fn translate_block(&mut self, b: BlockId) -> ApiResult<BlockId> {
        Ok(b)
    }
    fn translate_type(&mut self, t: TypeId) -> TypeId {
        t
    }
    fn src_value_type(&self, v: ValueRef) -> Option<TypeId> {
        // `Module::value_type` + the ctx's global case, against the
        // current function.
        match v {
            ValueRef::Global(g) => Some(self.globals[g.index()].ty),
            ValueRef::Inst(i) => Some(self.func.inst(i).ty),
            ValueRef::Arg(a) => self.func.params.get(a as usize).map(|p| p.ty),
            ValueRef::ConstInt { ty, .. }
            | ValueRef::ConstFloat { ty, .. }
            | ValueRef::Null(ty)
            | ValueRef::Undef(ty)
            | ValueRef::ZeroInit(ty) => Some(ty),
            _ => None,
        }
    }
    fn src_func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }
    fn src_asm_ty(&self, a: AsmId) -> TypeId {
        self.asms[a.index()].ty
    }
    fn src_types(&self) -> &TypeTable {
        self.types
    }
    fn src_types_mut(&mut self) -> &mut TypeTable {
        self.types
    }
    fn tgt_value_type(&self, v: ValueRef) -> Option<TypeId> {
        // Source and target are the same module; instructions not yet
        // rewritten still carry the right type (result types are semantic,
        // version differences live in operands/attrs).
        ExecEnv::src_value_type(self, v)
    }
    fn tgt_types(&self) -> &TypeTable {
        self.types
    }
    fn tgt_types_mut(&mut self) -> &mut TypeTable {
        self.types
    }
    fn tgt_global_ty(&self, g: GlobalId) -> TypeId {
        self.globals[g.index()].ty
    }
    fn tgt_func_ret(&self, f: FuncId) -> TypeId {
        self.funcs[f.index()].ret_ty
    }
    fn tgt_asm_ty(&self, a: AsmId) -> TypeId {
        self.asms[a.index()].ty
    }
    fn build(&mut self, inst: Instruction) -> ApiResult<ValueRef> {
        debug_assert!(self.out.is_none(), "mirror arm built twice");
        self.out = Some(inst);
        Ok(ValueRef::Inst(self.cur))
    }
    fn api_call(&mut self, _f: &ApiFn, _args: &[ApiValue]) -> ApiResult<ApiValue> {
        Err(ApiError::Missing(
            "mirror driver cannot call registry functions".into(),
        ))
    }
}

// ---- Mirror template runtime ----------------------------------------------
//
// Executes a derived [`MirrorTmpl`] against the borrowed instruction: the
// same checks and the same result construction as the arm's stream form
// under mirror semantics, minus the step machine. `None` anywhere means
// "bail": the mirror pass aborts and the push driver reproduces the exact
// stream-tier outcome on the pristine module.
//
// The runtime is phrased as free functions over the module's destructured
// pieces (not [`MirrorEnv`] methods) so the commit pass can call it while
// holding the function arena mutably.

/// Fetches one recipe value with its chain's checks (bounds, block
/// rejection, placeholder rejection).
#[inline]
fn tmpl_val(inst: &Instruction, v: TmplVal) -> Option<ValueRef> {
    let r = match v {
        TmplVal::Operand(i) => {
            let v = *inst.operands.get(i as usize)?;
            if v.is_block() {
                return None;
            }
            v
        }
        TmplVal::PointerOperand(i) | TmplVal::OperandUnchecked(i) => {
            *inst.operands.get(i as usize)?
        }
        TmplVal::ReturnValue => *inst.operands.first()?,
        TmplVal::Callee => inst.callee()?,
        TmplVal::Condition => {
            if inst.is_unconditional_branch() {
                return None;
            }
            *inst.operands.first()?
        }
    };
    match r {
        ValueRef::Placeholder(_) => None,
        r => Some(r),
    }
}

/// `b_want_type` under mirror semantics, as an `Option` (`None` bails).
#[inline]
fn tmpl_want_ty(func: &Function, v: ValueRef) -> Option<TypeId> {
    match v {
        ValueRef::Inst(i) => Some(func.inst(i).ty),
        ValueRef::Arg(a) => func.params.get(a as usize).map(|p| p.ty),
        ValueRef::ConstInt { ty, .. }
        | ValueRef::ConstFloat { ty, .. }
        | ValueRef::Null(ty)
        | ValueRef::Undef(ty)
        | ValueRef::ZeroInit(ty) => Some(ty),
        // `Global`/`Func` are rejected by `b_want_type` itself ("address
        // value needs explicit type"); the rest have no table type.
        _ => None,
    }
}

/// `b_fn_ret` as an `Option`.
#[inline]
fn tmpl_fn_ret(types: &TypeTable, ty: TypeId) -> Option<TypeId> {
    match types.get(ty) {
        Type::Func { ret, .. } => Some(*ret),
        _ => None,
    }
}

/// `b_callee_ret` under mirror semantics.
fn tmpl_callee_ret(
    funcs: &[Function],
    globals: &[Global],
    asms: &[InlineAsm],
    types: &TypeTable,
    func: &Function,
    callee: ValueRef,
) -> Option<TypeId> {
    match callee {
        ValueRef::Func(f) => Some(funcs[f.index()].ret_ty),
        ValueRef::InlineAsm(a) => tmpl_fn_ret(types, asms[a.index()].ty),
        other => {
            // The untyped-callee lookup goes through `tgt_value_type`,
            // which *does* resolve globals.
            let ty = match other {
                ValueRef::Global(g) => globals[g.index()].ty,
                v => tmpl_want_ty(func, v)?,
            };
            match types.get(ty) {
                Type::Ptr { pointee, .. } => tmpl_fn_ret(types, *pointee),
                Type::Func { .. } => tmpl_fn_ret(types, ty),
                _ => None,
            }
        }
    }
}

/// `b_cmp_result_ty` under mirror semantics.
fn tmpl_cmp_ty(types: &mut TypeTable, func: &Function, a: ValueRef, b: ValueRef) -> Option<TypeId> {
    let ty = tmpl_want_ty(func, a).or_else(|| tmpl_want_ty(func, b))?;
    let vec_len = match types.get(ty) {
        Type::Vector { len, .. } => Some(*len),
        _ => None,
    };
    Some(match vec_len {
        Some(len) => {
            let i1 = types.i1();
            types.vector(i1, len)
        }
        None => types.i1(),
    })
}

/// Runs one rewrite template, producing the replacement instruction's
/// parts: opcode, result type, attributes, and the operand vector (written
/// into the reusable `ops` buffer). `None` anywhere bails the mirror pass.
#[allow(clippy::too_many_arguments)] // one template, one module cross-section
fn tmpl_parts(
    t: &MirrorTmpl,
    inst: &Instruction,
    func: &Function,
    funcs: &[Function],
    globals: &[Global],
    asms: &[InlineAsm],
    types: &mut TypeTable,
    ops: &mut Vec<ValueRef>,
) -> Option<(Opcode, TypeId, InstAttrs)> {
    use MirrorTmpl as T;
    ops.clear();
    let mut attrs = InstAttrs::default();
    let (op, ty) = match t {
        T::Ret(r) => {
            ops.push(tmpl_val(inst, *r)?);
            (Opcode::Ret, types.void())
        }
        T::RetVoid => (Opcode::Ret, types.void()),
        T::Br(TmplBlock::Successor(i)) => {
            let bl = *inst.successors().get(*i as usize)?;
            ops.push(ValueRef::Block(bl));
            (Opcode::Br, types.void())
        }
        T::CondBr(c, TmplBlock::Successor(ti), TmplBlock::Successor(fi)) => {
            let c = tmpl_val(inst, *c)?;
            let succs = inst.successors();
            let tb = *succs.get(*ti as usize)?;
            let fb = *succs.get(*fi as usize)?;
            ops.extend([c, ValueRef::Block(tb), ValueRef::Block(fb)]);
            (Opcode::Br, types.void())
        }
        T::Unreachable => (Opcode::Unreachable, types.void()),
        T::Bin { op, a, b } => {
            let av = tmpl_val(inst, *a)?;
            let bv = tmpl_val(inst, *b)?;
            let ty = tmpl_want_ty(func, av).or_else(|| tmpl_want_ty(func, bv))?;
            ops.extend([av, bv]);
            (*op, ty)
        }
        T::Cast { op, v } => {
            ops.push(tmpl_val(inst, *v)?);
            (*op, inst.ty)
        }
        T::LoadImplicit { ptr } => {
            let p = tmpl_val(inst, *ptr)?;
            let pty = match p {
                ValueRef::Global(g) => {
                    let t = globals[g.index()].ty;
                    types.ptr(t)
                }
                _ => tmpl_want_ty(func, p)?,
            };
            let ty = types.pointee(pty)?;
            attrs.gep_source_ty = Some(ty);
            ops.push(p);
            (Opcode::Load, ty)
        }
        T::LoadExplicit { ptr } => {
            ops.push(tmpl_val(inst, *ptr)?);
            attrs.gep_source_ty = Some(inst.ty);
            (Opcode::Load, inst.ty)
        }
        T::Store { v, p } => {
            let v = tmpl_val(inst, *v)?;
            let p = tmpl_val(inst, *p)?;
            ops.extend([v, p]);
            (Opcode::Store, types.void())
        }
        T::CallImplicit { callee } => {
            let c = tmpl_val(inst, *callee)?;
            ops.push(c);
            for &a in inst.call_args() {
                if matches!(a, ValueRef::Placeholder(_)) {
                    return None;
                }
                ops.push(a);
            }
            let ret = tmpl_callee_ret(funcs, globals, asms, types, func, c)?;
            attrs.num_args = (ops.len() - 1) as u32;
            attrs.callee_ty = None;
            (Opcode::Call, ret)
        }
        T::GepImplicit { base } => {
            let b = tmpl_val(inst, *base)?;
            ops.push(b);
            for &a in inst.operands.get(1..)? {
                if matches!(a, ValueRef::Placeholder(_)) {
                    return None;
                }
                ops.push(a);
            }
            let pty = match b {
                ValueRef::Global(g) => {
                    let t = globals[g.index()].ty;
                    types.ptr(t)
                }
                _ => tmpl_want_ty(func, b)?,
            };
            let src_ty = types.pointee(pty)?;
            // `b_gep_result`: walk the indices (minus the leading one)
            // through the pointee structure.
            let mut cur = src_ty;
            for idx in ops[1..].iter().skip(1) {
                cur = match types.get(cur) {
                    Type::Array { elem, .. } | Type::Vector { elem, .. } => *elem,
                    Type::Struct { fields } => *fields.get(idx.as_int()? as usize)?,
                    _ => return None,
                };
            }
            let rty = types.ptr(cur);
            attrs.gep_source_ty = Some(src_ty);
            (Opcode::GetElementPtr, rty)
        }
        T::ICmp { a, b } => {
            let pred = inst.attrs.int_pred?;
            let av = tmpl_val(inst, *a)?;
            let bv = tmpl_val(inst, *b)?;
            let rty = tmpl_cmp_ty(types, func, av, bv)?;
            attrs.int_pred = Some(pred);
            ops.extend([av, bv]);
            (Opcode::ICmp, rty)
        }
        T::FCmp { a, b } => {
            let pred = inst.attrs.float_pred?;
            let av = tmpl_val(inst, *a)?;
            let bv = tmpl_val(inst, *b)?;
            let rty = tmpl_cmp_ty(types, func, av, bv)?;
            attrs.float_pred = Some(pred);
            ops.extend([av, bv]);
            (Opcode::FCmp, rty)
        }
        T::Select { c, t, f } => {
            let c = tmpl_val(inst, *c)?;
            let t = tmpl_val(inst, *t)?;
            let f = tmpl_val(inst, *f)?;
            let ty = tmpl_want_ty(func, t).or_else(|| tmpl_want_ty(func, f))?;
            ops.extend([c, t, f]);
            (Opcode::Select, ty)
        }
        T::FNeg(r) => {
            let v = tmpl_val(inst, *r)?;
            let ty = tmpl_want_ty(func, v)?;
            ops.push(v);
            (Opcode::FNeg, ty)
        }
        T::Freeze(r) => {
            let v = tmpl_val(inst, *r)?;
            let ty = tmpl_want_ty(func, v)?;
            ops.push(v);
            (Opcode::Freeze, ty)
        }
    };
    Some((op, ty, attrs))
}

impl MirrorEnv<'_> {
    /// Runs one rewrite template through [`tmpl_parts`], assembling the
    /// replacement instruction (the buffered driver's form).
    fn exec_tmpl(&mut self, t: &MirrorTmpl, inst: &Instruction) -> Option<Instruction> {
        let mut ops = Vec::new();
        let (op, ty, attrs) = tmpl_parts(
            t,
            inst,
            self.func,
            self.funcs,
            self.globals,
            self.asms,
            self.types,
            &mut ops,
        )?;
        let mut out = Instruction::new(op, ty, ops);
        out.attrs = attrs;
        Some(out)
    }
}

/// Executes one getter micro-op against the borrowed instruction. Bodies
/// and error strings mirror `siro_api`'s getter closures one-to-one.
fn exec_getter<E: ExecEnv>(op: &GetterOp, ctx: &mut E, inst: &Instruction) -> ApiResult<ApiValue> {
    use GetterOp::*;
    const S: Side = Side::Source;
    Ok(match op {
        Operand(i) => {
            let i = *i as usize;
            let v = *inst
                .operands
                .get(i)
                .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
            if v.is_block() {
                return Err(ApiError::Type("operand is a block label".into()));
            }
            ApiValue::SrcValue(v)
        }
        OperandType(i) => {
            let i = *i as usize;
            let v = *inst
                .operands
                .get(i)
                .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
            ctx.src_value_type(v)
                .map(ApiValue::SrcType)
                .ok_or_else(|| ApiError::Type("operand has no table type".into()))?
        }
        ResultType => ApiValue::SrcType(inst.ty),
        BlockOperand(i) => {
            let i = *i as usize;
            let v = *inst
                .operands
                .get(i)
                .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
            v.as_block()
                .map(ApiValue::SrcBlock)
                .ok_or_else(|| ApiError::Type("operand is not a block".into()))?
        }
        Successor(i) => {
            let i = *i as usize;
            inst.successors()
                .get(i)
                .copied()
                .map(ApiValue::SrcBlock)
                .ok_or_else(|| ApiError::OutOfRange(format!("successor {i}")))?
        }
        IsUnconditional => ApiValue::Bool(inst.is_unconditional_branch()),
        Condition => {
            if inst.is_unconditional_branch() {
                return Err(ApiError::WrongSubKind(
                    "unconditional branch has no condition".into(),
                ));
            }
            ApiValue::SrcValue(inst.operands[0])
        }
        IsVoidReturn => ApiValue::Bool(inst.is_void_return()),
        ReturnValue => inst
            .operands
            .first()
            .copied()
            .map(ApiValue::SrcValue)
            .ok_or_else(|| ApiError::WrongSubKind("void return has no value".into()))?,
        DefaultDest => inst
            .operands
            .get(1)
            .and_then(|v| v.as_block())
            .map(ApiValue::SrcBlock)
            .ok_or_else(|| ApiError::Type("switch default missing".into()))?,
        Cases => ApiValue::Cases(S, inst.switch_cases()),
        Address => ApiValue::SrcValue(inst.operands[0]),
        Destinations => ApiValue::Blocks(S, inst.successors()),
        Callee => inst
            .callee()
            .map(ApiValue::SrcValue)
            .ok_or_else(|| ApiError::Type("no callee".into()))?,
        CalledFunction => match inst.callee() {
            Some(v @ ValueRef::Func(_)) => ApiValue::SrcValue(v),
            _ => return Err(ApiError::WrongSubKind("indirect call".into())),
        },
        Arguments => ApiValue::Values(S, inst.call_args().to_vec()),
        CalleeType => exec_callee_type(ctx, inst)?,
        NormalDest => inst
            .successors()
            .first()
            .copied()
            .map(ApiValue::SrcBlock)
            .ok_or_else(|| ApiError::Type("invoke without dests".into()))?,
        UnwindDest => inst
            .successors()
            .get(1)
            .copied()
            .map(ApiValue::SrcBlock)
            .ok_or_else(|| ApiError::Type("invoke without dests".into()))?,
        FallthroughDest => inst
            .successors()
            .first()
            .copied()
            .map(ApiValue::SrcBlock)
            .ok_or_else(|| ApiError::Type("callbr without dests".into()))?,
        IndirectDests => ApiValue::Blocks(S, inst.successors()[1..].to_vec()),
        IsTailCall => ApiValue::Bool(inst.attrs.tail_call),
        IsIndirectCall => ApiValue::Bool(!matches!(
            inst.callee(),
            Some(ValueRef::Func(_) | ValueRef::InlineAsm(_))
        )),
        IntPredicateOf => inst
            .attrs
            .int_pred
            .map(ApiValue::IntPred)
            .ok_or_else(|| ApiError::Type("icmp without predicate".into()))?,
        FloatPredicateOf => inst
            .attrs
            .float_pred
            .map(ApiValue::FloatPred)
            .ok_or_else(|| ApiError::Type("fcmp without predicate".into()))?,
        Lhs => ApiValue::SrcValue(inst.operands[0]),
        Rhs => ApiValue::SrcValue(inst.operands[1]),
        AllocatedType => inst
            .attrs
            .alloc_ty
            .map(ApiValue::SrcType)
            .ok_or_else(|| ApiError::Type("alloca without type".into()))?,
        PointerOperand(i) => inst
            .operands
            .get(*i as usize)
            .copied()
            .map(ApiValue::SrcValue)
            .ok_or_else(|| ApiError::OutOfRange("pointer operand".into()))?,
        IsVolatile => ApiValue::Bool(inst.attrs.volatile),
        ValueOperand => ApiValue::SrcValue(inst.operands[0]),
        SourceElementType => inst
            .attrs
            .gep_source_ty
            .map(ApiValue::SrcType)
            .ok_or_else(|| ApiError::Type("gep without source type".into()))?,
        GepIndices => ApiValue::Values(S, inst.operands[1..].to_vec()),
        IsInbounds => ApiValue::Bool(inst.attrs.inbounds),
        OrderingOf => ApiValue::Ordering(
            inst.attrs
                .ordering
                .unwrap_or(siro_ir::AtomicOrdering::SeqCst),
        ),
        RmwOperation => inst
            .attrs
            .rmw_op
            .map(ApiValue::RmwOp)
            .ok_or_else(|| ApiError::Type("atomicrmw without op".into()))?,
        IndexPath => ApiValue::Indices(inst.attrs.indices.clone()),
        ShuffleMask => ApiValue::Indices(inst.attrs.indices.clone()),
        Incoming => ApiValue::Phis(S, inst.phi_incoming()),
        IsCleanup => ApiValue::Bool(inst.attrs.is_cleanup),
        Handlers => ApiValue::Blocks(S, inst.successors()),
        Dest => inst
            .operands
            .first()
            .and_then(|v| v.as_block())
            .map(ApiValue::SrcBlock)
            .ok_or_else(|| ApiError::Type("missing destination".into()))?,
    })
}

/// `get_callee_type`, the one non-trivial getter: rebuilds function types
/// through opaque pointers, interning into the scratch source type table —
/// replicated from the registry closure verbatim.
fn exec_callee_type<E: ExecEnv>(ctx: &mut E, inst: &Instruction) -> ApiResult<ApiValue> {
    match inst.callee() {
        Some(ValueRef::Func(fid)) => {
            let f = ctx.src_func(fid);
            let (ret, params, varargs) = (
                f.ret_ty,
                f.params.iter().map(|p| p.ty).collect::<Vec<_>>(),
                f.varargs,
            );
            let ty = if varargs {
                ctx.src_types_mut().func_varargs(ret, params)
            } else {
                ctx.src_types_mut().func(ret, params)
            };
            Ok(ApiValue::SrcType(ty))
        }
        Some(ValueRef::InlineAsm(a)) => Ok(ApiValue::SrcType(ctx.src_asm_ty(a))),
        Some(v) => {
            let ty = ctx
                .src_value_type(v)
                .ok_or_else(|| ApiError::Type("untyped callee".into()))?;
            // Copy the shape out before touching the env again (the match
            // scrutinee would otherwise hold the table borrow).
            let pointee = match ctx.src_types().get(ty) {
                Type::Ptr { pointee, .. } => Some(*pointee),
                Type::Func { .. } => return Ok(ApiValue::SrcType(ty)),
                _ => None,
            };
            let Some(pointee) = pointee else {
                return Err(ApiError::Type("callee is not a function pointer".into()));
            };
            if matches!(ctx.src_types().get(pointee), Type::Func { .. }) {
                return Ok(ApiValue::SrcType(pointee));
            }
            let params = inst
                .call_args()
                .iter()
                .map(|&a| {
                    ctx.src_value_type(a)
                        .ok_or_else(|| ApiError::Type("untyped call argument".into()))
                })
                .collect::<ApiResult<Vec<_>>>()?;
            Ok(ApiValue::SrcType(ctx.src_types_mut().func(inst.ty, params)))
        }
        None => Err(ApiError::Type("no callee".into())),
    }
}

/// Resolves a register to the value it names.
#[inline]
fn reg_ref<'a>(r: Reg, results: &'a [ApiValue], input: &'a ApiValue) -> &'a ApiValue {
    match r {
        Reg::Input => input,
        Reg::Step(i) => &results[i],
    }
}

#[inline]
fn type_err(msg: &str) -> TranslateError {
    TranslateError::Api(ApiError::Type(msg.into()))
}

// ---- Builder micro-op execution -------------------------------------------
//
// These helpers replicate `siro_api`'s builder argument extractors and
// result-type inference one-to-one (same match structure, same error
// strings). The `i` parameter is the argument's position in the builder's
// signature, so positional error messages match the interpreter's.

#[inline]
fn b_value(r: Reg, i: usize, results: &[ApiValue], input: &ApiValue) -> ApiResult<ValueRef> {
    match reg_ref(r, results, input) {
        ApiValue::TgtValue(v) => Ok(*v),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target value, got {:?}",
            Some(other)
        ))),
    }
}

#[inline]
fn b_block(r: Reg, i: usize, results: &[ApiValue], input: &ApiValue) -> ApiResult<BlockId> {
    match reg_ref(r, results, input) {
        ApiValue::TgtBlock(b) => Ok(*b),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target block, got {:?}",
            Some(other)
        ))),
    }
}

#[inline]
fn b_type(r: Reg, i: usize, results: &[ApiValue], input: &ApiValue) -> ApiResult<TypeId> {
    match reg_ref(r, results, input) {
        ApiValue::TgtType(t) => Ok(*t),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target type, got {:?}",
            Some(other)
        ))),
    }
}

#[inline]
fn b_values<'a>(
    r: Reg,
    i: usize,
    results: &'a [ApiValue],
    input: &'a ApiValue,
) -> ApiResult<&'a [ValueRef]> {
    match reg_ref(r, results, input) {
        ApiValue::Values(Side::Target, vs) => Ok(vs.as_slice()),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target value list, got {:?}",
            Some(other)
        ))),
    }
}

/// Assembles a call's `[callee, args...]` operand vector. A fused argument
/// list translates the source call arguments directly into the vector.
fn call_ops<E: ExecEnv>(
    ctx: &mut E,
    inst: &Instruction,
    callee: ValueRef,
    args: &ListArg,
    i: usize,
    results: &[ApiValue],
    input: &ApiValue,
) -> ApiResult<Vec<ValueRef>> {
    Ok(match args {
        ListArg::Reg(r) => {
            let vs = b_values(*r, i, results, input)?;
            let mut ops = Vec::with_capacity(1 + vs.len());
            ops.push(callee);
            ops.extend_from_slice(vs);
            ops
        }
        ListArg::Fused(_) => {
            let src = inst.call_args();
            let mut ops = Vec::with_capacity(1 + src.len());
            ops.push(callee);
            for &a in src {
                ops.push(ctx.translate_value(a)?);
            }
            ops
        }
    })
}

/// Assembles a GEP's `[base, indices...]` operand vector. A fused index
/// list translates the source index operands directly into the vector.
fn gep_ops<E: ExecEnv>(
    ctx: &mut E,
    inst: &Instruction,
    base: ValueRef,
    idx: &ListArg,
    i: usize,
    results: &[ApiValue],
    input: &ApiValue,
) -> ApiResult<Vec<ValueRef>> {
    Ok(match idx {
        ListArg::Reg(r) => {
            let vs = b_values(*r, i, results, input)?;
            let mut ops = Vec::with_capacity(1 + vs.len());
            ops.push(base);
            ops.extend_from_slice(vs);
            ops
        }
        ListArg::Fused(_) => {
            let src = &inst.operands[1..];
            let mut ops = Vec::with_capacity(1 + src.len());
            ops.push(base);
            for &a in src {
                ops.push(ctx.translate_value(a)?);
            }
            ops
        }
    })
}

/// `want_type`: the static type of a target value, required.
fn b_want_type<E: ExecEnv>(ctx: &E, v: ValueRef) -> ApiResult<TypeId> {
    match v {
        ValueRef::Global(_) | ValueRef::Func(_) => {
            Err(ApiError::Type("address value needs explicit type".into()))
        }
        _ => ctx
            .tgt_value_type(v)
            .ok_or_else(|| ApiError::Type("operand type unknown".into())),
    }
}

/// The return type behind a target function type (`fn_parts`, return slot).
fn b_fn_ret(types: &TypeTable, ty: TypeId) -> ApiResult<TypeId> {
    match types.get(ty) {
        Type::Func { ret, .. } => Ok(*ret),
        _ => Err(ApiError::Type("expected function type".into())),
    }
}

/// The return type behind a target callee value (`callee_fn_type`, return
/// slot only — the parameter list the original computes is unused by its
/// callers).
fn b_callee_ret<E: ExecEnv>(ctx: &E, callee: ValueRef) -> ApiResult<TypeId> {
    match callee {
        ValueRef::Func(fid) => Ok(ctx.tgt_func_ret(fid)),
        ValueRef::InlineAsm(a) => b_fn_ret(ctx.tgt_types(), ctx.tgt_asm_ty(a)),
        other => {
            let ty = ctx
                .tgt_value_type(other)
                .ok_or_else(|| ApiError::Type("untyped callee".into()))?;
            match ctx.tgt_types().get(ty) {
                Type::Ptr { pointee, .. } => b_fn_ret(ctx.tgt_types(), *pointee),
                Type::Func { .. } => b_fn_ret(ctx.tgt_types(), ty),
                _ => Err(ApiError::Type("callee is not callable".into())),
            }
        }
    }
}

/// `gep_result`: walks the indices through the pointee structure.
fn b_gep_result<E: ExecEnv>(
    ctx: &mut E,
    src_ty: TypeId,
    indices: &[ValueRef],
) -> ApiResult<TypeId> {
    let mut cur = src_ty;
    for idx in indices.iter().skip(1) {
        cur = match ctx.tgt_types().get(cur) {
            Type::Array { elem, .. } | Type::Vector { elem, .. } => *elem,
            Type::Struct { fields } => {
                let i = idx
                    .as_int()
                    .ok_or_else(|| ApiError::Type("struct gep index must be constant".into()))?
                    as usize;
                *fields
                    .get(i)
                    .ok_or_else(|| ApiError::OutOfRange("struct field".into()))?
            }
            _ => return Err(ApiError::Type("gep through scalar".into())),
        };
    }
    Ok(ctx.tgt_types_mut().ptr(cur))
}

/// `cmp_result_ty`: `i1`, vectorized when the operands are vectors.
fn b_cmp_result_ty<E: ExecEnv>(ctx: &mut E, a: ValueRef, b: ValueRef) -> ApiResult<TypeId> {
    let ty = b_want_type(ctx, a).or_else(|_| b_want_type(ctx, b))?;
    let vec_len = match ctx.tgt_types().get(ty) {
        Type::Vector { len, .. } => Some(*len),
        _ => None,
    };
    Ok(match vec_len {
        Some(len) => {
            let i1 = ctx.tgt_types_mut().i1();
            ctx.tgt_types_mut().vector(i1, len)
        }
        None => ctx.tgt_types_mut().i1(),
    })
}

/// Executes one builder micro-op: arguments straight from the step results,
/// operands copied element-wise into a right-sized vector, one direct
/// `ctx.build`. `inst` is the source instruction, read by fused list
/// arguments.
fn exec_build<E: ExecEnv>(
    b: &BuildOp,
    ctx: &mut E,
    inst: &Instruction,
    results: &[ApiValue],
    input: &ApiValue,
) -> ApiResult<ValueRef> {
    use BuildOp as B;
    match b {
        B::Ret(r) => {
            let v = b_value(*r, 0, results, input)?;
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(Opcode::Ret, void, vec![v]))
        }
        B::RetVoid => {
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(Opcode::Ret, void, vec![]))
        }
        B::Br(r) => {
            let bl = b_block(*r, 0, results, input)?;
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(
                Opcode::Br,
                void,
                vec![ValueRef::Block(bl)],
            ))
        }
        B::CondBr(c, t, f) => {
            let c = b_value(*c, 0, results, input)?;
            let t = b_block(*t, 1, results, input)?;
            let f = b_block(*f, 2, results, input)?;
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(
                Opcode::Br,
                void,
                vec![c, ValueRef::Block(t), ValueRef::Block(f)],
            ))
        }
        B::Switch(v, def, cases) => {
            let v = b_value(*v, 0, results, input)?;
            let def = b_block(*def, 1, results, input)?;
            let cs = match reg_ref(*cases, results, input) {
                ApiValue::Cases(Side::Target, cs) => cs,
                _ => return Err(ApiError::Type("expected target cases".into())),
            };
            let void = ctx.tgt_types_mut().void();
            let mut ops = Vec::with_capacity(2 + cs.len() * 2);
            ops.push(v);
            ops.push(ValueRef::Block(def));
            for &(c, bb) in cs {
                ops.push(c);
                ops.push(ValueRef::Block(bb));
            }
            ctx.build(Instruction::new(Opcode::Switch, void, ops))
        }
        B::CallImplicit { callee, args } => {
            let callee = b_value(*callee, 0, results, input)?;
            let ops = call_ops(ctx, inst, callee, args, 1, results, input)?;
            let ret = b_callee_ret(ctx, callee)?;
            let n = (ops.len() - 1) as u32;
            let mut out = Instruction::new(Opcode::Call, ret, ops);
            out.attrs.num_args = n;
            out.attrs.callee_ty = None;
            ctx.build(out)
        }
        B::CallExplicit { fnty, callee, args } => {
            let fnty = b_type(*fnty, 0, results, input)?;
            let callee = b_value(*callee, 1, results, input)?;
            let ops = call_ops(ctx, inst, callee, args, 2, results, input)?;
            let ret = b_fn_ret(ctx.tgt_types(), fnty)?;
            let n = (ops.len() - 1) as u32;
            let mut out = Instruction::new(Opcode::Call, ret, ops);
            out.attrs.num_args = n;
            out.attrs.callee_ty = Some(fnty);
            ctx.build(out)
        }
        B::Unreachable => {
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(Opcode::Unreachable, void, vec![]))
        }
        B::Bin { op, a, b } => {
            let av = b_value(*a, 0, results, input)?;
            let bv = b_value(*b, 1, results, input)?;
            let ty = b_want_type(ctx, av).or_else(|_| b_want_type(ctx, bv))?;
            ctx.build(Instruction::new(*op, ty, vec![av, bv]))
        }
        B::FNeg(r) => {
            let v = b_value(*r, 0, results, input)?;
            let ty = b_want_type(ctx, v)?;
            ctx.build(Instruction::new(Opcode::FNeg, ty, vec![v]))
        }
        B::Alloca(r) => {
            let ty = b_type(*r, 0, results, input)?;
            let ptr = ctx.tgt_types_mut().ptr(ty);
            let mut inst = Instruction::new(Opcode::Alloca, ptr, vec![]);
            inst.attrs.alloc_ty = Some(ty);
            ctx.build(inst)
        }
        B::LoadExplicit { ty, ptr } => {
            let ty = b_type(*ty, 0, results, input)?;
            let p = b_value(*ptr, 1, results, input)?;
            let mut inst = Instruction::new(Opcode::Load, ty, vec![p]);
            inst.attrs.gep_source_ty = Some(ty);
            ctx.build(inst)
        }
        B::LoadImplicit { ptr } => {
            let p = b_value(*ptr, 0, results, input)?;
            let pty = match p {
                ValueRef::Global(g) => {
                    let t = ctx.tgt_global_ty(g);
                    ctx.tgt_types_mut().ptr(t)
                }
                _ => b_want_type(ctx, p)?,
            };
            let ty = ctx
                .tgt_types()
                .pointee(pty)
                .ok_or_else(|| ApiError::Type("load from non-pointer".into()))?;
            let mut inst = Instruction::new(Opcode::Load, ty, vec![p]);
            inst.attrs.gep_source_ty = Some(ty);
            ctx.build(inst)
        }
        B::Store { v, p } => {
            let v = b_value(*v, 0, results, input)?;
            let p = b_value(*p, 1, results, input)?;
            let void = ctx.tgt_types_mut().void();
            ctx.build(Instruction::new(Opcode::Store, void, vec![v, p]))
        }
        B::GepExplicit { ty, base, idx } => {
            let src_ty = b_type(*ty, 0, results, input)?;
            let base = b_value(*base, 1, results, input)?;
            let ops = gep_ops(ctx, inst, base, idx, 2, results, input)?;
            let rty = b_gep_result(ctx, src_ty, &ops[1..])?;
            let mut out = Instruction::new(Opcode::GetElementPtr, rty, ops);
            out.attrs.gep_source_ty = Some(src_ty);
            ctx.build(out)
        }
        B::GepImplicit { base, idx } => {
            let base = b_value(*base, 0, results, input)?;
            let ops = gep_ops(ctx, inst, base, idx, 1, results, input)?;
            let pty = match base {
                ValueRef::Global(g) => {
                    let t = ctx.tgt_global_ty(g);
                    ctx.tgt_types_mut().ptr(t)
                }
                _ => b_want_type(ctx, base)?,
            };
            let src_ty = ctx
                .tgt_types()
                .pointee(pty)
                .ok_or_else(|| ApiError::Type("gep on non-pointer".into()))?;
            let rty = b_gep_result(ctx, src_ty, &ops[1..])?;
            let mut out = Instruction::new(Opcode::GetElementPtr, rty, ops);
            out.attrs.gep_source_ty = Some(src_ty);
            ctx.build(out)
        }
        B::Cast { op, v, ty } => {
            let v = b_value(*v, 0, results, input)?;
            let to = b_type(*ty, 1, results, input)?;
            ctx.build(Instruction::new(*op, to, vec![v]))
        }
        B::ICmp { pred, a, b } => {
            let pred = match reg_ref(*pred, results, input) {
                ApiValue::IntPred(p) => *p,
                _ => return Err(ApiError::Type("expected predicate".into())),
            };
            let av = b_value(*a, 1, results, input)?;
            let bv = b_value(*b, 2, results, input)?;
            let rty = b_cmp_result_ty(ctx, av, bv)?;
            let mut inst = Instruction::new(Opcode::ICmp, rty, vec![av, bv]);
            inst.attrs.int_pred = Some(pred);
            ctx.build(inst)
        }
        B::FCmp { pred, a, b } => {
            let pred = match reg_ref(*pred, results, input) {
                ApiValue::FloatPred(p) => *p,
                _ => return Err(ApiError::Type("expected predicate".into())),
            };
            let av = b_value(*a, 1, results, input)?;
            let bv = b_value(*b, 2, results, input)?;
            let rty = b_cmp_result_ty(ctx, av, bv)?;
            let mut inst = Instruction::new(Opcode::FCmp, rty, vec![av, bv]);
            inst.attrs.float_pred = Some(pred);
            ctx.build(inst)
        }
        B::Phi { ty, pairs } => {
            let ty = b_type(*ty, 0, results, input)?;
            let ps = match reg_ref(*pairs, results, input) {
                ApiValue::Phis(Side::Target, ps) => ps,
                _ => return Err(ApiError::Type("expected target phi list".into())),
            };
            let mut ops = Vec::with_capacity(ps.len() * 2);
            for &(v, bb) in ps {
                ops.push(v);
                ops.push(ValueRef::Block(bb));
            }
            ctx.build(Instruction::new(Opcode::Phi, ty, ops))
        }
        B::Select { c, t, f } => {
            let c = b_value(*c, 0, results, input)?;
            let t = b_value(*t, 1, results, input)?;
            let f = b_value(*f, 2, results, input)?;
            let ty = b_want_type(ctx, t).or_else(|_| b_want_type(ctx, f))?;
            ctx.build(Instruction::new(Opcode::Select, ty, vec![c, t, f]))
        }
        B::Freeze(r) => {
            let v = b_value(*r, 0, results, input)?;
            let ty = b_want_type(ctx, v)?;
            ctx.build(Instruction::new(Opcode::Freeze, ty, vec![v]))
        }
    }
}

/// Runs one arm's step stream. Steady state: no allocation, no hashing, no
/// instruction clones — the scratch vectors are reused across instructions.
fn exec_steps<E: ExecEnv>(
    arm: &CompiledArm,
    ctx: &mut E,
    inst_id: InstId,
    inst: &Instruction,
    s: &mut Scratch,
) -> TranslateResult<ValueRef> {
    let input = ApiValue::SrcInst(inst_id);
    s.results.clear();
    for step in arm.steps.iter() {
        let out = match step {
            StepOp::Lit(v) => v.clone(),
            StepOp::Getter(g) => exec_getter(g, ctx, inst)?,
            StepOp::TranslateValue(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::SrcValue(v) => ApiValue::TgtValue(ctx.translate_value(*v)?),
                other => {
                    return Err(TranslateError::Api(ApiError::Type(format!(
                        "arg 0: expected source value, got {:?}",
                        Some(other)
                    ))))
                }
            },
            StepOp::TranslateBlock(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::SrcBlock(b) => ApiValue::TgtBlock(ctx.translate_block(*b)?),
                _ => return Err(type_err("expected source block")),
            },
            StepOp::TranslateType(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::SrcType(t) => ApiValue::TgtType(ctx.translate_type(*t)),
                _ => return Err(type_err("expected source type")),
            },
            StepOp::TranslateValues(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::Values(Side::Source, vs) => {
                    let mut out = Vec::with_capacity(vs.len());
                    for &v in vs {
                        out.push(ctx.translate_value(v)?);
                    }
                    ApiValue::Values(Side::Target, out)
                }
                _ => return Err(type_err("expected source value list")),
            },
            StepOp::TranslateBlocks(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::Blocks(Side::Source, bs) => {
                    let mut out = Vec::with_capacity(bs.len());
                    for &b in bs {
                        out.push(ctx.translate_block(b)?);
                    }
                    ApiValue::Blocks(Side::Target, out)
                }
                _ => return Err(type_err("expected source block list")),
            },
            StepOp::TranslateCases(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::Cases(Side::Source, cs) => {
                    let mut out = Vec::with_capacity(cs.len());
                    for &(v, b) in cs {
                        out.push((ctx.translate_value(v)?, ctx.translate_block(b)?));
                    }
                    ApiValue::Cases(Side::Target, out)
                }
                _ => return Err(type_err("expected source case list")),
            },
            StepOp::TranslateIncoming(r) => match reg_ref(*r, &s.results, &input) {
                ApiValue::Phis(Side::Source, ps) => {
                    let mut out = Vec::with_capacity(ps.len());
                    for &(v, b) in ps {
                        out.push((ctx.translate_value(v)?, ctx.translate_block(b)?));
                    }
                    ApiValue::Phis(Side::Target, out)
                }
                _ => return Err(type_err("expected source phi list")),
            },
            StepOp::Build(b) => ApiValue::TgtValue(exec_build(b, ctx, inst, &s.results, &input)?),
            StepOp::Call { f, args } => {
                s.args.clear();
                for r in args.iter() {
                    s.args.push(match r {
                        Reg::Input => input.clone(),
                        Reg::Step(i) => s.results[*i].clone(),
                    });
                }
                ctx.api_call(f, &s.args)?
            }
        };
        s.results.push(out);
    }
    match s.results.last() {
        Some(ApiValue::TgtValue(v)) => Ok(*v),
        other => Err(TranslateError::Api(ApiError::Type(format!(
            "program did not end in a target instruction: {other:?}"
        )))),
    }
}

impl CompiledKind {
    /// Lowers one kind's translator. This is the canonical kind-level
    /// codegen that [`TranslatorBackend::lower_kind`] delegates to.
    ///
    /// # Errors
    ///
    /// [`CompileError`] when guards cannot be aligned or a program is not
    /// well-typed.
    pub fn lower(
        reg: &ApiRegistry,
        kind: Opcode,
        kt: &KindTranslator,
    ) -> Result<CompiledKind, CompileError> {
        let preds: Box<[CompiledPred]> = reg
            .predicates_for(kind)
            .into_iter()
            .map(|id| {
                let f = reg.get(id);
                CompiledPred {
                    name: Arc::from(f.name.as_str()),
                    op: bind_pred(f),
                }
            })
            .collect();
        let dummy = Module::new("const-eval", reg.src_version);
        let mut arms = Vec::with_capacity(kt.arms.len());
        for arm in &kt.arms {
            if !arm.program.well_typed(reg) {
                return Err(CompileError::IllTyped { kind });
            }
            let mut covers = Vec::with_capacity(arm.covers.len());
            for conj in &arm.covers {
                if conj.len() != preds.len() {
                    return Err(CompileError::CoverMismatch {
                        kind,
                        detail: format!(
                            "guard names {} predicates, the kind has {}",
                            conj.len(),
                            preds.len()
                        ),
                    });
                }
                let row: Box<[PredValue]> = preds
                    .iter()
                    .map(|p| {
                        conj.get(p.name.as_ref()).copied().ok_or_else(|| {
                            CompileError::CoverMismatch {
                                kind,
                                detail: format!("guard lacks predicate `{}`", p.name),
                            }
                        })
                    })
                    .collect::<Result<_, _>>()?;
                covers.push(row);
            }
            let mut steps = Vec::with_capacity(arm.program.steps.len());
            for call in &arm.program.steps {
                let bound = bind_step(reg, kind, call, &steps, &dummy);
                steps.push(bound);
            }
            fuse_lists(&mut steps);
            let tmpl = derive_tmpl(&steps);
            arms.push(CompiledArm {
                covers: covers.into_boxed_slice(),
                steps: steps.into_boxed_slice(),
                calls: arm.program.steps.clone().into_boxed_slice(),
                tmpl,
            });
        }
        let skip_preds = kt.arms.first().is_some_and(|a| a.covers.is_empty());
        // Mirror capability: the in-place driver rewrites the source slot
        // with the arm's single built instruction, so every arm that can
        // run must (a) build exactly once, as its final step (the arm's
        // result *is* the rewritten slot), and (b) never call back into
        // the registry (`StepOp::Call`, `PredOp::Slow` — those closures
        // expect a real push-mode context).
        let arm_mirrorable = |a: &CompiledArm| {
            let n = a.steps.len();
            n > 0
                && a.steps.iter().enumerate().all(|(i, s)| match s {
                    StepOp::Build(_) => i + 1 == n,
                    StepOp::Call { .. } => false,
                    _ => true,
                })
                && matches!(a.steps.last(), Some(StepOp::Build(_)))
        };
        let mirror_ok = if skip_preds {
            arms.first().is_some_and(arm_mirrorable)
        } else {
            preds.iter().all(|p| !matches!(p.op, PredOp::Slow(_)))
                && !arms.is_empty()
                && arms.iter().all(arm_mirrorable)
        };
        Ok(CompiledKind {
            preds,
            arms: arms.into_boxed_slice(),
            skip_preds,
            mirror_ok,
        })
    }

    /// Reconstructs the interpreter-shaped conjunction for the unseen-
    /// predicate error path (cold; names only live for this).
    fn rebuild_conj(&self, evaluated: &[PredValue]) -> PredConj {
        self.preds
            .iter()
            .zip(evaluated)
            .map(|(p, v)| (p.name.to_string(), *v))
            .collect()
    }

    /// Evaluates the kind's guards and picks the arm that covers them —
    /// the dispatch half of [`CompiledKind::translate`], shared with the
    /// mirror driver (which then runs the arm's template or stream).
    fn select_arm<E: ExecEnv>(
        &self,
        ctx: &mut E,
        kind: Opcode,
        inst_id: InstId,
        inst: &Instruction,
        s: &mut Scratch,
    ) -> TranslateResult<&CompiledArm> {
        if self.skip_preds {
            return Ok(&self.arms[0]);
        }
        s.evaluated.clear();
        for p in self.preds.iter() {
            let pv = p.eval(ctx, inst_id, inst)?;
            s.evaluated.push(pv);
        }
        self.arms
            .iter()
            .find(|a| a.matches(&s.evaluated))
            .ok_or_else(|| TranslateError::UnseenPredicate {
                kind,
                conj: self.rebuild_conj(&s.evaluated),
            })
    }

    fn translate<E: ExecEnv>(
        &self,
        ctx: &mut E,
        kind: Opcode,
        inst_id: InstId,
        inst: &Instruction,
        s: &mut Scratch,
    ) -> TranslateResult<ValueRef> {
        let arm = self.select_arm(ctx, kind, inst_id, inst, s)?;
        exec_steps(arm, ctx, inst_id, inst, s)
    }
}

/// A dispatch-table slot: what `opcode as usize` resolves to.
#[derive(Debug, Clone)]
pub(crate) enum SlotAction {
    /// The target version lacks this kind — dispatch to the
    /// new-instruction lowerings (`siro_core::newinst`).
    NewInst,
    /// The target supports the kind but the translator has no entry.
    Missing,
    /// Run the compiled stream.
    Kind(CompiledKind),
}

/// A synthesized translator lowered to its compiled execution form.
///
/// Plugs into the skeleton exactly like the interpreted translator (it
/// implements [`InstTranslator`]) and produces byte-identical modules; see
/// the module docs for what was pre-resolved.
///
/// # Examples
///
/// ```
/// use siro_ir::IrVersion;
/// use siro_synth::{oracle_corpus, StreamBackend, TranslatorBackend, TranslatorCache};
/// use siro_synth::SynthesisConfig;
/// use siro_core::Skeleton;
///
/// let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
/// let tests = oracle_corpus(src, tgt);
/// let outcome =
///     TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests).unwrap();
/// let compiled = StreamBackend.lower(&outcome.translator).unwrap();
///
/// // The compiled tier is a drop-in InstTranslator: identical output.
/// let skeleton = Skeleton::new(tgt);
/// let interpreted = skeleton.translate_module(&tests[0].module, &outcome.translator).unwrap();
/// let fast = skeleton.translate_module(&tests[0].module, &compiled).unwrap();
/// assert_eq!(
///     siro_ir::write::write_module(&interpreted),
///     siro_ir::write::write_module(&fast),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTranslator {
    registry: Arc<ApiRegistry>,
    table: Box<[SlotAction]>,
}

impl CompiledTranslator {
    /// The registry the compiled streams index into.
    pub fn registry(&self) -> &Arc<ApiRegistry> {
        &self.registry
    }

    /// Kinds with a compiled stream, ascending.
    pub fn compiled_kinds(&self) -> Vec<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .filter(|op| matches!(self.table[*op as usize], SlotAction::Kind(_)))
            .collect()
    }

    pub(crate) fn from_parts(
        registry: Arc<ApiRegistry>,
        kinds: impl IntoIterator<Item = (Opcode, CompiledKind)>,
    ) -> Self {
        let mut table: Vec<SlotAction> = Opcode::ALL
            .iter()
            .map(|&op| {
                if registry.tgt_version.supports(op) {
                    SlotAction::Missing
                } else {
                    SlotAction::NewInst
                }
            })
            .collect();
        for (kind, compiled) in kinds {
            if registry.tgt_version.supports(kind) {
                table[kind as usize] = SlotAction::Kind(compiled);
            }
        }
        CompiledTranslator {
            registry,
            table: table.into_boxed_slice(),
        }
    }

    pub(crate) fn kind_entries(&self) -> impl Iterator<Item = (Opcode, &CompiledKind)> {
        Opcode::ALL
            .iter()
            .filter_map(move |&op| match &self.table[op as usize] {
                SlotAction::Kind(k) => Some((op, k)),
                _ => None,
            })
    }

    #[inline]
    fn translate_one(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst_id: InstId,
        inst: &Instruction,
        s: &mut Scratch,
    ) -> TranslateResult<ValueRef> {
        match &self.table[inst.opcode as usize] {
            SlotAction::NewInst => newinst::lower_new_instruction(ctx, inst_id),
            SlotAction::Missing => Err(TranslateError::MissingTranslator(inst.opcode)),
            SlotAction::Kind(k) => k.translate(ctx, inst.opcode, inst_id, inst, s),
        }
    }

    /// Translates a whole module through the compiled tier's specialized
    /// driver: the same walk as `Skeleton::translate_module` — same order,
    /// same counters, same errors — but with the per-function value map in
    /// dense (indexed) form and each instruction borrowed rather than
    /// re-fetched and cloned per API call. This is the entry point the
    /// tiered translation path ([`translate_module_tiered`]) uses; going
    /// through [`Skeleton`] with a [`CompiledTranslator`] as a plain
    /// [`InstTranslator`] stays supported and produces identical bytes.
    ///
    /// # Errors
    ///
    /// The same [`TranslateError`]s the interpreted tier produces on the
    /// same input.
    ///
    /// # Examples
    ///
    /// ```
    /// use siro_core::Skeleton;
    /// use siro_ir::IrVersion;
    /// use siro_synth::{oracle_corpus, StreamBackend, SynthesisConfig, TranslatorBackend,
    ///                  TranslatorCache};
    ///
    /// let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    /// let tests = oracle_corpus(src, tgt);
    /// let outcome =
    ///     TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests).unwrap();
    /// let compiled = StreamBackend.lower(&outcome.translator).unwrap();
    ///
    /// let driven = compiled.translate_module(&tests[0].module).unwrap();
    /// let interpreted = Skeleton::new(tgt)
    ///     .translate_module(&tests[0].module, &outcome.translator)
    ///     .unwrap();
    /// assert_eq!(
    ///     siro_ir::write::write_module(&driven),
    ///     siro_ir::write::write_module(&interpreted),
    /// );
    /// ```
    pub fn translate_module(&self, src: &Module) -> TranslateResult<Module> {
        let mut ctx = TranslationCtx::new(src, self.registry.tgt_version);
        for g in src.global_ids() {
            ctx.translate_global(g);
        }
        for f in src.func_ids() {
            ctx.clone_signature(f);
        }
        // One scratch borrow for the whole module: the per-instruction
        // thread-local access and RefCell check move out of the hot loop.
        // Nothing below re-enters SCRATCH (micro-ops and `PredOp::Slow`
        // closures never call back into the driver).
        SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            for f in src.func_ids() {
                if src.func(f).is_external {
                    continue;
                }
                self.translate_function(&mut ctx, src, f, s)?;
            }
            Ok::<(), TranslateError>(())
        })?;
        siro_trace::counter("core.modules_translated", 1);
        Ok(ctx.finish())
    }

    fn translate_function<'s>(
        &self,
        ctx: &mut TranslationCtx<'s>,
        src: &'s Module,
        src_fid: FuncId,
        s: &mut Scratch,
    ) -> TranslateResult<()> {
        let tgt_fid = ctx.translate_func(src_fid)?;
        let func = src.func(src_fid);
        ctx.begin_function_dense(src_fid, tgt_fid, func.inst_count());
        // Same phase-funnel counters as the skeleton, batched; the phi scan
        // only runs when tracing is on (the totals are what difftest
        // deltas, and they match the skeleton's exactly).
        if siro_trace::enabled() {
            siro_trace::counter("core.funcs_translated", 1);
            siro_trace::counter("core.blocks_translated", func.blocks.len() as u64);
            siro_trace::counter(
                "core.phis_translated",
                func.blocks
                    .iter()
                    .flat_map(|b| &b.insts)
                    .filter(|&&i| func.inst(i).opcode == Opcode::Phi)
                    .count() as u64,
            );
        }
        for b in func.block_ids() {
            let name = func.block(b).name.clone();
            let tb = ctx.tgt.func_mut(tgt_fid).add_block(name);
            ctx.map_block(b, tb);
        }
        for b in func.block_ids() {
            let tb = ctx.translate_block(b)?;
            ctx.set_insertion(tb);
            let insts = &func.block(b).insts;
            siro_trace::counter("core.insts_translated", insts.len() as u64);
            for &i in insts {
                let inst = func.inst(i);
                let v = self.translate_one(ctx, i, inst, s)?;
                // Name carry, as in the skeleton — but only cloning the
                // name when it will actually be set.
                if let Some(tid) = v.as_inst() {
                    if let Some(name) = inst.name.as_ref() {
                        let tf = ctx.tgt.func_mut(tgt_fid);
                        if tf.inst(tid).name.is_none() {
                            tf.inst_mut(tid).name = Some(name.clone());
                        }
                    }
                }
                ctx.note_translated(i, v)?;
            }
        }
        let unresolved = ctx.unresolved_placeholders();
        if unresolved > 0 {
            return Err(TranslateError::UnresolvedPlaceholders {
                func: func.name.clone(),
                count: unresolved,
            });
        }
        Ok(())
    }

    /// Translates an *owned* module in place — the serving-shaped fast
    /// path. Serving parses every request into a fresh module it owns;
    /// handing that module to the translator by value lets the mirror
    /// driver skip everything the by-reference drivers rebuild per call
    /// (target module, globals, signatures, blocks, value maps): function,
    /// block, instruction, and type identities are simply *kept*, and each
    /// instruction's slot is overwritten with the instruction its compiled
    /// arm builds.
    ///
    /// Output is byte-identical to the other tiers because the mirror mode
    /// runs the *same* compiled arms through the same executor
    /// (`ExecEnv`) — only value/type translation (identity here) and
    /// emission (slot overwrite instead of append) differ, and the writer
    /// numbers values by block order and prints types structurally, so
    /// preserved internal ids are invisible.
    ///
    /// Rewrites are buffered and applied only after every instruction in
    /// the module has translated cleanly, so on any error — or when a kind
    /// is not mirror-capable (`CompiledKind::mirror_ok`) — the module is
    /// still pristine and the push driver re-runs from scratch, producing
    /// the exact push-tier result or error (counted as
    /// `translate.mirror_fallback`).
    ///
    /// # Errors
    ///
    /// The same [`TranslateError`]s the other tiers produce on the same
    /// input.
    ///
    /// # Examples
    ///
    /// ```
    /// use siro_core::Skeleton;
    /// use siro_ir::IrVersion;
    /// use siro_synth::{oracle_corpus, StreamBackend, SynthesisConfig, TranslatorBackend,
    ///                  TranslatorCache};
    ///
    /// let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    /// let tests = oracle_corpus(src, tgt);
    /// let outcome =
    ///     TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests).unwrap();
    /// let compiled = StreamBackend.lower(&outcome.translator).unwrap();
    ///
    /// let owned = compiled.translate_module_owned(tests[0].module.clone()).unwrap();
    /// let interpreted = Skeleton::new(tgt)
    ///     .translate_module(&tests[0].module, &outcome.translator)
    ///     .unwrap();
    /// assert_eq!(
    ///     siro_ir::write::write_module(&owned),
    ///     siro_ir::write::write_module(&interpreted),
    /// );
    /// ```
    pub fn translate_module_owned(&self, mut m: Module) -> TranslateResult<Module> {
        if self.mirror_in_place(&mut m) {
            siro_trace::counter("core.modules_translated", 1);
            return Ok(m);
        }
        // The rewrite buffer was never applied, so `m` is still the parsed
        // request (module-level metadata untouched; type-table appends are
        // invisible): the push driver reproduces the exact push-tier
        // result or error.
        siro_trace::counter("translate.mirror_fallback", 1);
        self.translate_module(&m)
    }

    /// The mirror pass. Two shapes, chosen by a read-only validation
    /// sweep ([`CompiledTranslator::mirror_validate`]):
    ///
    /// * **commit** — every instruction selects a templated arm whose
    ///   checks pass and whose computed result type equals the slot's
    ///   existing type. The commit sweep then rewrites each slot in place
    ///   with no buffering and no per-instruction allocation; it cannot
    ///   fail, because it re-reads exactly the state validation read
    ///   (templates read only *result types* of other instructions — never
    ///   their operands, attributes, or opcodes — and signatures, globals,
    ///   and blocks are never rewritten, so the proved type-invariance
    ///   makes both sweeps see identical inputs).
    /// * **buffered** — some arm is outside the template fragment (or
    ///   changes a result type): fall back to evaluating arms in mirror
    ///   mode, buffering `(function, slot, instruction)` rewrites, and
    ///   applying them only if the whole module translates.
    ///
    /// Returns `false` — with the module unmodified — when any kind is not
    /// mirror-capable or any arm errors; the caller re-runs the push
    /// driver on the pristine module.
    fn mirror_in_place(&self, m: &mut Module) -> bool {
        let mut arms: Vec<&CompiledArm> = Vec::with_capacity(m.inst_count());
        let ok = match self.mirror_validate(m, &mut arms) {
            MirrorPlan::Bail => return false,
            MirrorPlan::Commit => {
                Self::mirror_commit(m, &arms);
                true
            }
            MirrorPlan::Buffered => self.mirror_buffered(m),
        };
        if !ok {
            return false;
        }
        m.version = self.registry.tgt_version;
        if siro_trace::enabled() {
            // Counter totals, replicated from the push driver so difftest
            // deltas cannot tell the drivers apart (emitted only on
            // success; the fallback path emits its own). `Phi` rewrites to
            // `Phi`, so post-rewrite opcodes still count source phis.
            let (mut n_funcs, mut n_blocks, mut n_insts, mut n_phis) = (0u64, 0u64, 0u64, 0u64);
            for func in m.funcs.iter().filter(|f| !f.is_external) {
                n_funcs += 1;
                n_blocks += func.blocks.len() as u64;
                for block in &func.blocks {
                    n_insts += block.insts.len() as u64;
                    for &iid in &block.insts {
                        n_phis += u64::from(func.inst(iid).opcode == Opcode::Phi);
                    }
                }
            }
            siro_trace::counter("core.funcs_translated", n_funcs);
            siro_trace::counter("core.blocks_translated", n_blocks);
            siro_trace::counter("core.insts_translated", n_insts);
            siro_trace::counter("core.phis_translated", n_phis);
        }
        true
    }

    /// Read-only sweep deciding how the mirror pass may run, filling
    /// `arms` with the selected arm per instruction (module order) for the
    /// commit sweep to reuse.
    fn mirror_validate<'t>(
        &'t self,
        m: &mut Module,
        arms: &mut Vec<&'t CompiledArm>,
    ) -> MirrorPlan {
        let mut plan = MirrorPlan::Commit;
        // Disjoint field borrows: the function arena stays read-only, only
        // the type table is mutable (template result-type computation may
        // intern; interning is append-only and idempotent, and the writer
        // prints types structurally, so validation-order appends are
        // invisible in the output bytes).
        let siro_ir::Ctx {
            ref funcs,
            ref globals,
            ref asms,
            ref mut types,
        } = m.ctx;
        SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            let mut ops: Vec<ValueRef> = Vec::new();
            for func in funcs.iter() {
                if func.is_external {
                    continue;
                }
                let mut env = MirrorEnv {
                    funcs,
                    globals,
                    asms,
                    types: &mut *types,
                    func,
                    cur: InstId::new(0),
                    out: None,
                };
                for block in &func.blocks {
                    for &iid in &block.insts {
                        let inst = func.inst(iid);
                        let kind = match &self.table[inst.opcode as usize] {
                            SlotAction::Kind(kind) if kind.mirror_ok => kind,
                            _ => return MirrorPlan::Bail,
                        };
                        let arm = match kind.select_arm(&mut env, inst.opcode, iid, inst, s) {
                            Ok(arm) => arm,
                            Err(_) => return MirrorPlan::Bail,
                        };
                        arms.push(arm);
                        let Some(t) = &arm.tmpl else {
                            // Outside the template fragment: the buffered
                            // sweep handles the whole module (it re-runs
                            // the checks itself).
                            plan = MirrorPlan::Buffered;
                            continue;
                        };
                        match tmpl_parts(
                            t, inst, func, env.funcs, globals, asms, env.types, &mut ops,
                        ) {
                            // A failed check means the stream form errors
                            // (or panics) on this instruction: only the
                            // pristine-module fallback reproduces that.
                            None => return MirrorPlan::Bail,
                            // Type changed: in-place reads after partial
                            // rewriting would diverge; buffer instead.
                            Some((_, ty, _)) if ty != inst.ty => plan = MirrorPlan::Buffered,
                            Some(_) => {}
                        }
                    }
                }
            }
            plan
        })
    }

    /// The in-place commit sweep: rewrites every instruction slot through
    /// its validated template — no rewrite buffer, no per-instruction
    /// allocation (one reused operand scratch), `name` left in place.
    ///
    /// Only called after [`CompiledTranslator::mirror_validate`] returned
    /// [`MirrorPlan::Commit`]; both sweeps are deterministic over
    /// identical inputs (see [`CompiledTranslator::mirror_in_place`]), so
    /// a template failing here is a driver bug, not an input condition —
    /// it panics rather than half-rewriting the module.
    fn mirror_commit(m: &mut Module, arms: &[&CompiledArm]) {
        let siro_ir::Ctx {
            ref mut funcs,
            ref globals,
            ref asms,
            ref mut types,
        } = m.ctx;
        let mut ops: Vec<ValueRef> = Vec::new();
        let mut next = 0usize;
        for fi in 0..funcs.len() {
            if funcs[fi].is_external {
                continue;
            }
            for bi in 0..funcs[fi].blocks.len() {
                for ii in 0..funcs[fi].blocks[bi].insts.len() {
                    let iid = funcs[fi].blocks[bi].insts[ii];
                    let t = arms[next].tmpl.as_ref().expect("validated template");
                    next += 1;
                    let (op, ty, attrs) = {
                        let func = &funcs[fi];
                        let inst = func.inst(iid);
                        match tmpl_parts(t, inst, func, funcs, globals, asms, types, &mut ops) {
                            Some(parts) => parts,
                            None => unreachable!("validated mirror template failed on commit"),
                        }
                    };
                    let slot = funcs[fi].inst_mut(iid);
                    slot.opcode = op;
                    slot.ty = ty;
                    slot.operands.clear();
                    slot.operands.extend_from_slice(&ops);
                    slot.attrs = attrs;
                }
            }
        }
    }

    /// The buffered mirror sweep: evaluates every instruction's arm in
    /// mirror mode (template where derivable, stream execution otherwise),
    /// buffering `(function, slot, instruction)` rewrites and applying
    /// them only if the whole module translates. Returns `false` — with
    /// the module unmodified — when any arm errors.
    fn mirror_buffered(&self, m: &mut Module) -> bool {
        let mut rewrites: Vec<(u32, InstId, Instruction)> = Vec::with_capacity(m.inst_count());
        let siro_ir::Ctx {
            ref funcs,
            ref globals,
            ref asms,
            ref mut types,
        } = m.ctx;
        let ok = SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            for (fi, func) in funcs.iter().enumerate() {
                if func.is_external {
                    continue;
                }
                let mut env = MirrorEnv {
                    funcs,
                    globals,
                    asms,
                    types: &mut *types,
                    func,
                    cur: InstId::new(0),
                    out: None,
                };
                for block in &func.blocks {
                    for &iid in &block.insts {
                        let inst = func.inst(iid);
                        let kind = match &self.table[inst.opcode as usize] {
                            SlotAction::Kind(kind) if kind.mirror_ok => kind,
                            _ => return false,
                        };
                        let arm = match kind.select_arm(&mut env, inst.opcode, iid, inst, s) {
                            Ok(arm) => arm,
                            Err(_) => return false,
                        };
                        // Template first (the common case: no step machine
                        // at all); arms outside the derivable fragment run
                        // their stream through the mirror env.
                        let mut new = if let Some(t) = &arm.tmpl {
                            match env.exec_tmpl(t, inst) {
                                Some(new) => new,
                                None => return false,
                            }
                        } else {
                            env.cur = iid;
                            env.out = None;
                            let v = exec_steps(arm, &mut env, iid, inst, s);
                            match (v, env.out.take()) {
                                (Ok(v), Some(new)) => {
                                    debug_assert_eq!(v, ValueRef::Inst(iid));
                                    new
                                }
                                _ => return false,
                            }
                        };
                        // Name carry, as in the push driver: the built
                        // instruction never has a name, the source one
                        // keeps its own.
                        if new.name.is_none() {
                            new.name = inst.name.clone();
                        }
                        rewrites.push((fi as u32, iid, new));
                    }
                }
            }
            true
        });
        if !ok {
            return false;
        }
        for (fi, iid, inst) in rewrites {
            *m.funcs[fi as usize].inst_mut(iid) = inst;
        }
        true
    }
}

/// How [`CompiledTranslator::mirror_in_place`] may run, decided by the
/// read-only validation sweep.
enum MirrorPlan {
    /// Every instruction has a validated template with an unchanged result
    /// type: rewrite slots in place, no buffering.
    Commit,
    /// Some arm needs stream execution (or changes a result type): run the
    /// buffered sweep.
    Buffered,
    /// A check failed or a kind is not mirror-capable: leave the module
    /// pristine and fall back to the push driver.
    Bail,
}

impl InstTranslator for CompiledTranslator {
    fn translate_inst(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst: InstId,
    ) -> TranslateResult<ValueRef> {
        let fid = ctx
            .src_func_id()
            .ok_or_else(|| ApiError::Missing("no current source function".into()))?;
        // `ctx.src` is a Copy field: reading it yields a borrow of the
        // source module whose lifetime is independent of `ctx`, so the
        // instruction can stay borrowed across the `&mut ctx` call below.
        let src = ctx.src;
        let inst_ref = src.func(fid).inst(inst);
        SCRATCH.with(|scratch| self.translate_one(ctx, inst, inst_ref, &mut scratch.borrow_mut()))
    }
}

// ---- The backend trait -----------------------------------------------------

/// A code generator turning validated translators into their execution
/// form — the module-level / kind-level split of wasmer's
/// `ModuleCodeGenerator` / `FunctionCodeGenerator` pair. The provided
/// methods implement the canonical stream lowering; a backend overrides
/// [`TranslatorBackend::lower_kind`] to specialize per-kind codegen while
/// inheriting the table walk, or [`TranslatorBackend::lower`] to replace
/// the walk itself.
pub trait TranslatorBackend {
    /// A short identifier for traces and stats pages.
    fn name(&self) -> &'static str;

    /// Lowers one kind's translator into its compiled stream.
    ///
    /// # Errors
    ///
    /// [`CompileError`]; the whole lowering aborts and the outcome stays
    /// on the interpreted tier.
    fn lower_kind(
        &self,
        reg: &ApiRegistry,
        kind: Opcode,
        kt: &KindTranslator,
    ) -> Result<CompiledKind, CompileError> {
        CompiledKind::lower(reg, kind, kt)
    }

    /// Lowers a whole translator: every kind through
    /// [`TranslatorBackend::lower_kind`], assembled into the dense
    /// dispatch table.
    ///
    /// # Errors
    ///
    /// The first per-kind [`CompileError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use siro_api::ApiRegistry;
    /// use siro_core::SynthesizedTranslator;
    /// use siro_ir::IrVersion;
    /// use siro_synth::{StreamBackend, TranslatorBackend};
    /// use std::sync::Arc;
    ///
    /// // An empty translator lowers to a table of pure dispatch decisions:
    /// // unsupported kinds go to the new-instruction lowerings, everything
    /// // else to the missing-translator error — no compiled streams yet.
    /// let reg = Arc::new(ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6));
    /// let empty = SynthesizedTranslator::new(Arc::clone(&reg));
    /// let compiled = StreamBackend.lower(&empty).unwrap();
    /// assert!(compiled.compiled_kinds().is_empty());
    /// assert_eq!(StreamBackend.name(), "stream");
    /// ```
    fn lower(
        &self,
        translator: &SynthesizedTranslator,
    ) -> Result<CompiledTranslator, CompileError> {
        let reg = &translator.registry;
        let mut kinds = Vec::with_capacity(translator.kinds.len());
        for (&kind, kt) in &translator.kinds {
            kinds.push((kind, self.lower_kind(reg, kind, kt)?));
        }
        Ok(CompiledTranslator::from_parts(Arc::clone(reg), kinds))
    }
}

/// The default backend: the flat instruction-stream lowering implemented
/// by [`CompiledKind::lower`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamBackend;

impl TranslatorBackend for StreamBackend {
    fn name(&self) -> &'static str {
        "stream"
    }
}

// ---- Outcome attachment ----------------------------------------------------

impl SynthesisOutcome {
    /// The compiled tier of this outcome, lowering it on first use (under
    /// a `compile.lower` span) and memoizing the result — including a
    /// failed lowering, so a broken translator does not re-attempt per
    /// request. Returns `None` when the tier is disabled
    /// ([`compile_enabled`]) or the lowering failed: callers fall back to
    /// the interpreted translator.
    pub fn compiled(&self) -> Option<Arc<CompiledTranslator>> {
        if !compile_enabled() {
            return None;
        }
        self.compiled_slot
            .get_or_init(|| {
                let reg = &self.translator.registry;
                let sp =
                    siro_trace::span!("compile.lower", "{}->{}", reg.src_version, reg.tgt_version);
                let lowered = StreamBackend.lower(&self.translator);
                drop(sp);
                match lowered {
                    Ok(c) => {
                        LOWERED.fetch_add(1, Ordering::Relaxed);
                        siro_trace::counter("compile.lowered", 1);
                        Some(Arc::new(c))
                    }
                    Err(_) => {
                        LOWER_FAILURES.fetch_add(1, Ordering::Relaxed);
                        siro_trace::counter("compile.lower_failures", 1);
                        None
                    }
                }
            })
            .clone()
    }

    /// Seeds the compiled slot from a store-loaded `.sirx` entry. A racing
    /// lazy lowering may already hold the slot; either value is correct.
    pub(crate) fn seed_compiled(&self, compiled: Arc<CompiledTranslator>) {
        let _ = self.compiled_slot.set(Some(compiled));
    }
}

// ---- Tiered module translation ---------------------------------------------

/// Translates a module through the outcome's best tier: compiled when
/// available, interpreter otherwise — and interpreter again if the
/// compiled tier errors at runtime (counted as a
/// `translate.compiled_fallback`; both tiers implement identical
/// semantics, so the interpreter reproduces the same result or error).
/// Serving, routing, and difftest all translate through this single entry
/// point.
///
/// # Errors
///
/// The interpreted tier's [`TranslateError`].
pub fn translate_module_tiered(
    outcome: &SynthesisOutcome,
    target: siro_ir::IrVersion,
    module: &Module,
) -> TranslateResult<Module> {
    if let Some(compiled) = outcome.compiled() {
        match compiled.translate_module(module) {
            Ok(m) => {
                TRANSLATE_COMPILED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("translate.compiled", 1);
                return Ok(m);
            }
            Err(_) => {
                RUNTIME_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("translate.compiled_fallback", 1);
            }
        }
    }
    TRANSLATE_INTERPRETED.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("translate.interpreted", 1);
    Skeleton::new(target).translate_module(module, &outcome.translator)
}

/// [`translate_module_tiered`] for an *owned* module — the serving-shaped
/// entry point (serving parses every request into a module it owns, and
/// composed chains own each intermediate hop result). Runs the compiled
/// tier's in-place mirror driver directly on the owned module, falling
/// back — still with zero clones, because the mirror driver mutates only
/// on success — first to the compiled push driver and then to the
/// interpreter on the pristine input.
///
/// # Errors
///
/// The interpreted tier's [`TranslateError`].
pub fn translate_module_owned_tiered(
    outcome: &SynthesisOutcome,
    target: siro_ir::IrVersion,
    module: Module,
) -> TranslateResult<Module> {
    if let Some(compiled) = outcome.compiled() {
        let mut m = module;
        if compiled.mirror_in_place(&mut m) {
            siro_trace::counter("core.modules_translated", 1);
            TRANSLATE_COMPILED.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("translate.compiled", 1);
            return Ok(m);
        }
        // The mirror pass left `m` pristine (see
        // [`CompiledTranslator::translate_module_owned`]).
        siro_trace::counter("translate.mirror_fallback", 1);
        match compiled.translate_module(&m) {
            Ok(out) => {
                TRANSLATE_COMPILED.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("translate.compiled", 1);
                return Ok(out);
            }
            Err(_) => {
                RUNTIME_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                siro_trace::counter("translate.compiled_fallback", 1);
            }
        }
        TRANSLATE_INTERPRETED.fetch_add(1, Ordering::Relaxed);
        siro_trace::counter("translate.interpreted", 1);
        return Skeleton::new(target).translate_module(&m, &outcome.translator);
    }
    TRANSLATE_INTERPRETED.fetch_add(1, Ordering::Relaxed);
    siro_trace::counter("translate.interpreted", 1);
    Skeleton::new(target).translate_module(&module, &outcome.translator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SynthesisConfig;
    use crate::store::oracle_corpus;
    use crate::TranslatorCache;
    use siro_api::{ApiId, ApiProgram};
    use siro_core::TranslatorArm;
    use siro_ir::IrVersion;

    fn outcome_for(src: IrVersion, tgt: IrVersion) -> Arc<SynthesisOutcome> {
        let tests = oracle_corpus(src, tgt);
        TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests)
            .expect("synthesis")
    }

    #[test]
    fn compiled_output_is_byte_identical_over_the_full_corpus() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let outcome = outcome_for(src, tgt);
        let compiled = StreamBackend.lower(&outcome.translator).expect("lower");
        let skeleton = Skeleton::new(tgt);
        for test in oracle_corpus(src, tgt) {
            let interp = skeleton
                .translate_module(&test.module, &outcome.translator)
                .expect("interpreted");
            let fast = skeleton
                .translate_module(&test.module, &compiled)
                .expect("compiled");
            assert_eq!(
                siro_ir::write::write_module(&interp),
                siro_ir::write::write_module(&fast),
                "tier divergence on `{}`",
                test.name
            );
            // The specialized driver must agree with both.
            let driven = compiled.translate_module(&test.module).expect("driver");
            assert_eq!(
                siro_ir::write::write_module(&interp),
                siro_ir::write::write_module(&driven),
                "driver divergence on `{}`",
                test.name
            );
        }
    }

    #[test]
    fn errors_are_identical_across_tiers() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let outcome = outcome_for(src, tgt);
        let compiled = StreamBackend.lower(&outcome.translator).expect("lower");
        // A kind the translator has never seen: strip one kind out and
        // translate a module using it.
        let mut stripped = outcome.translator.clone();
        stripped.kinds.remove(&Opcode::Ret);
        let recompiled = StreamBackend.lower(&stripped).expect("lower");
        let mut m = Module::new("m", src);
        let i32t = m.types.i32();
        let f = siro_ir::FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = siro_ir::FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 7)));
        let skeleton = Skeleton::new(tgt);
        let interp_err = skeleton.translate_module(&m, &stripped).unwrap_err();
        let fast_err = skeleton.translate_module(&m, &recompiled).unwrap_err();
        assert_eq!(interp_err, fast_err);
        let driver_err = recompiled.translate_module(&m).unwrap_err();
        assert_eq!(interp_err, driver_err);
        // And with the full translator both succeed identically.
        let a = skeleton.translate_module(&m, &outcome.translator).unwrap();
        let b2 = skeleton.translate_module(&m, &compiled).unwrap();
        assert_eq!(
            siro_ir::write::write_module(&a),
            siro_ir::write::write_module(&b2)
        );
    }

    #[test]
    fn cover_mismatch_degrades_not_panics() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let outcome = outcome_for(src, tgt);
        let mut broken = outcome.translator.clone();
        // Fabricate an arm whose guard names a predicate that does not
        // exist for the kind.
        let mut conj = PredConj::new();
        conj.insert("no_such_predicate".into(), PredValue::Bool(true));
        let program = broken
            .kinds
            .values()
            .flat_map(|kt| kt.arms.first())
            .map(|a| a.program.clone())
            .next()
            .expect("some program");
        broken.kinds.insert(
            program.kind,
            KindTranslator {
                arms: vec![TranslatorArm {
                    covers: vec![conj],
                    program,
                }],
            },
        );
        let err = StreamBackend.lower(&broken).unwrap_err();
        assert!(matches!(err, CompileError::CoverMismatch { .. }), "{err}");
    }

    #[test]
    fn ill_typed_program_fails_to_lower() {
        let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
        let outcome = outcome_for(src, tgt);
        let mut broken = outcome.translator.clone();
        let kind = *broken.kinds.keys().next().expect("kinds");
        broken.kinds.insert(
            kind,
            KindTranslator::single(ApiProgram {
                kind,
                steps: vec![ApiCall {
                    api: ApiId(0),
                    args: vec![Reg::Step(5)],
                }],
            }),
        );
        let err = StreamBackend.lower(&broken).unwrap_err();
        assert!(matches!(err, CompileError::IllTyped { .. }), "{err}");
    }

    #[test]
    fn tiered_translate_uses_compiled_and_falls_back_when_disabled() {
        let (src, tgt) = (IrVersion::V12_0, IrVersion::V3_6);
        let outcome = outcome_for(src, tgt);
        let tests = oracle_corpus(src, tgt);
        let was = set_compile_enabled(true);
        let before = compile_stats();
        let a = translate_module_tiered(&outcome, tgt, &tests[0].module).unwrap();
        let mid = compile_stats();
        assert_eq!(mid.translations_compiled, before.translations_compiled + 1);
        set_compile_enabled(false);
        assert!(outcome.compiled().is_none(), "disabled tier must hide");
        let b = translate_module_tiered(&outcome, tgt, &tests[0].module).unwrap();
        let after = compile_stats();
        assert_eq!(
            after.translations_interpreted,
            mid.translations_interpreted + 1
        );
        assert_eq!(
            siro_ir::write::write_module(&a),
            siro_ir::write::write_module(&b)
        );
        set_compile_enabled(was);
    }
}
