//! Regression stress test for the `TranslatorCache::snapshot()` /
//! `reset()` race: snapshot used to read the hit/miss counters *before*
//! taking the map lock, so a concurrent `reset()` could zero the map in
//! between and a reader would observe `hits + misses > 0` with
//! `entries == 0` — an impossible state (every miss inserts its slot
//! under the lock before the counter moves, and reset clears both under
//! the same lock).
//!
//! The cache is now **sharded** ([`siro_synth::CACHE_SHARDS`] ways), which
//! re-opens the same class of bug with a new shape: `snapshot()` and
//! `reset()` must hold *every* shard lock at once, or a reader could see
//! shard A post-reset and shard B pre-reset. The tests here exercise the
//! sharded form: the key sets are sized and spread to populate many
//! shards (asserted), so a single-shard-at-a-time snapshot/reset would
//! trip the invariant within a few rounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use siro_ir::IrVersion;
use siro_synth::{SynthesisConfig, TranslatorCache, CACHE_SHARDS};

/// The process-wide cache is shared by every test in this binary; they
/// must not interleave resets.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    match SERIAL.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Populates `n` distinct cache keys (same pair, varying limits) with an
/// empty corpus — milliseconds per key, real inserts/hits through the
/// sharded maps.
fn populate_keys(src: IrVersion, tgt: IrVersion, n: usize, salt: usize) {
    for i in 0..n {
        let mut config = SynthesisConfig::new(src, tgt);
        config.limits.max_exprs_per_type = 1 + (salt + i) % 7;
        config.limits.max_candidates_per_kind = 4 + (salt + i) % 13;
        // Miss, then hit, on the same key.
        TranslatorCache::get_or_synthesize(config.clone(), &[]).expect("empty-corpus synth");
        TranslatorCache::get_or_synthesize(config, &[]).expect("cached re-lookup");
    }
}

#[test]
fn snapshot_is_consistent_under_concurrent_reset() {
    const ROUNDS: usize = 20;
    const KEYS_PER_ROUND: usize = 24;

    let _guard = serial();
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let stop = Arc::new(AtomicBool::new(false));

    let spinner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = TranslatorCache::snapshot();
                assert!(
                    s.hits + s.misses == 0 || s.entries > 0,
                    "impossible snapshot: hits {} + misses {} with {} entries \
                     (counters and map read under different lock epochs)",
                    s.hits,
                    s.misses,
                    s.entries
                );
                observed += 1;
            }
            observed
        })
    };

    // Keep the per-key work tiny: an empty corpus synthesizes only the
    // warning shells, so each round is milliseconds while still driving
    // real insertions, hits, and misses through the sharded maps.
    for round in 0..ROUNDS {
        TranslatorCache::reset();
        populate_keys(src, tgt, KEYS_PER_ROUND, round * KEYS_PER_ROUND);
        let s = TranslatorCache::snapshot();
        assert_eq!(s.entries, KEYS_PER_ROUND, "round {round}");
        assert!(s.hits >= KEYS_PER_ROUND as u64, "round {round}");
        // The round's keys must span shards, or this test would not
        // exercise the cross-shard atomicity of snapshot()/reset().
        let populated = TranslatorCache::shard_snapshots()
            .iter()
            .filter(|s| s.entries > 0)
            .count();
        assert!(
            populated > 1,
            "round {round}: all {KEYS_PER_ROUND} keys landed in one shard"
        );
    }

    stop.store(true, Ordering::Relaxed);
    let observed = spinner
        .join()
        .expect("spinner panicked (invariant violated)");
    assert!(observed > 0, "the spinner never got to observe a snapshot");
    TranslatorCache::reset();
}

#[test]
fn cross_shard_snapshot_sums_the_per_shard_views() {
    const KEYS: usize = CACHE_SHARDS * 3;

    let _guard = serial();
    TranslatorCache::reset();
    populate_keys(IrVersion::V13_0, IrVersion::V3_0, KEYS, 7);

    let shards = TranslatorCache::shard_snapshots();
    assert_eq!(shards.len(), CACHE_SHARDS);
    let populated = shards.iter().filter(|s| s.entries > 0).count();
    assert!(
        populated > CACHE_SHARDS / 4,
        "{KEYS} distinct keys populated only {populated} shard(s) — \
         the shard hash is not spreading"
    );

    // With no concurrent mutation, the all-locks snapshot must equal the
    // sum of the per-shard views, and the totals must match what the
    // workload did: every key missed once and hit once.
    let s = TranslatorCache::snapshot();
    let hits: u64 = shards.iter().map(|s| s.hits).sum();
    let misses: u64 = shards.iter().map(|s| s.misses).sum();
    let entries: usize = shards.iter().map(|s| s.entries).sum();
    assert_eq!(s.hits, hits);
    assert_eq!(s.misses, misses);
    assert_eq!(s.entries, entries);
    assert_eq!(s.entries, KEYS);
    assert_eq!(s.misses, KEYS as u64);
    assert_eq!(s.hits, KEYS as u64);
    TranslatorCache::reset();
}
