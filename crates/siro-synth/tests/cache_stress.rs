//! Regression stress test for the `TranslatorCache::snapshot()` /
//! `reset()` race: snapshot used to read the hit/miss counters *before*
//! taking the map lock, so a concurrent `reset()` could zero the map in
//! between and a reader would observe `hits + misses > 0` with
//! `entries == 0` — an impossible state (every miss inserts its slot
//! under the lock before the counter moves, and reset clears both under
//! the same lock).
//!
//! With the fix (counters read under the map lock) the invariant below
//! holds for every observable interleaving; with the old code this test
//! fails within a few rounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use siro_ir::IrVersion;
use siro_synth::{SynthesisConfig, TranslatorCache};

#[test]
fn snapshot_is_consistent_under_concurrent_reset() {
    const ROUNDS: usize = 20;
    const KEYS_PER_ROUND: usize = 6;

    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let stop = Arc::new(AtomicBool::new(false));

    let spinner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = TranslatorCache::snapshot();
                assert!(
                    s.hits + s.misses == 0 || s.entries > 0,
                    "impossible snapshot: hits {} + misses {} with {} entries \
                     (counters and map read under different lock epochs)",
                    s.hits,
                    s.misses,
                    s.entries
                );
                observed += 1;
            }
            observed
        })
    };

    // Keep the per-key work tiny: an empty corpus synthesizes only the
    // warning shells, so each round is milliseconds while still driving
    // real insertions, hits, and misses through the cache.
    for round in 0..ROUNDS {
        TranslatorCache::reset();
        for i in 0..KEYS_PER_ROUND {
            let mut config = SynthesisConfig::new(src, tgt);
            config.limits.max_exprs_per_type = 1 + (round * KEYS_PER_ROUND + i) % 7;
            config.limits.max_candidates_per_kind = 8;
            // Miss, then hit, on the same key.
            TranslatorCache::get_or_synthesize(config.clone(), &[]).expect("empty-corpus synth");
            TranslatorCache::get_or_synthesize(config, &[]).expect("cached re-lookup");
        }
        let s = TranslatorCache::snapshot();
        assert_eq!(s.entries, KEYS_PER_ROUND, "round {round}");
        assert!(s.hits >= KEYS_PER_ROUND as u64, "round {round}");
    }

    stop.store(true, Ordering::Relaxed);
    let observed = spinner
        .join()
        .expect("spinner panicked (invariant violated)");
    assert!(observed > 0, "the spinner never got to observe a snapshot");
    TranslatorCache::reset();
}
