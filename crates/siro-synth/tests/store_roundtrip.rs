//! Round-trip property of the persistent translator store: an outcome
//! serialized to disk and reloaded must behave *byte-identically* to the
//! original — same rendered source, structurally equal translator, and
//! the same output text for every corpus module — under every validation
//! mode. Re-saving the reloaded outcome must reproduce the entry bytes
//! exactly (the format is canonical).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use siro_core::Skeleton;
use siro_ir::{write, IrVersion};
use siro_synth::store::{decode_entry, encode_entry, peek_key};
use siro_synth::{
    corpus_fingerprint, oracle_corpus, OracleTest, StoreConfig, StoreKey, SynthesisConfig,
    SynthesisOutcome, Synthesizer, TranslatorStore, ValidationMode,
};

/// A unique scratch directory per call; best-effort removed by `TempDir`'s
/// drop so a failing test leaves the evidence behind only until re-run.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "siro-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("creating temp store dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn synthesize(
    src: IrVersion,
    tgt: IrVersion,
    take: Option<usize>,
) -> (Vec<OracleTest>, SynthesisOutcome) {
    let mut tests = oracle_corpus(src, tgt);
    if let Some(n) = take {
        tests.truncate(n);
    }
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .unwrap_or_else(|e| panic!("{src}->{tgt}: {e}"));
    (tests, outcome)
}

/// Translate every corpus module with both translators and require the
/// written text to match byte for byte.
fn assert_identical_translations(
    tgt: IrVersion,
    tests: &[OracleTest],
    original: &SynthesisOutcome,
    reloaded: &SynthesisOutcome,
) {
    let skel = Skeleton::new(tgt);
    for test in tests {
        let a = skel
            .translate_module(&test.module, &original.translator)
            .unwrap_or_else(|e| panic!("original {}: {e}", test.name));
        let b = skel
            .translate_module(&test.module, &reloaded.translator)
            .unwrap_or_else(|e| panic!("reloaded {}: {e}", test.name));
        assert_eq!(
            write::write_module(&a),
            write::write_module(&b),
            "translation of `{}` diverged after a store round-trip",
            test.name
        );
    }
}

fn roundtrip_pair(src: IrVersion, tgt: IrVersion, take: Option<usize>) {
    let tmp = TempDir::new("roundtrip");
    let (tests, outcome) = synthesize(src, tgt, take);
    let key = StoreKey::new(&SynthesisConfig::new(src, tgt), corpus_fingerprint(&tests));
    let store = TranslatorStore::open(StoreConfig::at(&tmp.0)).expect("open store");
    store.save(&key, &outcome).expect("save entry");

    let path = store.entry_path(&key);
    let bytes = std::fs::read(&path).expect("entry file exists after save");
    assert_eq!(
        peek_key(&bytes),
        Some(key),
        "peek_key reads the header back"
    );

    for mode in [
        ValidationMode::Off,
        ValidationMode::Checksum,
        ValidationMode::Full,
    ] {
        let reloaded = decode_entry(&bytes, &key, mode, &tests)
            .unwrap_or_else(|e| panic!("{src}->{tgt} mode {mode}: {e}"));
        assert_eq!(reloaded.rendered, outcome.rendered, "mode {mode}");
        assert!(
            reloaded.translator.structurally_eq(&outcome.translator),
            "{src}->{tgt} mode {mode}: reloaded translator differs structurally"
        );
        assert_eq!(reloaded.report.tests_used, outcome.report.tests_used);
        assert_eq!(reloaded.report.pair, outcome.report.pair);
        assert_eq!(
            reloaded.report.candidate_counts,
            outcome.report.candidate_counts
        );
        assert_eq!(reloaded.report.per_test, outcome.report.per_test);
        assert_identical_translations(tgt, &tests, &outcome, &reloaded);

        // The format is canonical: re-encoding the reloaded outcome
        // reproduces the on-disk bytes exactly.
        assert_eq!(
            encode_entry(&key, &reloaded),
            bytes,
            "{src}->{tgt} mode {mode}: re-encoding is not canonical"
        );
    }

    // The store's own load path agrees with direct decoding.
    let via_store = store.load(&key, &tests).expect("store.load hits");
    assert_eq!(via_store.rendered, outcome.rendered);
    assert!(via_store.translator.structurally_eq(&outcome.translator));
}

#[test]
fn roundtrip_downgrade_pair_full_corpus() {
    roundtrip_pair(IrVersion::V13_0, IrVersion::V3_6, None);
}

#[test]
fn roundtrip_modern_pair_subset() {
    roundtrip_pair(IrVersion::V17_0, IrVersion::V12_0, Some(10));
}

#[test]
fn roundtrip_upgrade_pair_subset() {
    roundtrip_pair(IrVersion::V3_6, IrVersion::V13_0, Some(10));
}

#[test]
fn lru_gc_keeps_the_most_recently_used_entries() {
    let tmp = TempDir::new("gc");
    let (tests, outcome) = synthesize(IrVersion::V13_0, IrVersion::V3_6, Some(6));
    let key = StoreKey::new(
        &SynthesisConfig::new(IrVersion::V13_0, IrVersion::V3_6),
        corpus_fingerprint(&tests),
    );
    let store = TranslatorStore::open(StoreConfig::at(&tmp.0)).expect("open store");
    store.save(&key, &outcome).expect("save entry");
    let bytes = std::fs::read(store.entry_path(&key)).expect("read entry");

    // Fabricate older siblings (GC orders purely by mtime, so content-
    // identical copies under other names are fine).
    let past = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
    for name in ["aaa-old.sirt", "bbb-older.sirt"] {
        let p = tmp.0.join(name);
        std::fs::write(&p, &bytes).expect("write sibling");
        let f = std::fs::File::options()
            .write(true)
            .open(&p)
            .expect("open sibling");
        f.set_modified(past).expect("age sibling");
    }

    // Cap at exactly one entry's size: the two aged copies go, the real
    // (recently written) entry survives.
    let report = store.gc(bytes.len() as u64).expect("gc");
    assert_eq!(report.scanned, 3);
    assert_eq!(report.removed, 2);
    assert_eq!(report.bytes_after, bytes.len() as u64);
    assert!(
        store.entry_path(&key).exists(),
        "LRU evicted the wrong entry"
    );

    // Cap zero clears the store entirely.
    let report = store.gc(0).expect("gc to zero");
    assert_eq!(report.removed, 1);
    assert_eq!(report.bytes_after, 0);
}
