//! Synthesis across diverse version pairs, determinism, and failure
//! injection (corrupted oracles, insufficient corpora).

use siro_core::Skeleton;
use siro_ir::{interp::Machine, IrVersion};
use siro_synth::{OracleTest, SynthError, SynthesisConfig, Synthesizer};

fn oracle_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

fn check_pair(src: IrVersion, tgt: IrVersion) {
    let tests = oracle_tests(src, tgt);
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .unwrap_or_else(|e| panic!("{src}->{tgt}: {e}"));
    let skel = Skeleton::new(tgt);
    for case in siro_testcases::corpus_for_pair(src, tgt) {
        let m = case.build(src);
        let t = skel
            .translate_module(&m, &outcome.translator)
            .unwrap_or_else(|e| panic!("{src}->{tgt} {}: {e}", case.name));
        siro_ir::verify::verify_module(&t)
            .unwrap_or_else(|e| panic!("{src}->{tgt} {}: {e}", case.name));
        assert_eq!(
            Machine::new(&t).run_main().unwrap().return_int(),
            Some(case.oracle),
            "{src}->{tgt} {}",
            case.name
        );
    }
}

#[test]
fn longest_gap_pair_17_to_3_0() {
    check_pair(IrVersion::V17_0, IrVersion::V3_0);
}

#[test]
fn adjacent_pair_3_6_to_3_0() {
    check_pair(IrVersion::V3_6, IrVersion::V3_0);
}

#[test]
fn opaque_pointer_source_15_to_3_6() {
    check_pair(IrVersion::V15_0, IrVersion::V3_6);
}

#[test]
fn same_version_pair_is_the_degenerate_case() {
    // Translating 13.0 -> 13.0 must also synthesize cleanly (identity-ish
    // translators).
    check_pair(IrVersion::V13_0, IrVersion::V13_0);
}

#[test]
fn synthesis_is_deterministic() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests = oracle_tests(src, tgt);
    let a = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
    let b = Synthesizer::for_pair(src, tgt).synthesize(&tests).unwrap();
    assert_eq!(a.rendered, b.rendered);
    assert_eq!(
        a.report.assignments_validated,
        b.report.assignments_validated
    );
    assert_eq!(a.report.candidate_counts, b.report.candidate_counts);
    assert_eq!(a.report.refined_counts, b.report.refined_counts);
}

#[test]
fn corrupted_oracle_is_a_conflict() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let mut tests = oracle_tests(src, tgt);
    // Poison one oracle: no per-test translator can satisfy it.
    let victim = tests
        .iter_mut()
        .find(|t| t.name == "mul_asym")
        .expect("mul_asym present");
    victim.oracle += 1;
    let err = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .unwrap_err();
    match err {
        SynthError::Conflict { test } => assert_eq!(test, "mul_asym"),
        other => panic!("expected conflict, got {other}"),
    }
}

#[test]
fn contradictory_oracles_refine_to_emptiness() {
    // Two copies of the same program with different oracles: the first
    // installs survivors, the second intersects them away (or simply finds
    // no passing translator).
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let base = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "add_asym")
        .unwrap();
    let tests = vec![
        OracleTest {
            name: "good".into(),
            module: base.build(src),
            oracle: base.oracle,
        },
        OracleTest {
            name: "evil-twin".into(),
            module: base.build(src),
            oracle: base.oracle + 5,
        },
    ];
    let err = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .unwrap_err();
    assert!(matches!(err, SynthError::Conflict { .. }), "{err}");
}

#[test]
fn empty_corpus_yields_warning_translators_for_everything() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let outcome = Synthesizer::for_pair(src, tgt).synthesize(&[]).unwrap();
    // Every common kind exists but only as the warning shell.
    assert_eq!(
        outcome.translator.covered_kinds().len(),
        src.common_instructions(tgt).len()
    );
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "ret_const")
        .unwrap();
    let err = Skeleton::new(tgt)
        .translate_module(&case.build(src), &outcome.translator)
        .unwrap_err();
    assert!(
        matches!(err, siro_core::TranslateError::UnseenPredicate { .. }),
        "{err}"
    );
    assert!(outcome.rendered.contains("warn_unseen_predicate"));
}

#[test]
fn single_threaded_synthesis_matches_parallel() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests: Vec<OracleTest> = oracle_tests(src, tgt).into_iter().take(12).collect();
    let mut cfg1 = SynthesisConfig::new(src, tgt);
    cfg1.threads = 1;
    let a = Synthesizer::new(cfg1).synthesize(&tests).unwrap();
    let mut cfg8 = SynthesisConfig::new(src, tgt);
    cfg8.threads = 8;
    let b = Synthesizer::new(cfg8).synthesize(&tests).unwrap();
    assert_eq!(a.rendered, b.rendered);
}

#[test]
fn ordering_off_still_converges() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests = oracle_tests(src, tgt);
    let mut cfg = SynthesisConfig::new(src, tgt);
    cfg.opt_ordering = false;
    cfg.max_assignments_per_test = 2_000_000;
    let outcome = Synthesizer::new(cfg).synthesize(&tests).unwrap();
    // Same translator quality, possibly more work.
    let skel = Skeleton::new(tgt);
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "br_cond_false")
        .unwrap();
    let t = skel
        .translate_module(&case.build(src), &outcome.translator)
        .unwrap();
    assert_eq!(
        Machine::new(&t).run_main().unwrap().return_int(),
        Some(case.oracle)
    );
}
