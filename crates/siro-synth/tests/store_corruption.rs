//! The crash/corruption matrix: every way an entry file can be damaged —
//! truncation, bit flips, format-version skew, corpus-fingerprint skew,
//! a writer killed mid-write — must degrade to cold synthesis (counted as
//! `store_corrupt`), never panic, and never serve a wrong translation.
//! The subsequent write-back must repair the damaged file in place.
//!
//! The store attachment and its counters are process-global, so the whole
//! matrix runs inside ONE `#[test]` with scenario labels in every
//! assertion message.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use siro_ir::{IrVersion, Opcode};
use siro_synth::persist::fnv1a64;
use siro_synth::{
    corpus_fingerprint, oracle_corpus, reset_store_stats, set_active_store, store_stats,
    StoreConfig, StoreKey, SynthFault, SynthesisConfig, TranslatorCache, TranslatorStore,
};

/// Rewrites the trailing FNV-1a checksum so a deliberately *semantic*
/// corruption (format bump, fingerprint skew) is not masked by the
/// checksum check — the deeper validation layer must catch it.
fn fix_checksum(bytes: &mut [u8]) {
    let body_len = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_be_bytes());
}

/// One corruption scenario: how to damage the pristine entry bytes.
struct Scenario {
    label: &'static str,
    damage: fn(&[u8]) -> Vec<u8>,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        label: "truncate-half",
        damage: |b| b[..b.len() / 2].to_vec(),
    },
    Scenario {
        label: "truncate-one-byte",
        damage: |b| b[..b.len() - 1].to_vec(),
    },
    Scenario {
        label: "truncate-to-ten-bytes",
        damage: |b| b[..10].to_vec(),
    },
    Scenario {
        label: "truncate-to-empty",
        damage: |_| Vec::new(),
    },
    Scenario {
        label: "bit-flip-mid-body",
        damage: |b| {
            let mut v = b.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x40;
            v
        },
    },
    Scenario {
        label: "bit-flip-in-checksum",
        damage: |b| {
            let mut v = b.to_vec();
            let last = v.len() - 1;
            v[last] ^= 0x01;
            v
        },
    },
    Scenario {
        // A future (or past) build wrote this entry: the format version
        // lives at bytes [4..6], right after the magic.
        label: "format-version-bump",
        damage: |b| {
            let mut v = b.to_vec();
            v[4..6].copy_from_slice(&2u16.to_be_bytes());
            fix_checksum(&mut v);
            v
        },
    },
    Scenario {
        // The oracle corpus changed since the entry was written: the
        // fingerprint lives at [14..22] (magic 4 + format 2 + versions 8).
        label: "corpus-fingerprint-skew",
        damage: |b| {
            let mut v = b.to_vec();
            v[14] ^= 0xff;
            fix_checksum(&mut v);
            v
        },
    },
    Scenario {
        label: "garbage-with-right-length",
        damage: |b| vec![0xa5; b.len()],
    },
];

#[test]
fn corruption_matrix_degrades_to_cold_synthesis() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("siro-store-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(TranslatorStore::open(StoreConfig::at(&dir)).expect("open store"));
    set_active_store(Some(Arc::clone(&store)));
    reset_store_stats();

    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests = oracle_corpus(src, tgt);
    let config = SynthesisConfig::new(src, tgt);
    let key = StoreKey::new(&config, corpus_fingerprint(&tests));
    let entry_path = store.entry_path(&key);

    // Populate: the first lookup cold-synthesizes and writes back.
    TranslatorCache::reset();
    let first = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).expect("synthesis");
    assert!(first.fresh && !first.from_store);
    assert_eq!(store_stats().writes, 1, "cold synthesis writes back");
    let pristine = std::fs::read(&entry_path).expect("pristine entry exists");
    let rendered = first.outcome.rendered.clone();
    drop(first);

    // Sanity: an undamaged entry warm-loads as a store hit.
    TranslatorCache::reset();
    let warm = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).expect("reload");
    assert!(!warm.fresh && warm.from_store, "pristine entry must hit");
    assert_eq!(warm.outcome.rendered, rendered);
    drop(warm);

    for scenario in SCENARIOS {
        let label = scenario.label;
        std::fs::write(&entry_path, (scenario.damage)(&pristine))
            .unwrap_or_else(|e| panic!("{label}: writing damaged entry: {e}"));
        TranslatorCache::reset();
        let corrupt_before = store_stats().corrupt;
        let writes_before = store_stats().writes;

        // No panic, falls back to cold synthesis, and the answer is the
        // same translator the pristine run produced.
        let lookup = TranslatorCache::lookup_or_synthesize(config.clone(), &tests)
            .unwrap_or_else(|e| panic!("{label}: lookup failed: {e}"));
        assert!(
            lookup.fresh && !lookup.from_store,
            "{label}: a damaged entry must not serve from the store"
        );
        assert_eq!(
            lookup.outcome.rendered, rendered,
            "{label}: cold fallback produced a different translator"
        );
        assert_eq!(
            store_stats().corrupt,
            corrupt_before + 1,
            "{label}: the rejected entry must be counted"
        );
        assert_eq!(
            store_stats().writes,
            writes_before + 1,
            "{label}: the fallback synthesis must write back a repair"
        );

        // The write-back repaired the file in place (timings in the
        // report differ run to run, so compare behaviour, not bytes):
        // the store serves the same translator again.
        TranslatorCache::reset();
        let again = TranslatorCache::lookup_or_synthesize(config.clone(), &tests)
            .unwrap_or_else(|e| panic!("{label}: post-repair lookup: {e}"));
        assert!(
            again.from_store,
            "{label}: the repaired entry must hit again"
        );
        assert_eq!(
            again.outcome.rendered, rendered,
            "{label}: the repaired entry serves a different translator"
        );
        // Restore the canonical pristine bytes so the next scenario's
        // offsets refer to a known layout.
        std::fs::write(&entry_path, &pristine)
            .unwrap_or_else(|e| panic!("{label}: restoring pristine entry: {e}"));
    }

    // Kill-mid-write: a crashed writer leaves an orphaned temp file next
    // to an intact old entry. Readers still hit the old entry (rename is
    // atomic — old or new, never torn), and GC sweeps the orphan once it
    // is stale.
    let orphan = dir.join(format!(".{}.99999.0.tmp", key.file_name()));
    std::fs::write(&orphan, &pristine[..pristine.len() / 3]).expect("write orphan tmp");
    TranslatorCache::reset();
    let lookup = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).expect("lookup");
    assert!(
        lookup.from_store,
        "an orphaned temp file must not shadow the intact entry"
    );
    // Fresh orphans are left alone (a live writer may own them) ...
    let report = store.gc(u64::MAX).expect("gc");
    assert_eq!(report.stale_tmp_removed, 0);
    assert!(orphan.exists());
    // ... but stale ones are swept.
    let old = SystemTime::now() - Duration::from_secs(3600);
    std::fs::File::options()
        .write(true)
        .open(&orphan)
        .expect("open orphan")
        .set_modified(old)
        .expect("age orphan");
    let report = store.gc(u64::MAX).expect("gc again");
    assert_eq!(report.stale_tmp_removed, 1);
    assert!(!orphan.exists(), "stale temp file survived gc");
    assert!(entry_path.exists(), "gc must not touch live entries");

    // Fault-injected configs never touch the store, in either direction.
    let writes_before = store_stats().writes;
    let mut faulty = SynthesisConfig::new(src, tgt);
    faulty.fault = Some(SynthFault::ForgetRefinement(Opcode::Add));
    assert!(
        !TranslatorCache::warm_from_store(&faulty, &tests),
        "fault configs must not warm from the store"
    );
    let lookup = TranslatorCache::lookup_or_synthesize(faulty, &tests).expect("faulty synthesis");
    assert!(lookup.fresh && !lookup.from_store);
    assert_eq!(
        store_stats().writes,
        writes_before,
        "a fault-injected translator must never be persisted"
    );

    set_active_store(None);
    let _ = std::fs::remove_dir_all(&dir);
}
