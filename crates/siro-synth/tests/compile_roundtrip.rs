//! The compiled tier's persistence and equivalence contract:
//!
//! * compile → `encode_compiled` → `decode_compiled` → translate is
//!   byte-identical to the in-process compiled translator AND to the
//!   interpreter, across the whole oracle corpus (the property the
//!   `.sirx` format must never lose);
//! * a store-attached lookup eagerly writes the `.sirx` sibling, and a
//!   later process adopts it (`sirx_loaded`) instead of re-lowering;
//! * every way a `.sirx` can be damaged — truncation, bit flips, magic /
//!   format skew, garbage — degrades to a fresh lowering (counted as
//!   `sirx_corrupt`, repaired by write-back), never panics, and never
//!   changes a served byte.
//!
//! Compile counters and the store attachment are process-global, so the
//! whole matrix runs inside ONE `#[test]` with scenario labels in every
//! assertion message (same layout as `store_corruption.rs`).

use std::path::PathBuf;
use std::sync::Arc;

use siro_core::Skeleton;
use siro_ir::{write, IrVersion};
use siro_synth::persist::fnv1a64;
use siro_synth::store::{decode_compiled, encode_compiled};
use siro_synth::{
    compile_stats, corpus_fingerprint, oracle_corpus, reset_compile_stats, set_active_store,
    set_compile_enabled, translate_module_owned_tiered, OracleTest, StoreConfig, StoreKey,
    SynthesisConfig, SynthesisOutcome, TranslatorCache, TranslatorStore,
};

/// Rewrites the trailing FNV-1a checksum so a deliberately *semantic*
/// corruption (magic/format skew) reaches the deeper validation layer
/// instead of being masked by the checksum check.
fn fix_checksum(bytes: &mut [u8]) {
    let body_len = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_be_bytes());
}

struct Scenario {
    label: &'static str,
    damage: fn(&[u8]) -> Vec<u8>,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        label: "truncate-half",
        damage: |b| b[..b.len() / 2].to_vec(),
    },
    Scenario {
        label: "truncate-to-empty",
        damage: |_| Vec::new(),
    },
    Scenario {
        label: "bit-flip-mid-body",
        damage: |b| {
            let mut v = b.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x40;
            v
        },
    },
    Scenario {
        label: "bad-magic",
        damage: |b| {
            let mut v = b.to_vec();
            v[0] ^= 0xff;
            fix_checksum(&mut v);
            v
        },
    },
    Scenario {
        // A future build wrote this entry: format version at [4..6].
        label: "format-version-bump",
        damage: |b| {
            let mut v = b.to_vec();
            v[4..6].copy_from_slice(&2u16.to_be_bytes());
            fix_checksum(&mut v);
            v
        },
    },
    Scenario {
        // Valid checksum over a scrambled body: the symbolic decode (or
        // the re-lowering it feeds) must reject it.
        label: "scramble-body-fixed-checksum",
        damage: |b| {
            let mut v = b.to_vec();
            let start = v.len() / 3;
            let end = v.len() - 8;
            for x in &mut v[start..end] {
                *x ^= 0x5a;
            }
            fix_checksum(&mut v);
            v
        },
    },
    Scenario {
        label: "garbage-with-right-length",
        damage: |b| vec![0xa5; b.len()],
    },
];

/// Asserts the compiled tier (push driver, the decoded copy, and the
/// in-place tiered path) serves every corpus module byte-identically to
/// the interpreter.
fn assert_tiers_agree(
    label: &str,
    outcome: &SynthesisOutcome,
    decoded: Option<&siro_synth::CompiledTranslator>,
    tgt: IrVersion,
    tests: &[OracleTest],
) {
    let compiled = outcome.compiled().expect("translator must lower");
    let skeleton = Skeleton::new(tgt);
    for test in tests {
        let name = &test.name;
        let slow = skeleton
            .translate_module(&test.module, &outcome.translator)
            .unwrap_or_else(|e| panic!("{label}/{name}: interpreter: {e}"));
        let slow = write::write_module(&slow);
        let fast = compiled
            .translate_module(&test.module)
            .unwrap_or_else(|e| panic!("{label}/{name}: compiled: {e}"));
        assert_eq!(
            write::write_module(&fast),
            slow,
            "{label}/{name}: compiled output differs from the interpreter"
        );
        let tiered = translate_module_owned_tiered(outcome, tgt, test.module.clone())
            .unwrap_or_else(|e| panic!("{label}/{name}: tiered: {e}"));
        assert_eq!(
            write::write_module(&tiered),
            slow,
            "{label}/{name}: tiered owned path differs from the interpreter"
        );
        if let Some(d) = decoded {
            let loaded = d
                .translate_module(&test.module)
                .unwrap_or_else(|e| panic!("{label}/{name}: decoded compiled: {e}"));
            assert_eq!(
                write::write_module(&loaded),
                slow,
                "{label}/{name}: persisted+reloaded compiled output differs"
            );
        }
    }
}

#[test]
fn sirx_roundtrip_and_corruption_matrix() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("siro-sirx-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(TranslatorStore::open(StoreConfig::at(&dir)).expect("open store"));
    set_active_store(Some(Arc::clone(&store)));
    set_compile_enabled(true);
    reset_compile_stats();

    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests = oracle_corpus(src, tgt);
    let config = SynthesisConfig::new(src, tgt);
    let key = StoreKey::new(&config, corpus_fingerprint(&tests));
    let sirx_path = store.compiled_path(&key);

    // Populate: a store-attached cold synthesis lowers eagerly and writes
    // the `.sirx` sibling next to the `.sirt` entry.
    TranslatorCache::reset();
    let first = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).expect("synthesis");
    assert!(first.fresh && !first.from_store);
    assert!(
        sirx_path.exists(),
        "cold synthesis must write the compiled sibling"
    );
    assert_eq!(compile_stats().sirx_writes, 1);
    let compiled = first.outcome.compiled().expect("lowering succeeds");

    // Property: compile → persist (in memory) → load → translate is
    // byte-identical, across the corpus, against both the live compiled
    // translator and the interpreter.
    let bytes = encode_compiled(&key, &compiled);
    let pristine = std::fs::read(&sirx_path).expect("sirx bytes");
    assert_eq!(bytes, pristine, "save_compiled must write encode_compiled");
    let decoded = decode_compiled(&bytes, &key).expect("decode pristine");
    assert_tiers_agree("roundtrip", &first.outcome, Some(&decoded), tgt, &tests);
    drop(first);

    // A fresh process (cache reset) adopts the persisted `.sirx` instead
    // of re-lowering, and serves identical bytes.
    TranslatorCache::reset();
    reset_compile_stats();
    let warm = TranslatorCache::lookup_or_synthesize(config.clone(), &tests).expect("reload");
    assert!(warm.from_store, "pristine entry must warm from the store");
    assert_eq!(
        compile_stats().sirx_loaded,
        1,
        "the compiled sibling must be adopted, not re-lowered"
    );
    assert_eq!(compile_stats().lowered, 0, "adoption skips the lowering");
    assert_tiers_agree("warm-adopt", &warm.outcome, None, tgt, &tests);
    drop(warm);

    // Corruption matrix: every damaged `.sirx` is rejected (counted),
    // serving degrades to a fresh lowering with identical bytes, and the
    // write-back repairs the file for the next process.
    for scenario in SCENARIOS {
        let label = scenario.label;
        std::fs::write(&sirx_path, (scenario.damage)(&pristine))
            .unwrap_or_else(|e| panic!("{label}: writing damaged sirx: {e}"));
        TranslatorCache::reset();
        reset_compile_stats();

        let lookup = TranslatorCache::lookup_or_synthesize(config.clone(), &tests)
            .unwrap_or_else(|e| panic!("{label}: lookup failed: {e}"));
        assert!(
            lookup.from_store,
            "{label}: the intact .sirt entry must still serve"
        );
        let stats = compile_stats();
        assert_eq!(
            stats.sirx_corrupt, 1,
            "{label}: the rejected compiled entry must be counted"
        );
        assert_eq!(stats.sirx_loaded, 0, "{label}: damaged entry must not load");
        assert_eq!(
            stats.sirx_writes, 1,
            "{label}: the fresh lowering must write back a repair"
        );
        assert_tiers_agree(label, &lookup.outcome, None, tgt, &tests);
        drop(lookup);

        // The repair round-trips: the next process adopts it again.
        let repaired = std::fs::read(&sirx_path).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(repaired, pristine, "{label}: repair must restore the entry");

        std::fs::write(&sirx_path, &pristine)
            .unwrap_or_else(|e| panic!("{label}: restoring pristine sirx: {e}"));
    }

    // decode_compiled against the wrong key is a corruption, not a panic
    // and not a silently re-keyed translator.
    let other_key = StoreKey::new(&SynthesisConfig::new(src, IrVersion::V3_7), 0);
    assert!(
        decode_compiled(&pristine, &other_key).is_err(),
        "a compiled entry must never decode under a different key"
    );

    set_active_store(None);
    let _ = std::fs::remove_dir_all(&dir);
}
