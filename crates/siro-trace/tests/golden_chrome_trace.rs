//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The rendered JSON for a fixed snapshot is compared byte-for-byte
//! against `tests/golden/trace.json`, so any accidental change to the
//! wire shape (field names, number formatting, escaping, ordering) fails
//! loudly. Regenerate deliberately with:
//!
//! ```text
//! SIRO_REGEN_GOLDEN=1 cargo test -p siro-trace --test golden_chrome_trace
//! ```

use std::path::PathBuf;

use siro_trace::export::{chrome_trace_json, parse_chrome_trace};
use siro_trace::json::{self, Value};
use siro_trace::{SpanRecord, TraceSnapshot};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace.json")
}

/// A hand-built snapshot exercising the interesting cases: nesting,
/// multiple threads, sub-microsecond durations, and detail strings that
/// need JSON escaping.
fn fixture() -> TraceSnapshot {
    TraceSnapshot {
        spans: vec![
            SpanRecord {
                name: "synth.run".into(),
                detail: "13.0->3.6 (60 tests)".into(),
                tid: 1,
                id: 1,
                parent: None,
                start_ns: 0,
                dur_ns: 18_232_000,
            },
            SpanRecord {
                name: "synth.generate".into(),
                detail: String::new(),
                tid: 1,
                id: 2,
                parent: Some(1),
                start_ns: 1_250,
                dur_ns: 5_782_125,
            },
            SpanRecord {
                name: "synth.test".into(),
                detail: "escaped \"quotes\" and\nnewline \\ backslash".into(),
                tid: 2,
                id: 3,
                parent: None,
                start_ns: 2_500,
                dur_ns: 999, // sub-microsecond: exercises the .nnn decimals
            },
        ],
        counters: [
            ("synth.probes".to_string(), 1796u64),
            ("synth.profile_rows".to_string(), 254u64),
        ]
        .into_iter()
        .collect(),
    }
}

#[test]
fn exporter_output_matches_the_golden_file() {
    let rendered = chrome_trace_json(&fixture());
    let path = golden_path();
    if std::env::var_os("SIRO_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}; regenerate with SIRO_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "Chrome trace JSON drifted from tests/golden/trace.json; if the \
         change is intentional, regenerate with SIRO_REGEN_GOLDEN=1"
    );
}

/// The golden file itself satisfies the Chrome `trace_event` schema that
/// Perfetto / `chrome://tracing` expect: object form, complete events,
/// microsecond timestamps, and our id/parent/detail args.
#[test]
fn golden_file_has_the_chrome_trace_schema() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let doc = json::parse(&text).expect("golden file is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), fixture().spans.len());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(ev.get("cat").and_then(Value::as_str), Some("siro"));
        assert_eq!(ev.get("pid").and_then(Value::as_u64), Some(1));
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        assert!(ev.get("tid").and_then(Value::as_u64).is_some());
        assert!(ev.get("ts").and_then(Value::as_f64).is_some());
        assert!(ev.get("dur").and_then(Value::as_f64).is_some());
        let args = ev.get("args").expect("args object");
        assert!(args.get("span_id").and_then(Value::as_u64).is_some());
        assert!(args.get("detail").and_then(Value::as_str).is_some());
    }
    assert!(doc.get("siroCounters").and_then(Value::as_obj).is_some());
}

/// Parsing the golden file reconstructs the fixture exactly — ids,
/// parents, nanosecond timings, escaped details, and counters.
#[test]
fn golden_file_round_trips_to_the_fixture() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let parsed = parse_chrome_trace(&text).expect("golden file parses");
    assert_eq!(parsed, fixture());
}
