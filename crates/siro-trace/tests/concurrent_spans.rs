//! Concurrency tests for the span collector: nesting links survive many
//! threads recording at once, buffers flush children before their
//! parents, the mid-span threshold flush bounds per-thread memory, and
//! counters never drop increments under contention.
//!
//! These run in their own process (integration test binary), so enabling
//! tracing globally here cannot leak into any other test suite. Within
//! the binary the collector is still process-global, so the tests
//! serialize on a static mutex.

use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Many threads each record a root span with nested children; every
/// record keeps the right thread id and parent link, and within the
/// collected order every child precedes its parent (children close — and
/// are buffered — first; the whole per-thread buffer lands in the sink as
/// one contiguous block when the root closes).
#[test]
fn nesting_is_correct_across_threads() {
    let _g = guard();
    siro_trace::set_enabled(true);
    siro_trace::reset();

    const THREADS: usize = 4;
    const CHILDREN: usize = 3;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let root = siro_trace::span!("cc.root", "thread {}", t);
                let root_id = root.id().expect("tracing is on");
                for i in 0..CHILDREN {
                    let child = siro_trace::span!("cc.child", "{}:{}", t, i);
                    assert_ne!(child.id(), Some(root_id));
                    siro_trace::counter("cc.ops", 1);
                }
                // Root drops here, flushing this thread's buffer.
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    siro_trace::set_enabled(false);
    let snap = siro_trace::snapshot();
    let roots: Vec<_> = snap.spans.iter().filter(|s| s.name == "cc.root").collect();
    let children: Vec<_> = snap.spans.iter().filter(|s| s.name == "cc.child").collect();
    assert_eq!(roots.len(), THREADS);
    assert_eq!(children.len(), THREADS * CHILDREN);
    assert_eq!(
        snap.counters.get("cc.ops"),
        Some(&((THREADS * CHILDREN) as u64))
    );

    // Thread ids are distinct per thread and shared within one.
    let mut tids: Vec<u64> = roots.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), THREADS, "each thread gets its own tid");
    for child in &children {
        let root = roots
            .iter()
            .find(|r| Some(r.id) == child.parent)
            .unwrap_or_else(|| panic!("child {} has no root parent", child.detail));
        assert_eq!(child.tid, root.tid, "nesting never crosses threads");
        assert!(child.start_ns >= root.start_ns);
    }

    // Flush ordering: every span's parent appears *after* it in the
    // collected order (children finish first, buffers are appended whole).
    let index_of = |id: u64| snap.spans.iter().position(|s| s.id == id).unwrap();
    for s in &snap.spans {
        if let Some(p) = s.parent {
            assert!(
                index_of(s.id) < index_of(p),
                "{}({}) flushed after its parent",
                s.name,
                s.detail
            );
        }
    }
}

/// A long-lived root span must not buffer its children unboundedly: once
/// the thread-local buffer crosses the flush threshold the children land
/// in the shared collector even though the root is still open — visible
/// to a snapshot taken from *another* thread (which cannot flush ours).
#[test]
fn threshold_flush_publishes_children_while_root_is_open() {
    let _g = guard();
    siro_trace::set_enabled(true);
    siro_trace::reset();

    const CHILDREN: usize = 100; // comfortably past the 64-span threshold
    let root = siro_trace::span!("thresh.root");
    for i in 0..CHILDREN {
        let _c = siro_trace::span!("thresh.child", "{}", i);
    }

    // Snapshot from a helper thread: it flushes only *its own* (empty)
    // buffer, so whatever it sees of ours got there via threshold flush.
    let mid = std::thread::spawn(siro_trace::snapshot)
        .join()
        .expect("snapshot thread");
    let flushed = mid
        .spans
        .iter()
        .filter(|s| s.name == "thresh.child")
        .count();
    assert!(
        flushed >= 64,
        "expected a threshold flush before the root closed, saw {flushed}"
    );
    assert!(
        !mid.spans.iter().any(|s| s.name == "thresh.root"),
        "the still-open root must not be in the collector yet"
    );

    drop(root);
    siro_trace::set_enabled(false);
    let full = siro_trace::snapshot();
    assert_eq!(
        full.spans
            .iter()
            .filter(|s| s.name == "thresh.child")
            .count(),
        CHILDREN
    );
    assert_eq!(
        full.spans
            .iter()
            .filter(|s| s.name == "thresh.root")
            .count(),
        1
    );
}

/// Counter increments are atomic: heavy contention loses nothing.
#[test]
fn counters_do_not_drop_increments_under_contention() {
    let _g = guard();
    siro_trace::set_enabled(true);
    siro_trace::reset();

    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..PER_THREAD {
                    siro_trace::counter("contended.total", 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    siro_trace::set_enabled(false);
    assert_eq!(
        siro_trace::snapshot().counters.get("contended.total"),
        Some(&(THREADS as u64 * PER_THREAD))
    );
}
