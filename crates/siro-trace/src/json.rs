//! A minimal JSON reader for the Chrome trace files this crate writes.
//!
//! The workspace is registry-free (no serde), and `siro trace-report` must
//! read back the `trace_event` JSON that [`crate::export`] produces — so
//! this module implements just enough of RFC 8259 to round-trip it:
//! objects, arrays, strings with the common escapes, numbers, booleans,
//! and null. It is a strict recursive-descent parser, not a streaming one;
//! trace files are bounded by what one process records.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; trace fields fit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (trace consumers key by
    /// name, never by position).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this value is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` on anything else).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates never appear in our writer's output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
        let raw = parse(r#""Aé""#).unwrap();
        assert_eq!(raw.as_str(), Some("Aé"));
    }
}
