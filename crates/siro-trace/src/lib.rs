//! # siro-trace — structured tracing and metrics for the Siro stack
//!
//! A std-only, zero-dependency tracing subsystem: cheap named spans with
//! parent/child nesting, typed counters, and three exporters — a Chrome
//! `trace_event` JSON file (loadable in `chrome://tracing` / Perfetto), a
//! per-span aggregate table (`siro trace-report`), and a Prometheus-style
//! plaintext rendering served by `siro-serve`'s `METRICS` endpoint.
//!
//! ## Design
//!
//! * **Gating** — tracing is off unless the `SIRO_TRACE` environment
//!   variable is set to `1`/`true`/`on` (or [`set_enabled`] is called).
//!   The disabled path is one relaxed atomic load per [`span!`] /
//!   [`counter`] call: no allocation, no locks, no formatting — the
//!   `trace_overhead` bench in `siro-bench` proves the instrumented build
//!   costs ~nothing when off.
//! * **Lock-cheap recording** — each thread buffers finished spans in a
//!   thread-local `Vec` and only takes the process-wide collector lock
//!   when its root span closes (or the buffer fills). Counters are
//!   process-wide atomics resolved through a thread-local cache, so the
//!   steady-state increment is a single `fetch_add`.
//! * **Nesting** — spans form a tree per thread via a thread-local stack;
//!   every record carries its parent's id, which the Chrome exporter
//!   preserves in `args` so tooling (and tests) can rebuild the tree.
//!
//! ## Example
//!
//! ```
//! siro_trace::set_enabled(true);
//! {
//!     let _outer = siro_trace::span!("example.outer");
//!     let _inner = siro_trace::span!("example.inner", "iteration {}", 7);
//!     siro_trace::counter("example.widgets", 3);
//! }
//! let snap = siro_trace::snapshot();
//! assert!(snap.spans.iter().any(|s| s.name == "example.outer"));
//! assert_eq!(snap.counters.get("example.widgets"), Some(&3));
//! siro_trace::set_enabled(false);
//! ```

#![deny(missing_docs)]

pub mod export;
pub mod json;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---- gating -------------------------------------------------------------

/// Tri-state so the environment is consulted exactly once: 0 = uninit,
/// 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("SIRO_TRACE").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    );
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether tracing is currently enabled. The hot-path check: one relaxed
/// atomic load (plus a one-time `SIRO_TRACE` environment read on the very
/// first call in the process).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Turns tracing on or off programmatically, overriding `SIRO_TRACE`.
/// Used by benches and tests; servers expose the current state via their
/// `STATS`/`METRICS` pages so operators can tell traced runs apart.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---- clock and ids ------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

// ---- records ------------------------------------------------------------

/// One finished span, as stored by the collector and round-tripped through
/// the Chrome trace exporter/parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (the taxonomy in `docs/OBSERVABILITY.md`).
    pub name: String,
    /// Free-form detail string (`span!("x", "pair {a}->{b}")`), possibly
    /// empty.
    pub detail: String,
    /// Trace-local thread id (sequential from 1, not the OS tid).
    pub tid: u64,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Start offset since the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

/// Point-in-time copy of everything the collector holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Finished spans, in collection order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
}

// ---- collector ----------------------------------------------------------

/// Flush the thread-local buffer once it holds this many spans even if the
/// root span has not closed yet (bounds per-thread memory).
const FLUSH_THRESHOLD: usize = 64;

static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();

fn span_sink() -> &'static Mutex<Vec<SpanRecord>> {
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Counter registry: name -> leaked atomic. Leaking keeps the increment
/// path free of locks once a thread has cached the reference; the leak is
/// bounded by the number of distinct counter names.
static COUNTERS: OnceLock<Mutex<BTreeMap<&'static str, &'static AtomicU64>>> = OnceLock::new();

fn counter_registry() -> &'static Mutex<BTreeMap<&'static str, &'static AtomicU64>> {
    COUNTERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

struct ThreadState {
    tid: u64,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
    counter_cache: HashMap<&'static str, &'static AtomicU64>,
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
        counter_cache: HashMap::new(),
    });
}

fn flush_locked(state: &mut ThreadState) {
    if state.buf.is_empty() {
        return;
    }
    let mut sink = span_sink().lock().expect("trace collector poisoned");
    sink.append(&mut state.buf);
}

/// Flushes the calling thread's buffered spans into the process-wide
/// collector. Called automatically when a thread's outermost span closes;
/// call it manually before a thread exits with non-span work pending.
pub fn flush() {
    TLS.with(|tls| flush_locked(&mut tls.borrow_mut()));
}

/// Adds `n` to the named counter. A no-op (single relaxed load) while
/// tracing is disabled.
#[inline]
pub fn counter(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    counter_slow(name, n);
}

#[cold]
fn counter_slow(name: &'static str, n: u64) {
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        let cell = match state.counter_cache.get(name) {
            Some(&c) => c,
            None => {
                let mut reg = counter_registry()
                    .lock()
                    .expect("counter registry poisoned");
                let c = *reg
                    .entry(name)
                    .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
                state.counter_cache.insert(name, c);
                c
            }
        };
        cell.fetch_add(n, Ordering::Relaxed);
    });
}

/// Copies out every finished span and counter total, flushing the calling
/// thread first. Spans buffered on *other* threads that have not closed
/// their root span yet are not included.
pub fn snapshot() -> TraceSnapshot {
    flush();
    let spans = span_sink()
        .lock()
        .expect("trace collector poisoned")
        .clone();
    let counters = counter_registry()
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    TraceSnapshot { spans, counters }
}

/// Drops every collected span and zeroes every counter (the calling
/// thread's buffer included). Meant for benches and tests that measure
/// isolated sections; other threads' unflushed buffers are untouched.
pub fn reset() {
    TLS.with(|tls| tls.borrow_mut().buf.clear());
    span_sink()
        .lock()
        .expect("trace collector poisoned")
        .clear();
    for c in counter_registry()
        .lock()
        .expect("counter registry poisoned")
        .values()
    {
        c.store(0, Ordering::Relaxed);
    }
}

// ---- spans --------------------------------------------------------------

/// A live span: created by [`span!`] (or [`Span::enter`]), recorded into
/// the thread-local buffer when dropped. While tracing is disabled the
/// guard is inert and costs nothing beyond its stack slot.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing was disabled at entry.
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    detail: String,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_ns: u64,
}

impl Span {
    /// Opens a span. `detail` is only invoked when tracing is enabled, so
    /// formatting costs nothing on the disabled path — prefer the
    /// [`span!`] macro, which wraps the format arguments for you.
    pub fn enter(name: &'static str, detail: impl FnOnce() -> String) -> Span {
        if !enabled() {
            return Span { live: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = TLS.with(|tls| {
            let mut state = tls.borrow_mut();
            let parent = state.stack.last().copied();
            state.stack.push(id);
            parent
        });
        Span {
            live: Some(LiveSpan {
                name,
                detail: detail(),
                id,
                parent,
                start: Instant::now(),
                start_ns: now_ns(),
            }),
        }
    }

    /// The span's id, if it is live (`None` while tracing is disabled).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = live.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        TLS.with(|tls| {
            let mut state = tls.borrow_mut();
            // Normally a strict stack; tolerate out-of-order drops by
            // removing the id wherever it sits.
            if let Some(i) = state.stack.iter().rposition(|&id| id == live.id) {
                state.stack.remove(i);
            }
            let tid = state.tid;
            state.buf.push(SpanRecord {
                name: live.name.to_string(),
                detail: live.detail,
                tid,
                id: live.id,
                parent: live.parent,
                start_ns: live.start_ns,
                dur_ns,
            });
            if state.stack.is_empty() || state.buf.len() >= FLUSH_THRESHOLD {
                flush_locked(&mut state);
            }
        });
    }
}

/// Records a span whose start point lies in the past — e.g. queue wait,
/// where the interval began on another thread. The span closes now; its
/// parent is whatever span is open on the calling thread.
pub fn record_since(name: &'static str, start: Instant, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let end_ns = now_ns();
    let dur_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        let parent = state.stack.last().copied();
        let tid = state.tid;
        state.buf.push(SpanRecord {
            name: name.to_string(),
            detail: detail(),
            tid,
            id,
            parent,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
        });
        if state.stack.is_empty() || state.buf.len() >= FLUSH_THRESHOLD {
            flush_locked(&mut state);
        }
    });
}

/// Opens a [`Span`] measuring the enclosing scope.
///
/// ```
/// siro_trace::set_enabled(true);
/// {
///     let _s = siro_trace::span!("doc.work", "item {}", 42);
/// }
/// assert!(siro_trace::snapshot()
///     .spans
///     .iter()
///     .any(|s| s.name == "doc.work" && s.detail == "item 42"));
/// siro_trace::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, ::std::string::String::new)
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::Span::enter($name, || ::std::format!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector and the enabled flag are process-global and the test
    // harness is multi-threaded; serialize every test that toggles them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let s = span!("off.root");
            assert_eq!(s.id(), None);
            counter("off.count", 5);
        }
        let snap = snapshot();
        assert!(snap.spans.iter().all(|s| s.name != "off.root"));
        assert_eq!(snap.counters.get("off.count"), None);
    }

    #[test]
    fn nesting_links_parents_and_children() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let outer = span!("nest.outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span!("nest.inner", "depth {}", 2);
                assert_ne!(inner.id().unwrap(), outer_id);
            }
            let sibling = span!("nest.sibling");
            drop(sibling);
        }
        set_enabled(false);
        let snap = snapshot();
        let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).expect(n);
        let outer = by_name("nest.outer");
        let inner = by_name("nest.inner");
        let sibling = by_name("nest.sibling");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(inner.detail, "depth 2");
        // Children complete (and are buffered) before their parent.
        let pos = |id| snap.spans.iter().position(|s| s.id == id).unwrap();
        assert!(pos(inner.id) < pos(outer.id));
        // The child interval nests inside the parent interval.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1_000);
    }

    #[test]
    fn counters_accumulate_across_calls() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter("acc.total", 2);
        counter("acc.total", 3);
        set_enabled(false);
        assert_eq!(snapshot().counters.get("acc.total"), Some(&5));
    }

    #[test]
    fn record_since_captures_past_intervals() {
        let _g = guard();
        set_enabled(true);
        reset();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        record_since("past.wait", t0, String::new);
        set_enabled(false);
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "past.wait").unwrap();
        assert!(s.dur_ns >= 1_000_000, "dur {}", s.dur_ns);
    }
}
