//! Exporters: Chrome `trace_event` JSON, the per-span aggregate table, and
//! the Prometheus-style plaintext metrics rendering.
//!
//! The Chrome format is the `{"traceEvents": [...]}` object form with
//! complete (`"ph": "X"`) events — timestamps and durations in
//! microseconds with nanosecond decimals — which both `chrome://tracing`
//! and Perfetto load directly. Span ids and parent links ride along in
//! `args` so [`parse_chrome_trace`] (and tests) can rebuild the exact span
//! tree; counter totals are stored in a `siroCounters` top-level member,
//! which trace viewers ignore.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::json::{self, Value};
use crate::{SpanRecord, TraceSnapshot};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders a snapshot as Chrome `trace_event` JSON. Events are sorted by
/// `(tid, start, id)` so the output is deterministic for a given snapshot.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut spans: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.tid, s.start_ns, s.id));
    let mut out = String::with_capacity(snapshot.spans.len() * 160 + 256);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, s) in spans.iter().enumerate() {
        let parent = s
            .parent
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"cat\": \"siro\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"span_id\": {}, \
             \"parent\": {}, \"detail\": \"{}\"}}}}",
            escape(&s.name),
            s.tid,
            us(s.start_ns),
            us(s.dur_ns),
            s.id,
            parent,
            escape(&s.detail),
        );
        out.push_str(if i + 1 == spans.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n  \"siroCounters\": {\n");
    for (i, (k, v)) in snapshot.counters.iter().enumerate() {
        let _ = write!(out, "    \"{}\": {}", escape(k), v);
        out.push_str(if i + 1 == snapshot.counters.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

/// Takes a [`crate::snapshot`] and writes it to `path` as Chrome trace
/// JSON, returning the path.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
    let path = path.as_ref().to_path_buf();
    std::fs::write(&path, chrome_trace_json(&crate::snapshot()))?;
    Ok(path)
}

/// Where a CLI run drops its trace: `SIRO_TRACE_FILE` if set, else
/// `siro_trace.json` in the current directory.
pub fn default_trace_path() -> PathBuf {
    std::env::var_os("SIRO_TRACE_FILE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("siro_trace.json"))
}

/// Parses a Chrome trace JSON document produced by [`chrome_trace_json`]
/// back into a snapshot (used by `siro trace-report` and the golden test).
///
/// # Errors
///
/// A description of the first structural problem encountered.
pub fn parse_chrome_trace(text: &str) -> Result<TraceSnapshot, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut spans = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or_else(|| format!("event {i}: missing `{k}`"));
        let ph = field("ph")?.as_str().unwrap_or_default();
        if ph != "X" {
            continue; // tolerate foreign events (metadata, counters)
        }
        let to_ns = |v: &Value, k: &str| -> Result<u64, String> {
            v.as_f64()
                .map(|us| (us * 1_000.0).round() as u64)
                .ok_or_else(|| format!("event {i}: `{k}` is not a number"))
        };
        let args = field("args")?;
        spans.push(SpanRecord {
            name: field("name")?
                .as_str()
                .ok_or_else(|| format!("event {i}: `name` is not a string"))?
                .to_string(),
            detail: args
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            tid: field("tid")?
                .as_u64()
                .ok_or_else(|| format!("event {i}: bad `tid`"))?,
            id: args
                .get("span_id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i}: bad `args.span_id`"))?,
            parent: args.get("parent").and_then(Value::as_u64),
            start_ns: to_ns(field("ts")?, "ts")?,
            dur_ns: to_ns(field("dur")?, "dur")?,
        });
    }
    let counters = doc
        .get("siroCounters")
        .and_then(Value::as_obj)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default();
    Ok(TraceSnapshot { spans, counters })
}

/// One row of the aggregate table: all spans sharing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateRow {
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Mean duration, nanoseconds.
    pub mean_ns: u64,
    /// Largest single duration, nanoseconds.
    pub max_ns: u64,
}

/// Collapses a snapshot into per-name rows, widest total first.
pub fn aggregate(snapshot: &TraceSnapshot) -> Vec<AggregateRow> {
    let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in &snapshot.spans {
        let e = by_name.entry(&s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
        e.2 = e.2.max(s.dur_ns);
    }
    let mut rows: Vec<AggregateRow> = by_name
        .into_iter()
        .map(|(name, (count, total_ns, max_ns))| AggregateRow {
            name: name.to_string(),
            count,
            total_ns,
            mean_ns: total_ns / count.max(1),
            max_ns,
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the aggregate rows (and counters) as the fixed-width table
/// `siro trace-report` prints.
///
/// ```
/// let snap = siro_trace::TraceSnapshot {
///     spans: vec![siro_trace::SpanRecord {
///         name: "demo.phase".into(),
///         detail: String::new(),
///         tid: 1,
///         id: 1,
///         parent: None,
///         start_ns: 0,
///         dur_ns: 2_000_000,
///     }],
///     counters: [("demo.count".to_string(), 4u64)].into_iter().collect(),
/// };
/// let table = siro_trace::export::render_aggregate(&snap);
/// assert!(table.contains("demo.phase"));
/// assert!(table.contains("demo.count"));
/// ```
pub fn render_aggregate(snapshot: &TraceSnapshot) -> String {
    let rows = aggregate(snapshot);
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
        "span", "count", "total ms", "mean ms", "max ms"
    );
    let _ = writeln!(out, "{}", "-".repeat(name_w + 52));
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
            r.name,
            r.count,
            ms(r.total_ns),
            ms(r.mean_ns),
            ms(r.max_ns)
        );
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (k, v) in &snapshot.counters {
            let _ = writeln!(out, "  {k} {v}");
        }
    }
    out
}

fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the trace counters (plus the enabled gauge) in Prometheus
/// exposition format. `siro-serve` appends this to its own serving metrics
/// to form the `METRICS` page body.
pub fn render_prometheus_counters(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE siro_trace_enabled gauge\n");
    let _ = writeln!(out, "siro_trace_enabled {}", u64::from(crate::enabled()));
    for (k, v) in &snapshot.counters {
        let metric = format!("siro_trace_{}", sanitize_metric(k));
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            spans: vec![
                SpanRecord {
                    name: "root".into(),
                    detail: "pair 13.0->3.6".into(),
                    tid: 1,
                    id: 1,
                    parent: None,
                    start_ns: 1_500,
                    dur_ns: 10_000_000,
                },
                SpanRecord {
                    name: "child".into(),
                    detail: String::new(),
                    tid: 1,
                    id: 2,
                    parent: Some(1),
                    start_ns: 2_500,
                    dur_ns: 4_000_123,
                },
            ],
            counters: [("k.a".to_string(), 7u64)].into_iter().collect(),
        }
    }

    #[test]
    fn chrome_json_round_trips_exactly() {
        let snap = sample();
        let text = chrome_trace_json(&snap);
        let back = parse_chrome_trace(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn aggregate_sums_and_sorts() {
        let rows = aggregate(&sample());
        assert_eq!(rows[0].name, "root");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[1].name, "child");
        assert_eq!(rows[1].total_ns, 4_000_123);
        let table = render_aggregate(&sample());
        assert!(table.contains("root"), "{table}");
        assert!(table.contains("k.a 7"), "{table}");
    }

    #[test]
    fn prometheus_rendering_sanitizes_names() {
        let text = render_prometheus_counters(&sample());
        assert!(text.contains("siro_trace_enabled"), "{text}");
        assert!(text.contains("siro_trace_k_a 7"), "{text}");
    }
}
