//! The coverage-guided differential fuzzing loop.
//!
//! The loop mutates well-typed source-version modules (seeded from
//! [`siro_testcases::gen`]) with the targeted mutators, checks every
//! mutant against the [`ChainSet`] oracles, and keeps a mutant in the
//! corpus when it exercises a *new feature*. Two feature maps feed the
//! guidance signal:
//!
//! * **executed opcode kinds** — the instruction kinds on blocks the
//!   interpreter actually reached, measured with
//!   [`siro_fuzz::coverage`] block probes. Coverage block ids are
//!   per-module, so they are abstracted to opcode kinds before being
//!   compared across mutants;
//! * **translator-phase funnel buckets** — log₂ buckets of the
//!   [`siro_trace`] `core.*` counter deltas observed while the oracles
//!   translated the input. A mutant that pushes a different order of
//!   magnitude through a translation phase is novel even if it executes
//!   no new kind.
//!
//! Failures are shrunk on the spot by [`crate::reduce::reduce`] against a
//! same-oracle/same-family predicate, so every reported failure is
//! already minimal.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use siro_fuzz::coverage;
use siro_ir::{IrVersion, Module, Opcode};
use siro_rng::{Rng, SeedableRng, StdRng};
use siro_synth::{SynthError, SynthFault};
use siro_testcases::gen::generate_cases;

use crate::oracle::{routed_mids, ChainSet, FailureFamily, Verdict, ORACLE_FUEL};
use crate::reduce::{placed_inst_count, reduce};

/// Reduced failures at or under this many placed instructions count as
/// fully shrunk.
pub const SHRINK_TARGET: usize = 10;

/// Configuration for one fuzzing run over a `(src, mid, tgt)` triple.
#[derive(Debug, Clone)]
pub struct DifftestConfig {
    /// Source version `A`.
    pub src: IrVersion,
    /// Intermediate version `B` for the chain/roundtrip oracles.
    pub mid: IrVersion,
    /// Target version `C`.
    pub tgt: IrVersion,
    /// RNG seed (mutant choice and mutation sites).
    pub seed: u64,
    /// Wall-clock budget for the mutation loop.
    pub budget: Duration,
    /// Hard cap on oracle executions (budget still applies).
    pub max_execs: usize,
    /// Translator fault to inject into every synthesis leg (test only).
    pub fault: Option<SynthFault>,
    /// Interpreter fuel per oracle run.
    pub fuel: u64,
    /// How many generated seed programs start the corpus.
    pub seed_cases: usize,
    /// How many router-ranked paths to fuzz. `1` checks only the
    /// configured `(src, mid, tgt)` triple; `n > 1` adds the next
    /// `n - 1` intermediates from [`routed_mids`], and the loop rotates
    /// mutants across the paths — path selection itself becomes part of
    /// the fuzzed surface.
    pub route_mids: usize,
}

impl DifftestConfig {
    /// A default configuration for the triple.
    pub fn new(src: IrVersion, mid: IrVersion, tgt: IrVersion) -> Self {
        DifftestConfig {
            src,
            mid,
            tgt,
            seed: 42,
            budget: Duration::from_secs(5),
            max_execs: usize::MAX,
            fault: None,
            fuel: ORACLE_FUEL,
            seed_cases: 6,
            route_mids: 1,
        }
    }

    /// A default configuration for `(src, tgt)` with the intermediate
    /// chosen by the version-graph router (the cheapest two-hop
    /// decomposition under the current edge costs) instead of the test
    /// author.
    pub fn routed(src: IrVersion, tgt: IrVersion) -> Self {
        let mid = *routed_mids(src, tgt)
            .first()
            .expect("catalog has at least three versions");
        Self::new(src, mid, tgt)
    }
}

/// A failure found by the loop, already reduced.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// The intermediate of the path the failure was found on.
    pub mid: IrVersion,
    /// Failure family.
    pub family: FailureFamily,
    /// Evidence from the *reduced* reproduction.
    pub detail: String,
    /// The mutator that produced the failing input.
    pub mutator: &'static str,
    /// The reduced failing module.
    pub module: Module,
    /// Placed instructions before reduction.
    pub original_insts: usize,
    /// Placed instructions after reduction.
    pub reduced_insts: usize,
    /// Whether reduction reached [`SHRINK_TARGET`].
    pub shrunk: bool,
}

/// The outcome of one fuzzing run.
#[derive(Debug, Clone)]
pub struct DifftestReport {
    /// The triple fuzzed.
    pub src: IrVersion,
    /// Primary intermediate version (the first entry of
    /// [`DifftestReport::mids`]).
    pub mid: IrVersion,
    /// Target version.
    pub tgt: IrVersion,
    /// Every intermediate fuzzed, in check rotation order (more than one
    /// when [`DifftestConfig::route_mids`] asked for alternate
    /// router-ranked paths).
    pub mids: Vec<IrVersion>,
    /// Oracle executions performed.
    pub execs: usize,
    /// Wall-clock time spent in the loop.
    pub wall: Duration,
    /// Final corpus size (seeds + admitted mutants).
    pub corpus_size: usize,
    /// Seed corpus size.
    pub seed_corpus_size: usize,
    /// Distinct features observed (kinds + funnel buckets).
    pub features: usize,
    /// Opcode kinds placed in the generated seed corpus.
    pub generated_kinds: BTreeSet<Opcode>,
    /// Opcode kinds placed in the final corpus.
    pub corpus_kinds: BTreeSet<Opcode>,
    /// Reduced failures, in discovery order. One record per distinct
    /// `(oracle, family, mutator)` key — repeat sightings of an
    /// already-reduced failure only bump [`DifftestReport::duplicate_failures`].
    pub failures: Vec<FailureRecord>,
    /// Failures observed whose `(oracle, family, mutator)` key was
    /// already recorded (not re-reduced).
    pub duplicate_failures: usize,
    /// Inputs skipped (fuel or translator partiality).
    pub skips: usize,
}

impl DifftestReport {
    /// The kinds coverage-guided mutation reached that generation alone
    /// never produced.
    pub fn new_kinds(&self) -> Vec<Opcode> {
        self.corpus_kinds
            .difference(&self.generated_kinds)
            .copied()
            .collect()
    }

    /// Failures deduplicated by oracle, family, and the kind signature of
    /// the reduced reproduction.
    pub fn distinct_failures(&self) -> usize {
        self.failures
            .iter()
            .map(|f| (f.oracle, f.family, kind_signature(&f.module)))
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Executions per wall-clock second.
    pub fn execs_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.execs as f64 / s
        } else {
            0.0
        }
    }
}

/// A guidance feature: something novel an input did.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Feature {
    /// The input executed a block carrying this opcode kind.
    ExecKind(Opcode),
    /// A `core.*` funnel counter moved by ~2^bucket during the oracles.
    Funnel(String, u32),
}

/// Opcode kinds statically placed in blocks of defined functions.
pub fn placed_kinds(m: &Module) -> BTreeSet<Opcode> {
    let mut out = BTreeSet::new();
    for f in &m.funcs {
        for b in &f.blocks {
            for &i in &b.insts {
                out.insert(f.inst(i).opcode);
            }
        }
    }
    out
}

fn kind_signature(m: &Module) -> String {
    placed_kinds(m)
        .iter()
        .map(|k| format!("{k}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// The opcode kinds on blocks the interpreter actually reaches.
///
/// Coverage block ids are assigned per-module (sequentially over defined
/// non-`sink` functions in id order, blocks in layout order), so the raw
/// id set is meaningless across mutants. This maps ids back to the
/// original module's blocks and abstracts to kinds, which *are*
/// comparable.
pub fn executed_kinds(m: &Module) -> BTreeSet<Opcode> {
    let (instrumented, _) = coverage::instrument(m);
    let covered = coverage::covered_blocks(&instrumented, &[]);
    let mut out = BTreeSet::new();
    let mut global = 0i64;
    for f in &m.funcs {
        if f.is_external || f.name == "sink" {
            continue;
        }
        for b in &f.blocks {
            if covered.contains(&global) {
                for &i in &b.insts {
                    out.insert(f.inst(i).opcode);
                }
            }
            global += 1;
        }
    }
    out
}

fn counter_delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> Vec<Feature> {
    let mut out = Vec::new();
    for (k, &v) in after {
        if !k.starts_with("core.") {
            continue;
        }
        let delta = v.saturating_sub(before.get(k).copied().unwrap_or(0));
        if delta > 0 {
            out.push(Feature::Funnel(k.clone(), 64 - delta.leading_zeros()));
        }
    }
    out
}

/// Runs one oracle check and collects the input's guidance features.
fn check_with_features(chain: &ChainSet, m: &Module, fuel: u64) -> (Verdict, Vec<Feature>) {
    let before = siro_trace::snapshot().counters;
    let verdict = chain.check(m, fuel);
    let after = siro_trace::snapshot().counters;
    let mut features: Vec<Feature> = executed_kinds(m)
        .into_iter()
        .map(Feature::ExecKind)
        .collect();
    features.extend(counter_delta(&before, &after));
    (verdict, features)
}

/// Runs the coverage-guided differential fuzzing loop.
///
/// Tracing is force-enabled for the duration (the funnel features need
/// the `core.*` counters) and restored afterwards.
///
/// # Errors
///
/// Propagates synthesis failures for any translator leg.
pub fn run(cfg: &DifftestConfig) -> Result<DifftestReport, SynthError> {
    let was_enabled = siro_trace::enabled();
    siro_trace::set_enabled(true);
    let result = run_inner(cfg);
    siro_trace::set_enabled(was_enabled);
    result
}

fn run_inner(cfg: &DifftestConfig) -> Result<DifftestReport, SynthError> {
    // The primary path is the configured triple; extra router-ranked
    // intermediates (route_mids > 1) become alternate paths the loop
    // rotates mutants through.
    let mut chains = vec![ChainSet::synthesize(cfg.src, cfg.mid, cfg.tgt, cfg.fault)?];
    for m in routed_mids(cfg.src, cfg.tgt)
        .into_iter()
        .filter(|&m| m != cfg.mid)
        .take(cfg.route_mids.saturating_sub(1))
    {
        chains.push(ChainSet::synthesize(cfg.src, m, cfg.tgt, cfg.fault)?);
    }
    let start = Instant::now();

    let seeds = generate_cases(cfg.seed, cfg.seed_cases, cfg.src);
    let mut corpus: Vec<Module> = Vec::new();
    let mut generated_kinds = BTreeSet::new();
    let mut features: BTreeSet<Feature> = BTreeSet::new();
    let mut failures: Vec<FailureRecord> = Vec::new();
    let mut seen_failures: BTreeSet<(IrVersion, &'static str, FailureFamily, &'static str)> =
        BTreeSet::new();
    let mut duplicate_failures = 0usize;
    let mut skips = 0usize;
    let mut execs = 0usize;

    // Seed the corpus and both maps. Seeds are kept unconditionally —
    // they are the mutation bases — but still contribute features, and a
    // faulted translator can fail already on a seed.
    for case in seeds {
        generated_kinds.extend(placed_kinds(&case.module));
        let chain = &chains[execs % chains.len()];
        let (verdict, fs) = check_with_features(chain, &case.module, cfg.fuel);
        execs += 1;
        features.extend(fs);
        match verdict {
            Verdict::Fail(f) => {
                if seen_failures.insert((chain.mid, f.oracle, f.family, "seed")) {
                    record_failure(chain, &case.module, "seed", f, cfg.fuel, &mut failures);
                } else {
                    duplicate_failures += 1;
                }
            }
            Verdict::Skip(_) => skips += 1,
            Verdict::Agree => {}
        }
        corpus.push(case.module);
    }

    let mutators = crate::mutate::applicable_mutators(cfg.src);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5f_d1ff);
    // Mutators are scheduled round-robin (bases stay random): every
    // mutator is guaranteed airtime, so a translator bug keyed to one
    // injected kind is found within one sweep of the catalogue.
    let mut attempt = 0usize;
    while start.elapsed() < cfg.budget && execs < cfg.max_execs && !corpus.is_empty() {
        let base = &corpus[rng.gen_range(0..corpus.len())];
        let mutator = mutators[attempt % mutators.len()];
        attempt += 1;
        let Some(mutant) = mutator.apply(base, &mut rng) else {
            continue;
        };
        // Rotating the path per attempt fuzzes the route as well as the
        // input: a translator bug keyed to one intermediate is reached
        // within one sweep of the path list.
        let chain = &chains[attempt % chains.len()];
        let (verdict, fs) = check_with_features(chain, &mutant, cfg.fuel);
        execs += 1;
        match verdict {
            Verdict::Fail(f) => {
                if seen_failures.insert((chain.mid, f.oracle, f.family, mutator.name())) {
                    record_failure(chain, &mutant, mutator.name(), f, cfg.fuel, &mut failures);
                } else {
                    duplicate_failures += 1;
                }
            }
            Verdict::Skip(_) => skips += 1,
            Verdict::Agree => {
                let novel = fs.iter().any(|f| !features.contains(f));
                if novel {
                    features.extend(fs);
                    corpus.push(mutant);
                }
            }
        }
    }

    let corpus_kinds = corpus.iter().flat_map(placed_kinds).collect();
    Ok(DifftestReport {
        src: cfg.src,
        mid: cfg.mid,
        tgt: cfg.tgt,
        mids: chains.iter().map(|c| c.mid).collect(),
        execs,
        wall: start.elapsed(),
        corpus_size: corpus.len(),
        seed_corpus_size: cfg.seed_cases.min(corpus.len()),
        features: features.len(),
        generated_kinds,
        corpus_kinds,
        failures,
        duplicate_failures,
        skips,
    })
}

/// Shrinks a failing input against a same-oracle/same-family predicate
/// and appends the reduced record.
fn record_failure(
    chain: &ChainSet,
    module: &Module,
    mutator: &'static str,
    found: crate::oracle::Failure,
    fuel: u64,
    failures: &mut Vec<FailureRecord>,
) {
    let oracle = found.oracle;
    let family = found.family;
    let still_fails = |m: &Module| {
        matches!(
            chain.check(m, fuel),
            Verdict::Fail(f) if f.oracle == oracle && f.family == family
        )
    };
    let original_insts = placed_inst_count(module);
    let out = reduce(module, still_fails);
    let reduced_insts = placed_inst_count(&out.module);
    // Re-derive the detail from the reduced module so the record's
    // evidence matches the artifact that gets persisted.
    let detail = match chain.check(&out.module, fuel) {
        Verdict::Fail(f) => f.detail,
        _ => found.detail,
    };
    failures.push(FailureRecord {
        oracle,
        mid: chain.mid,
        family,
        detail,
        mutator,
        module: out.module,
        original_insts,
        reduced_insts,
        shrunk: reduced_insts <= SHRINK_TARGET,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executed_kinds_sees_only_reached_blocks() {
        use siro_ir::{FuncBuilder, IntPredicate, ValueRef};
        let mut m = Module::new("t", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let dead = b.add_block("dead");
        let live = b.add_block("live");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Eq,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 1),
        );
        b.cond_br(c, live, dead);
        b.position_at_end(dead);
        let x = b.mul(ValueRef::const_int(i32t, 2), ValueRef::const_int(i32t, 3));
        b.ret(Some(x));
        b.position_at_end(live);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        let kinds = executed_kinds(&m);
        assert!(kinds.contains(&Opcode::ICmp));
        assert!(kinds.contains(&Opcode::Ret));
        assert!(
            !kinds.contains(&Opcode::Mul),
            "dead block must not contribute kinds"
        );
    }

    #[test]
    fn clean_run_finds_no_failures_and_new_kinds() {
        let mut cfg = DifftestConfig::new(IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        cfg.budget = Duration::from_secs(30);
        cfg.max_execs = 60;
        let report = run(&cfg).unwrap();
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.execs >= report.seed_corpus_size);
        assert!(
            report.corpus_size > report.seed_corpus_size,
            "no mutant was ever admitted to the corpus"
        );
        assert!(
            !report.new_kinds().is_empty(),
            "mutation should reach kinds generation does not"
        );
    }

    #[test]
    fn faulted_run_finds_and_shrinks_a_failure() {
        let mut cfg = DifftestConfig::new(IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
        cfg.fault = Some(SynthFault::SwapOperands(Opcode::Sub));
        cfg.budget = Duration::from_secs(30);
        cfg.max_execs = 30;
        let report = run(&cfg).unwrap();
        assert!(
            !report.failures.is_empty(),
            "the injected fault must be caught"
        );
        let best = report
            .failures
            .iter()
            .map(|f| f.reduced_insts)
            .min()
            .unwrap();
        assert!(
            best <= SHRINK_TARGET,
            "reduction stalled at {best} placed instructions"
        );
        assert!(report.distinct_failures() >= 1);
    }
}
