//! Deterministic regression artifacts.
//!
//! A shrunk failure is persisted as a `.sir` file: the reduced module in
//! normal textual IR, followed by a block of `; difftest-*:` comment
//! lines carrying the reproduction metadata (version triple, injected
//! fault, oracle, family, mutator, evidence). The parser strips comment
//! lines wherever they appear, so the metadata rides inside a file
//! `parse_module` accepts unchanged — an artifact is simultaneously a
//! valid IR module and a self-describing bug report.
//!
//! File names are content-derived (`{src}-{tgt}-{oracle}-{family}-{hash}`)
//! so re-running the fuzzer on the same bug overwrites the same file
//! instead of accumulating duplicates.

use std::path::{Path, PathBuf};

use siro_ir::{parse::parse_module, write::write_module, IrVersion, Module};
use siro_synth::SynthFault;

use crate::fuzz::FailureRecord;
use crate::oracle::FailureFamily;

/// Schema tag stamped into every artifact.
pub const ARTIFACT_SCHEMA: &str = "siro-difftest/regression-v1";

/// A persisted, shrunk, replayable failure.
#[derive(Debug, Clone)]
pub struct RegressionArtifact {
    /// Source version `A`.
    pub src: IrVersion,
    /// Intermediate version `B`.
    pub mid: IrVersion,
    /// Target version `C`.
    pub tgt: IrVersion,
    /// The fault injected when the failure was found (`None` for real
    /// translator bugs).
    pub fault: Option<SynthFault>,
    /// Which oracle tripped.
    pub oracle: String,
    /// Failure family.
    pub family: FailureFamily,
    /// The mutator that produced the failing input.
    pub mutator: String,
    /// Evidence string from the reduced reproduction.
    pub detail: String,
    /// The reduced failing module.
    pub module: Module,
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

fn parse_version(s: &str) -> Option<IrVersion> {
    let (maj, min) = s.trim().split_once('.')?;
    Some(IrVersion::new(maj.parse().ok()?, min.parse().ok()?))
}

/// FNV-1a over the rendered module text; stable across runs and
/// platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RegressionArtifact {
    /// Builds an artifact from a fuzzing failure record. The intermediate
    /// comes from the record itself — with path-selection fuzzing the
    /// failing path need not be the run's primary triple.
    pub fn from_record(
        src: IrVersion,
        tgt: IrVersion,
        fault: Option<SynthFault>,
        rec: &FailureRecord,
    ) -> Self {
        RegressionArtifact {
            src,
            mid: rec.mid,
            tgt,
            fault,
            oracle: rec.oracle.to_string(),
            family: rec.family,
            mutator: rec.mutator.to_string(),
            detail: rec.detail.clone(),
            module: rec.module.clone(),
        }
    }

    /// Renders the artifact to its on-disk text.
    pub fn render(&self) -> String {
        let mut out = write_module(&self.module);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&format!("; difftest-schema: {ARTIFACT_SCHEMA}\n"));
        out.push_str(&format!("; difftest-pair: {} -> {}\n", self.src, self.tgt));
        out.push_str(&format!("; difftest-mid: {}\n", self.mid));
        if let Some(f) = self.fault {
            out.push_str(&format!("; difftest-fault: {f}\n"));
        }
        out.push_str(&format!("; difftest-oracle: {}\n", one_line(&self.oracle)));
        out.push_str(&format!("; difftest-family: {}\n", self.family.name()));
        out.push_str(&format!(
            "; difftest-mutator: {}\n",
            one_line(&self.mutator)
        ));
        out.push_str(&format!("; difftest-detail: {}\n", one_line(&self.detail)));
        out
    }

    /// The content-derived file name for this artifact.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}-{}-{:08x}.sir",
            self.src,
            self.tgt,
            one_line(&self.oracle),
            self.family.name(),
            fnv1a(write_module(&self.module).as_bytes()) as u32
        )
    }

    /// Writes the artifact under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Parses an artifact back from its on-disk text.
    pub fn parse(text: &str) -> Option<Self> {
        let meta = |key: &str| -> Option<String> {
            text.lines().find_map(|l| {
                l.strip_prefix("; difftest-")
                    .and_then(|r| r.strip_prefix(key))
                    .and_then(|r| r.strip_prefix(':'))
                    .map(|v| v.trim().to_string())
            })
        };
        if meta("schema")? != ARTIFACT_SCHEMA {
            return None;
        }
        let pair = meta("pair")?;
        let (src, tgt) = pair.split_once("->")?;
        let fault = match meta("fault") {
            Some(s) => Some(s.parse().ok()?),
            None => None,
        };
        Some(RegressionArtifact {
            src: parse_version(src)?,
            mid: parse_version(&meta("mid")?)?,
            tgt: parse_version(tgt)?,
            fault,
            oracle: meta("oracle")?,
            family: FailureFamily::parse(&meta("family")?)?,
            mutator: meta("mutator")?,
            detail: meta("detail")?,
            module: parse_module(text).ok()?,
        })
    }

    /// Loads every `.sir` artifact under `dir`, sorted by file name.
    /// A missing directory is an empty set, not an error.
    pub fn load_dir(dir: &Path) -> Vec<(PathBuf, RegressionArtifact)> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sir"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .filter_map(|p| {
                let text = std::fs::read_to_string(&p).ok()?;
                RegressionArtifact::parse(&text).map(|a| (p, a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, ValueRef};

    fn sample() -> RegressionArtifact {
        let mut m = Module::new("repro", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.sub(ValueRef::const_int(i32t, 50), ValueRef::const_int(i32t, 8));
        b.ret(Some(v));
        RegressionArtifact {
            src: IrVersion::V13_0,
            mid: IrVersion::V12_0,
            tgt: IrVersion::V3_6,
            fault: Some(SynthFault::SwapOperands(siro_ir::Opcode::Sub)),
            oracle: "differential".into(),
            family: FailureFamily::Miscompile,
            mutator: "seed".into(),
            detail: "source returns 42, 13.0->3.6 returns -42".into(),
            module: m,
        }
    }

    #[test]
    fn artifact_round_trips_through_text() {
        let a = sample();
        let text = a.render();
        let b = RegressionArtifact::parse(&text).expect("parse back");
        assert_eq!(b.src, a.src);
        assert_eq!(b.mid, a.mid);
        assert_eq!(b.tgt, a.tgt);
        assert_eq!(b.fault, a.fault);
        assert_eq!(b.oracle, a.oracle);
        assert_eq!(b.family, a.family);
        assert_eq!(b.mutator, a.mutator);
        assert_eq!(b.detail, a.detail);
        assert_eq!(write_module(&b.module), write_module(&a.module));
    }

    #[test]
    fn artifact_text_is_a_valid_module() {
        let text = sample().render();
        let m = parse_module(&text).expect("metadata must not break parsing");
        assert_eq!(m.version, IrVersion::V13_0);
    }

    #[test]
    fn file_name_is_deterministic_and_content_addressed() {
        let a = sample();
        assert_eq!(a.file_name(), a.file_name());
        assert!(a
            .file_name()
            .starts_with("13.0-3.6-differential-miscompile-"));
        assert!(a.file_name().ends_with(".sir"));
    }
}
