//! `BENCH_difftest.json` emission (schema `siro-bench/difftest-v1`).
//!
//! The workspace is registry-free, so the JSON is rendered by hand with
//! the same conventions as the other bench documents: schema tag first,
//! two-space indent, stable key order, deterministic content (times
//! excepted).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::fuzz::DifftestReport;

/// Where the JSON goes: `SIRO_BENCH_DIFFTEST_JSON` if set, else
/// `BENCH_difftest.json` in the current directory.
pub fn json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_DIFFTEST_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_difftest.json"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn kind_list(kinds: &[siro_ir::Opcode]) -> String {
    let items: Vec<String> = kinds.iter().map(|k| json_string(&k.to_string())).collect();
    format!("[{}]", items.join(", "))
}

/// Renders one fuzzing run per pair as the `siro-bench/difftest-v1`
/// document.
pub fn render_difftest_json(reports: &[DifftestReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/difftest-v1\",");
    out.push_str("  \"pairs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let new = r.new_kinds();
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"source\": {},",
            json_string(&r.src.to_string())
        );
        let _ = writeln!(out, "      \"mid\": {},", json_string(&r.mid.to_string()));
        let mids: Vec<String> = r.mids.iter().map(|m| json_string(&m.to_string())).collect();
        let _ = writeln!(out, "      \"mids\": [{}],", mids.join(", "));
        let _ = writeln!(
            out,
            "      \"target\": {},",
            json_string(&r.tgt.to_string())
        );
        let _ = writeln!(out, "      \"execs\": {},", r.execs);
        let _ = writeln!(out, "      \"wall_secs\": {:.6},", r.wall.as_secs_f64());
        let _ = writeln!(out, "      \"execs_per_sec\": {:.3},", r.execs_per_sec());
        let _ = writeln!(out, "      \"seed_corpus_size\": {},", r.seed_corpus_size);
        let _ = writeln!(out, "      \"corpus_size\": {},", r.corpus_size);
        let _ = writeln!(out, "      \"features\": {},", r.features);
        let _ = writeln!(out, "      \"skips\": {},", r.skips);
        let _ = writeln!(
            out,
            "      \"generated_kind_count\": {},",
            r.generated_kinds.len()
        );
        let _ = writeln!(
            out,
            "      \"corpus_kind_count\": {},",
            r.corpus_kinds.len()
        );
        let _ = writeln!(out, "      \"new_kind_count\": {},", new.len());
        let _ = writeln!(out, "      \"new_kinds\": {},", kind_list(&new));
        let _ = writeln!(out, "      \"failures\": {},", r.failures.len());
        let _ = writeln!(
            out,
            "      \"duplicate_failures\": {},",
            r.duplicate_failures
        );
        let _ = writeln!(
            out,
            "      \"distinct_failures\": {},",
            r.distinct_failures()
        );
        let _ = writeln!(
            out,
            "      \"unshrunk_failures\": {}",
            r.failures.iter().filter(|f| !f.shrunk).count()
        );
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_difftest.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_difftest_json(reports: &[DifftestReport]) -> std::io::Result<PathBuf> {
    let path = json_path();
    std::fs::write(&path, render_difftest_json(reports))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{IrVersion, Opcode};
    use std::collections::BTreeSet;
    use std::time::Duration;

    #[test]
    fn rendered_json_has_schema_first_and_new_kinds() {
        let report = DifftestReport {
            src: IrVersion::V13_0,
            mid: IrVersion::V12_0,
            tgt: IrVersion::V3_6,
            mids: vec![IrVersion::V12_0],
            execs: 10,
            wall: Duration::from_millis(500),
            corpus_size: 8,
            seed_corpus_size: 6,
            features: 30,
            generated_kinds: BTreeSet::from([Opcode::Add, Opcode::Ret]),
            corpus_kinds: BTreeSet::from([Opcode::Add, Opcode::Ret, Opcode::Switch]),
            failures: Vec::new(),
            duplicate_failures: 0,
            skips: 1,
        };
        let json = render_difftest_json(&[report]);
        let schema_at = json.find("\"schema\": \"siro-bench/difftest-v1\"").unwrap();
        assert!(schema_at < json.find("\"pairs\"").unwrap());
        assert!(json.contains("\"new_kind_count\": 1,"));
        assert!(json.contains("switch"));
        assert!(json.contains("\"execs_per_sec\": 20.000"));
    }
}
