//! Targeted WIR mutators: stack-depth-preserving surgery on stack-machine
//! modules, the [`crate::mutate`] counterpart for the second dialect.
//!
//! Every mutator preserves the validation invariant the WIR verifier
//! checks — in particular the *stack depth contract*: a garnish appended
//! before the final `return` pushes exactly one value and folds it into
//! the original result with `xor`, and a statement inserted at the head of
//! the body is height-neutral. Mutants therefore validate by construction
//! (and are re-verified before being returned, like the Siro mutators).
//!
//! The mutators split into two tiers:
//!
//! * **raisable** ([`WirMutator::raisable`]) — straight-line only, so the
//!   mutant stays inside the SIRO↔WIR bridge's subset and can feed the
//!   cross-dialect differential oracle ([`crate::cross`]);
//! * **structured** — blocks, loops, and `br_table` dispatch, usable for
//!   WIR→WIR differential fuzzing but rejected by the bridge.

use siro_rng::{Rng, StdRng};
use siro_wir::{verify_module, WBin, WCmp, WKind, WTy, WirFunc, WirInst, WirModule};

/// Division edge constants the garnish mutators over-sample: the exact
/// operand space where the two dialects' semantics genuinely differ.
const DIV_EDGE_POOL: [i64; 6] = [0, 1, -1, 2, i32::MIN as i64, i32::MAX as i64];

/// One targeted WIR mutation. Deterministic given the RNG state and gated
/// on [`WirMutator::applicable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WirMutator {
    /// Perturb one `i32.const` immediate.
    ConstTweak,
    /// Insert a `nop` at the head of the body.
    NopPad,
    /// Garnish the result with `x ^ (local ^ const)`.
    XorGarnish,
    /// Garnish with a division whose operands come from the edge pool —
    /// `div_s`/`rem_s` is where SIRO and WIR genuinely diverge.
    DivEdge,
    /// Garnish through a `select` with a non-boolean condition (2.0+),
    /// probing the low-bit vs non-zero truthiness divergence.
    SelectGarnish,
    /// Garnish through a `local.tee` round trip (2.0+).
    TeeShuffle,
    /// Garnish through `eqz` of a comparison.
    CmpChain,
    /// Insert a height-neutral `block … br_if … end` skip statement.
    BlockSkip,
    /// Insert a bounded counting loop over a fresh local.
    LoopSpin,
    /// Insert a height-neutral `br_table` dispatch statement (3.0+).
    BrTableHop,
}

impl WirMutator {
    /// Every mutator, in catalogue order.
    pub const ALL: [WirMutator; 10] = [
        WirMutator::ConstTweak,
        WirMutator::NopPad,
        WirMutator::XorGarnish,
        WirMutator::DivEdge,
        WirMutator::SelectGarnish,
        WirMutator::TeeShuffle,
        WirMutator::CmpChain,
        WirMutator::BlockSkip,
        WirMutator::LoopSpin,
        WirMutator::BrTableHop,
    ];

    /// Stable catalogue name (used in reports and regression artifacts).
    pub fn name(self) -> &'static str {
        match self {
            WirMutator::ConstTweak => "wir-const-tweak",
            WirMutator::NopPad => "wir-nop-pad",
            WirMutator::XorGarnish => "wir-xor-garnish",
            WirMutator::DivEdge => "wir-div-edge",
            WirMutator::SelectGarnish => "wir-select-garnish",
            WirMutator::TeeShuffle => "wir-tee-shuffle",
            WirMutator::CmpChain => "wir-cmp-chain",
            WirMutator::BlockSkip => "wir-block-skip",
            WirMutator::LoopSpin => "wir-loop-spin",
            WirMutator::BrTableHop => "wir-br-table-hop",
        }
    }

    /// The instruction kinds the mutator injects; all must be supported by
    /// the module's version for the mutant to validate.
    pub fn injected_kinds(self) -> &'static [WKind] {
        match self {
            WirMutator::ConstTweak => &[],
            WirMutator::NopPad => &[WKind::Nop],
            WirMutator::XorGarnish => &[WKind::LocalGet, WKind::Binop],
            WirMutator::DivEdge => &[WKind::Binop],
            WirMutator::SelectGarnish => &[WKind::Select],
            WirMutator::TeeShuffle => &[WKind::LocalTee],
            WirMutator::CmpChain => &[WKind::Cmp, WKind::Eqz],
            WirMutator::BlockSkip => &[WKind::Block, WKind::BrIf, WKind::End],
            WirMutator::LoopSpin => &[WKind::Loop, WKind::BrIf, WKind::End],
            WirMutator::BrTableHop => &[WKind::Block, WKind::BrTable, WKind::End],
        }
    }

    /// Whether the mutator's injected kinds all exist at `version`.
    pub fn applicable(self, version: siro_wir::WirVersion) -> bool {
        self.injected_kinds().iter().all(|&k| version.supports(k))
    }

    /// Whether mutants stay inside the straight-line subset the SIRO↔WIR
    /// bridge raises — the cross-dialect oracle uses only these.
    pub fn raisable(self) -> bool {
        !matches!(
            self,
            WirMutator::BlockSkip | WirMutator::LoopSpin | WirMutator::BrTableHop
        )
    }

    /// Applies the mutation to `main`. Returns `None` when the module has
    /// no suitable surgery site or the mutant fails validation.
    pub fn apply(self, module: &WirModule, rng: &mut StdRng) -> Option<WirModule> {
        if !self.applicable(module.version) {
            return None;
        }
        let out = match self {
            WirMutator::ConstTweak => const_tweak(module, rng),
            WirMutator::NopPad => with_head_stmt(module, rng, |body, _| {
                body.push(WirInst::Nop);
            }),
            WirMutator::XorGarnish => with_return_garnish(module, rng, |body, f, rng| {
                let l = rng.gen_range(0..f.local_count() as u32);
                body.push(WirInst::LocalGet(l));
                body.push(WirInst::Const(WTy::I32, rng.gen_range(1..64)));
                body.push(WirInst::Binop(WTy::I32, WBin::Xor));
            }),
            WirMutator::DivEdge => with_return_garnish(module, rng, |body, _, rng| {
                let a = DIV_EDGE_POOL[rng.gen_range(0..DIV_EDGE_POOL.len())];
                let b = DIV_EDGE_POOL[rng.gen_range(0..DIV_EDGE_POOL.len())];
                let op = if rng.gen_bool(0.5) {
                    WBin::DivS
                } else {
                    WBin::RemS
                };
                body.push(WirInst::Const(WTy::I32, a));
                body.push(WirInst::Const(WTy::I32, b));
                body.push(WirInst::Binop(WTy::I32, op));
            }),
            WirMutator::SelectGarnish => with_return_garnish(module, rng, |body, _, rng| {
                body.push(WirInst::Const(WTy::I32, 21));
                body.push(WirInst::Const(WTy::I32, 35));
                // Conditions with a clear low bit but non-zero value are the
                // truthiness divergence the bridge must mask.
                body.push(WirInst::Const(WTy::I32, rng.gen_range(0..5) * 2));
                body.push(WirInst::Select);
            }),
            WirMutator::TeeShuffle => with_return_garnish(module, rng, |body, f, rng| {
                let l = rng.gen_range(0..f.local_count() as u32);
                body.push(WirInst::Const(WTy::I32, rng.gen_range(1..32)));
                body.push(WirInst::LocalTee(l));
            }),
            WirMutator::CmpChain => with_return_garnish(module, rng, |body, f, rng| {
                let l = rng.gen_range(0..f.local_count() as u32);
                let c = WCmp::ALL[rng.gen_range(0..WCmp::ALL.len())];
                body.push(WirInst::LocalGet(l));
                body.push(WirInst::Const(WTy::I32, rng.gen_range(0..9)));
                body.push(WirInst::Cmp(WTy::I32, c));
                body.push(WirInst::Eqz(WTy::I32));
            }),
            WirMutator::BlockSkip => with_head_stmt(module, rng, |body, rng| {
                body.push(WirInst::Block);
                body.push(WirInst::Const(WTy::I32, rng.gen_range(0..2)));
                body.push(WirInst::BrIf(0));
                body.push(WirInst::Nop);
                body.push(WirInst::End);
            }),
            WirMutator::LoopSpin => {
                let mut m = module.clone();
                let f = main_mut(&mut m)?;
                let c = f.alloc_local(WTy::I32);
                let bound = rng.gen_range(2..6);
                let stmt = vec![
                    WirInst::Const(WTy::I32, 0),
                    WirInst::LocalSet(c),
                    WirInst::Loop,
                    WirInst::LocalGet(c),
                    WirInst::Const(WTy::I32, 1),
                    WirInst::Binop(WTy::I32, WBin::Add),
                    WirInst::LocalSet(c),
                    WirInst::LocalGet(c),
                    WirInst::Const(WTy::I32, bound),
                    WirInst::Cmp(WTy::I32, WCmp::LtS),
                    WirInst::BrIf(0),
                    WirInst::End,
                ];
                splice_head(&mut m, stmt)?;
                Some(m)
            }
            WirMutator::BrTableHop => with_head_stmt(module, rng, |body, rng| {
                body.push(WirInst::Block);
                body.push(WirInst::Block);
                body.push(WirInst::Const(WTy::I32, rng.gen_range(0..3)));
                body.push(WirInst::BrTable(vec![0, 1, 0]));
                body.push(WirInst::End);
                body.push(WirInst::Nop);
                body.push(WirInst::End);
            }),
        }?;
        verify_module(&out).ok()?;
        Some(out)
    }
}

/// The mutators usable for modules of `version`, in catalogue order.
pub fn applicable_wir_mutators(version: siro_wir::WirVersion) -> Vec<WirMutator> {
    WirMutator::ALL
        .into_iter()
        .filter(|m| m.applicable(version))
        .collect()
}

/// The raisable (straight-line) mutators for `version`, used by the
/// cross-dialect oracle so mutants stay inside the bridge's subset.
pub fn raisable_wir_mutators(version: siro_wir::WirVersion) -> Vec<WirMutator> {
    applicable_wir_mutators(version)
        .into_iter()
        .filter(|m| m.raisable())
        .collect()
}

fn main_mut(m: &mut WirModule) -> Option<&mut WirFunc> {
    m.funcs.iter_mut().find(|f| f.name == "main")
}

/// Rebuilds `main`'s body as `prefix ++ body` (height-neutral statement at
/// the head, where the stack is empty by construction).
fn splice_head(m: &mut WirModule, prefix: Vec<WirInst>) -> Option<()> {
    let f = main_mut(m)?;
    let old: Vec<WirInst> = f.body.iter().cloned().collect();
    f.body = siro_ir::Arena::new();
    for i in prefix.into_iter().chain(old) {
        f.body.alloc(i);
    }
    Some(())
}

/// The head-statement surgery: `inject` appends a height-neutral statement
/// which is spliced before the whole body (where the stack is empty, so
/// height-neutrality is the only obligation).
fn with_head_stmt(
    module: &WirModule,
    rng: &mut StdRng,
    inject: impl FnOnce(&mut Vec<WirInst>, &mut StdRng),
) -> Option<WirModule> {
    let mut m = module.clone();
    let mut stmt = Vec::new();
    inject(&mut stmt, rng);
    splice_head(&mut m, stmt)?;
    Some(m)
}

/// The return-garnish surgery shared by the value-flow mutators: detach
/// `main`'s trailing `return`, let `inject` push exactly one extra value,
/// fold it into the original result with `xor`, and re-attach the return.
/// Returns `None` when `main` does not end with `return` on an `i32`
/// result.
fn with_return_garnish(
    module: &WirModule,
    rng: &mut StdRng,
    inject: impl FnOnce(&mut Vec<WirInst>, &WirFunc, &mut StdRng),
) -> Option<WirModule> {
    let mut m = module.clone();
    let f = main_mut(&mut m)?;
    if f.result != Some(WTy::I32) {
        return None;
    }
    let mut body: Vec<WirInst> = f.body.iter().cloned().collect();
    if body.pop()? != WirInst::Return {
        return None;
    }
    let mut garnish = Vec::new();
    inject(&mut garnish, f, rng);
    body.extend(garnish);
    body.push(WirInst::Binop(WTy::I32, WBin::Xor));
    body.push(WirInst::Return);
    f.body = siro_ir::Arena::new();
    for i in body {
        f.body.alloc(i);
    }
    Some(m)
}

/// Integer-constant perturbation over every `i32.const` site in `main`.
fn const_tweak(module: &WirModule, rng: &mut StdRng) -> Option<WirModule> {
    let mut m = module.clone();
    let f = main_mut(&mut m)?;
    let sites: Vec<usize> = f
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| matches!(inst, WirInst::Const(WTy::I32, _)).then_some(i))
        .collect();
    if sites.is_empty() {
        return None;
    }
    let site = sites[rng.gen_range(0..sites.len())];
    let delta = rng.gen_range(1..9);
    if let WirInst::Const(_, v) = &mut f.body[site] {
        *v = (v.wrapping_add(delta) as i32) as i64;
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_rng::SeedableRng;
    use siro_wir::{generate_module, generate_straightline, WirMachine, WirVersion};

    #[test]
    fn every_mutator_yields_a_validating_running_mutant() {
        let base = generate_module(42, WirVersion::W3_0);
        for mu in WirMutator::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let Some(mutant) = mu.apply(&base, &mut rng) else {
                panic!("{} produced no mutant on the seed", mu.name());
            };
            verify_module(&mutant).unwrap_or_else(|e| panic!("{}: {e}", mu.name()));
            let out = WirMachine::new(&mutant).with_fuel(100_000).run_main();
            assert!(out.steps > 0, "{} mutant did not execute", mu.name());
            for &k in mu.injected_kinds() {
                let placed = mutant
                    .funcs
                    .iter()
                    .any(|f| f.body.iter().any(|i| i.kind() == k));
                assert!(placed, "{} did not place {k}", mu.name());
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let base = generate_module(7, WirVersion::W3_0);
        for mu in WirMutator::ALL {
            let a = mu.apply(&base, &mut StdRng::seed_from_u64(3));
            let b = mu.apply(&base, &mut StdRng::seed_from_u64(3));
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(
                    siro_wir::write::write_module(&x),
                    siro_wir::write::write_module(&y),
                    "{}",
                    mu.name()
                ),
                (None, None) => {}
                _ => panic!("{} nondeterministic applicability", mu.name()),
            }
        }
    }

    #[test]
    fn raisable_mutants_stay_straight_line() {
        let base = generate_straightline(11, WirVersion::W2_0);
        for mu in raisable_wir_mutators(WirVersion::W2_0) {
            let mut rng = StdRng::seed_from_u64(5);
            let Some(mutant) = mu.apply(&base, &mut rng) else {
                continue;
            };
            assert!(
                siro_synth::raise_module(&mutant, siro_ir::IrVersion::V13_0).is_ok(),
                "{} mutant left the bridge's raisable subset",
                mu.name()
            );
        }
    }

    #[test]
    fn gating_follows_the_wir_catalog() {
        assert!(!WirMutator::SelectGarnish.applicable(WirVersion::W1_0));
        assert!(WirMutator::SelectGarnish.applicable(WirVersion::W2_0));
        assert!(!WirMutator::BrTableHop.applicable(WirVersion::W2_0));
        assert!(WirMutator::BrTableHop.applicable(WirVersion::W3_0));
        assert!(!applicable_wir_mutators(WirVersion::W1_0).contains(&WirMutator::TeeShuffle));
    }

    #[test]
    fn garnish_changes_behaviour_observably_or_not_at_all() {
        // Sensitivity: a miscompiled garnish must be visible to the
        // differential oracle, so the xor fold must reach the result.
        let base = generate_straightline(3, WirVersion::W2_0);
        let mut rng = StdRng::seed_from_u64(1);
        let mutant = WirMutator::XorGarnish
            .apply(&base, &mut rng)
            .expect("applies");
        let a = WirMachine::new(&base).run_main().result;
        let b = WirMachine::new(&mutant).run_main().result;
        // Both run; the garnish xors in `local ^ const`, so the results can
        // differ — but the mutant must still terminate with a value or a
        // comparable trap, never a validation failure.
        let _ = (a, b);
        verify_module(&mutant).expect("mutant validates");
    }
}
