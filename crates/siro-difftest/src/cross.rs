//! The cross-dialect interpreter-differential oracle.
//!
//! Within a dialect the difftest compares exact behaviours; across the
//! SIRO↔WIR bridge exactness is the wrong contract, because the dialects
//! *genuinely* disagree in two places (wrapping vs trapping `sdiv MIN/-1`,
//! low-bit vs non-zero `select` truthiness) and the bridge's whole job is
//! to normalize those divergences into a shared bucket. The oracle
//! therefore compares [`XBehaviour`] buckets: a WIR module, its raised
//! Siro image, and the round-trip lowered image must all land in the same
//! bucket, over a corpus of generated straight-line modules diversified by
//! the raisable [`crate::wir_mutate`] mutators.
//!
//! Any bucket mismatch is a [`FailureFamily::CrossDialect`] failure. A
//! confirmed failure is persisted as a [`CrossArtifact`] — a valid WIR
//! module with `;; difftest-*:` metadata, the `.sirw` sibling of the Siro
//! `.sir` regression artifacts — and replayed by
//! `tests/cross_replay.rs` in the default lane.

use std::path::{Path, PathBuf};

use siro_ir::IrVersion;
use siro_rng::{SeedableRng, StdRng};
use siro_synth::{
    lower_module, raise_module, siro_behaviour, wir_behaviour, BridgeError, XBehaviour,
    BRIDGE_ANCHORS,
};
use siro_wir::{generate_straightline, parse_module, write_module, WirModule, WirVersion};

use crate::oracle::FailureFamily;
use crate::wir_mutate::raisable_wir_mutators;

/// Schema tag stamped into every cross-dialect artifact.
pub const CROSS_ARTIFACT_SCHEMA: &str = "siro-difftest/cross-regression-v1";

/// Default fuzzed-module count: the acceptance bar is ≥ 500 per anchor.
pub const CROSS_DEFAULT_MODULES: usize = 500;

/// Configuration for one cross-dialect differential run over an anchor.
#[derive(Debug, Clone, Copy)]
pub struct CrossConfig {
    /// The Siro side of the anchor.
    pub siro: IrVersion,
    /// The WIR side of the anchor.
    pub wir: WirVersion,
    /// RNG / generator seed base.
    pub seed: u64,
    /// How many fuzzed modules to push through the oracle.
    pub modules: usize,
}

impl CrossConfig {
    /// The default configuration for an anchor pair.
    pub fn new(siro: IrVersion, wir: WirVersion) -> Self {
        CrossConfig {
            siro,
            wir,
            seed: 42,
            modules: CROSS_DEFAULT_MODULES,
        }
    }
}

/// One confirmed cross-dialect oracle violation.
#[derive(Debug, Clone)]
pub struct CrossFailure {
    /// Which leg diverged: `raise` (WIR→SIRO) or `lower` (SIRO→WIR
    /// round trip).
    pub direction: &'static str,
    /// Always [`FailureFamily::CrossDialect`].
    pub family: FailureFamily,
    /// The mutator that produced the failing input (`seed` for an
    /// unmutated generator output).
    pub mutator: &'static str,
    /// Behaviour evidence (`got` vs `want` buckets).
    pub detail: String,
    /// The WIR-side failing module.
    pub module: WirModule,
}

/// The outcome of one cross-dialect differential run.
#[derive(Debug, Clone, Default)]
pub struct CrossReport {
    /// Modules pushed through the oracle (each checks both directions).
    pub modules_checked: usize,
    /// How many landed in the arithmetic-trap bucket — the normalized
    /// divergence class; a corpus that never reaches it proves nothing.
    pub arith_cases: usize,
    /// Inputs skipped (fuel exhaustion or bridge-subset partiality).
    pub skips: usize,
    /// Confirmed bucket mismatches.
    pub failures: Vec<CrossFailure>,
}

/// Runs the interpreter-differential oracle over `cfg.modules` fuzzed
/// straight-line WIR modules: each module's bucket must survive the raise
/// to Siro and the lowering back (both bridge directions are exercised on
/// every input).
///
/// # Errors
///
/// [`BridgeError::NotAnAnchor`] when the pair has no bridge; per-module
/// raise/lower partiality is counted as a skip, not an error.
pub fn run_cross(cfg: &CrossConfig) -> Result<CrossReport, BridgeError> {
    if !siro_synth::is_anchor_pair(cfg.siro, cfg.wir) {
        return Err(BridgeError::NotAnAnchor(cfg.siro, cfg.wir));
    }
    let mutators = raisable_wir_mutators(cfg.wir);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc805_5d1f);
    let mut report = CrossReport::default();

    for i in 0..cfg.modules {
        let seed = cfg.seed.wrapping_add(i as u64);
        let base = generate_straightline(seed, cfg.wir);
        // Every other input is diversified by a raisable mutator, rotated
        // round-robin so each gets airtime within one sweep.
        let (w, mutator) = if i % 2 == 1 && !mutators.is_empty() {
            let mu = mutators[(i / 2) % mutators.len()];
            match mu.apply(&base, &mut rng) {
                Some(m) => (m, mu.name()),
                None => (base, "seed"),
            }
        } else {
            (base, "seed")
        };

        let want = wir_behaviour(&w);
        if want == XBehaviour::Fuel {
            report.skips += 1;
            continue;
        }
        if want == XBehaviour::Arith {
            report.arith_cases += 1;
        }

        // Raise leg: WIR → SIRO.
        let s = match raise_module(&w, cfg.siro) {
            Ok(s) => s,
            Err(BridgeError::Unsupported(_)) => {
                report.skips += 1;
                continue;
            }
            Err(e) => {
                report.failures.push(CrossFailure {
                    direction: "raise",
                    family: FailureFamily::CrossDialect,
                    mutator,
                    detail: format!("raise {} -> {}: {e}", cfg.wir, cfg.siro),
                    module: w,
                });
                continue;
            }
        };
        let got = siro_behaviour(&s);
        if got != want {
            report.failures.push(CrossFailure {
                direction: "raise",
                family: FailureFamily::CrossDialect,
                mutator,
                detail: format!("wir {want}, raised siro {got}"),
                module: w,
            });
            continue;
        }

        // Lower leg: the Siro image back down — the SIRO→WIR direction
        // over a fuzzed Siro source.
        match lower_module(&s, cfg.wir) {
            Ok(w2) => {
                let got = wir_behaviour(&w2);
                if got != want {
                    report.failures.push(CrossFailure {
                        direction: "lower",
                        family: FailureFamily::CrossDialect,
                        mutator,
                        detail: format!("wir {want}, round-trip lowered {got}"),
                        module: w,
                    });
                    continue;
                }
            }
            Err(BridgeError::Unsupported(_)) => report.skips += 1,
            Err(e) => {
                report.failures.push(CrossFailure {
                    direction: "lower",
                    family: FailureFamily::CrossDialect,
                    mutator,
                    detail: format!("lower {} -> {}: {e}", cfg.siro, cfg.wir),
                    module: w,
                });
                continue;
            }
        }
        report.modules_checked += 1;
    }
    Ok(report)
}

/// One bridge anchor paired with the [`CrossReport`] its run produced.
pub type AnchorReport = ((IrVersion, WirVersion), CrossReport);

/// Runs [`run_cross`] over every [`BRIDGE_ANCHORS`] entry with default
/// settings, returning `(anchor, report)` pairs.
///
/// # Errors
///
/// Propagates the first anchor's [`BridgeError`] (anchors are validated
/// pairs, so this only fires if the anchor list itself regresses).
pub fn run_all_anchors(modules: usize) -> Result<Vec<AnchorReport>, BridgeError> {
    let mut out = Vec::new();
    for (siro, wir) in BRIDGE_ANCHORS {
        let mut cfg = CrossConfig::new(siro, wir);
        cfg.modules = modules;
        let report = run_cross(&cfg)?;
        out.push(((siro, wir), report));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Cross-dialect regression artifacts (.sirw)
// ---------------------------------------------------------------------------

/// A persisted cross-dialect regression: the WIR-side module of a recorded
/// divergence, plus the reproduction metadata, in a file
/// [`siro_wir::parse_module`] accepts unchanged.
#[derive(Debug, Clone)]
pub struct CrossArtifact {
    /// The Siro side of the anchor.
    pub siro: IrVersion,
    /// The WIR side of the anchor (also the module's version).
    pub wir: WirVersion,
    /// The leg that diverged (`raise` / `lower`).
    pub direction: String,
    /// Failure family (always cross-dialect for artifacts from this
    /// oracle).
    pub family: FailureFamily,
    /// The mutator that produced the failing input.
    pub mutator: String,
    /// Evidence string.
    pub detail: String,
    /// The WIR-side module.
    pub module: WirModule,
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CrossArtifact {
    /// Builds an artifact from a [`CrossFailure`] found at an anchor.
    pub fn from_failure(siro: IrVersion, wir: WirVersion, f: &CrossFailure) -> Self {
        CrossArtifact {
            siro,
            wir,
            direction: f.direction.to_string(),
            family: f.family,
            mutator: f.mutator.to_string(),
            detail: f.detail.clone(),
            module: f.module.clone(),
        }
    }

    /// Renders the artifact to its on-disk text: canonical WIR followed by
    /// `;; difftest-*:` comment metadata the WIR parser skips.
    pub fn render(&self) -> String {
        let mut out = write_module(&self.module);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&format!(";; difftest-schema: {CROSS_ARTIFACT_SCHEMA}\n"));
        out.push_str(&format!(
            ";; difftest-anchor: {} <-> wir{}\n",
            self.siro, self.wir
        ));
        out.push_str(&format!(
            ";; difftest-direction: {}\n",
            one_line(&self.direction)
        ));
        out.push_str(&format!(";; difftest-family: {}\n", self.family.name()));
        out.push_str(&format!(
            ";; difftest-mutator: {}\n",
            one_line(&self.mutator)
        ));
        out.push_str(&format!(";; difftest-detail: {}\n", one_line(&self.detail)));
        out
    }

    /// The content-derived file name, e.g.
    /// `13.0-w2.0-raise-cross-dialect-1a2b3c4d.sirw`.
    pub fn file_name(&self) -> String {
        format!(
            "{}-w{}-{}-{}-{:08x}.sirw",
            self.siro,
            self.wir,
            one_line(&self.direction),
            self.family.name(),
            fnv1a(write_module(&self.module).as_bytes()) as u32
        )
    }

    /// Writes the artifact under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Parses an artifact back from its on-disk text.
    pub fn parse(text: &str) -> Option<Self> {
        let meta = |key: &str| -> Option<String> {
            text.lines().find_map(|l| {
                l.strip_prefix(";; difftest-")
                    .and_then(|r| r.strip_prefix(key))
                    .and_then(|r| r.strip_prefix(':'))
                    .map(|v| v.trim().to_string())
            })
        };
        if meta("schema")? != CROSS_ARTIFACT_SCHEMA {
            return None;
        }
        let anchor = meta("anchor")?;
        let (siro, wir) = anchor.split_once("<->")?;
        let parse_pair = |s: &str| -> Option<(u16, u16)> {
            let (maj, min) = s.trim().split_once('.')?;
            Some((maj.parse().ok()?, min.parse().ok()?))
        };
        let (smaj, smin) = parse_pair(siro)?;
        let (wmaj, wmin) = parse_pair(wir.trim().strip_prefix("wir")?)?;
        let module = parse_module(text).ok()?;
        Some(CrossArtifact {
            siro: IrVersion::new(smaj, smin),
            wir: WirVersion::new(wmaj, wmin),
            direction: meta("direction")?,
            family: FailureFamily::parse(&meta("family")?)?,
            mutator: meta("mutator")?,
            detail: meta("detail")?,
            module,
        })
    }

    /// Loads every `.sirw` artifact under `dir`, sorted by file name.
    /// A missing directory is an empty set, not an error.
    pub fn load_dir(dir: &Path) -> Vec<(PathBuf, CrossArtifact)> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sirw"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .filter_map(|p| {
                let text = std::fs::read_to_string(&p).ok()?;
                CrossArtifact::parse(&text).map(|a| (p, a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_wir::{WBin, WTy, WirFunc, WirInst};

    /// The canonical first divergence: `MIN div_s -1` traps in WIR where
    /// Siro's `sdiv` wraps.
    fn sdiv_overflow_module(wir: WirVersion) -> WirModule {
        let mut m = WirModule::new("sdiv_overflow", wir);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        f.body.alloc(WirInst::Const(WTy::I32, i32::MIN as i64));
        f.body.alloc(WirInst::Const(WTy::I32, -1));
        f.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
        f.body.alloc(WirInst::Return);
        m.funcs.push(f);
        m
    }

    #[test]
    fn clean_anchor_runs_find_no_failures() {
        for (siro, wir) in BRIDGE_ANCHORS {
            let mut cfg = CrossConfig::new(siro, wir);
            cfg.modules = 60;
            let report = run_cross(&cfg).expect("anchor pair");
            assert!(
                report.failures.is_empty(),
                "{siro}<->wir{wir}: {:?}",
                report.failures.first().map(|f| &f.detail)
            );
            assert!(report.modules_checked > 40, "too few comparable modules");
        }
    }

    #[test]
    fn non_anchor_pairs_are_refused() {
        let cfg = CrossConfig::new(IrVersion::V3_6, WirVersion::W1_0);
        assert!(matches!(
            run_cross(&cfg),
            Err(BridgeError::NotAnAnchor(_, _))
        ));
    }

    #[test]
    fn corpus_reaches_the_arith_bucket() {
        // The divergence the bridge normalizes lives in the arith bucket;
        // a run that never visits it would vacuously pass.
        let mut cfg = CrossConfig::new(IrVersion::V13_0, WirVersion::W2_0);
        cfg.modules = 200;
        let report = run_cross(&cfg).expect("anchor pair");
        assert!(
            report.arith_cases > 0,
            "generator must exercise the trap bucket"
        );
    }

    #[test]
    fn cross_artifact_round_trips_through_text() {
        let a = CrossArtifact {
            siro: IrVersion::V13_0,
            wir: WirVersion::W2_0,
            direction: "raise".into(),
            family: FailureFamily::CrossDialect,
            mutator: "wir-div-edge".into(),
            detail: "wir traps integer-overflow, naive raise wraps to value -2147483648".into(),
            module: sdiv_overflow_module(WirVersion::W2_0),
        };
        let text = a.render();
        let b = CrossArtifact::parse(&text).expect("parse back");
        assert_eq!(b.siro, a.siro);
        assert_eq!(b.wir, a.wir);
        assert_eq!(b.direction, a.direction);
        assert_eq!(b.family, a.family);
        assert_eq!(b.mutator, a.mutator);
        assert_eq!(b.detail, a.detail);
        assert_eq!(write_module(&b.module), write_module(&a.module));
    }

    #[test]
    fn cross_artifact_text_is_a_valid_wir_module() {
        let a = CrossArtifact {
            siro: IrVersion::V13_0,
            wir: WirVersion::W2_0,
            direction: "raise".into(),
            family: FailureFamily::CrossDialect,
            mutator: "seed".into(),
            detail: "divergence".into(),
            module: sdiv_overflow_module(WirVersion::W2_0),
        };
        let m = parse_module(&a.render()).expect("metadata must not break parsing");
        assert_eq!(m.version, WirVersion::W2_0);
        assert!(siro_wir::looks_like_wir(&a.render()));
    }

    #[test]
    fn file_name_is_deterministic_and_content_addressed() {
        let a = CrossArtifact {
            siro: IrVersion::V13_0,
            wir: WirVersion::W2_0,
            direction: "raise".into(),
            family: FailureFamily::CrossDialect,
            mutator: "seed".into(),
            detail: "d".into(),
            module: sdiv_overflow_module(WirVersion::W2_0),
        };
        assert_eq!(a.file_name(), a.file_name());
        assert!(a.file_name().starts_with("13.0-w2.0-raise-cross-dialect-"));
        assert!(a.file_name().ends_with(".sirw"));
    }
}
