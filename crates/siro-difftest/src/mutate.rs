//! Targeted IR mutators: well-typed program surgery that injects the
//! long-tail instruction kinds random generation essentially never
//! produces (the §7 diversity limitation [`siro_testcases::gen`]
//! documents).
//!
//! Every structural mutator works the same way: find `main`'s returning
//! block, detach its `ret`, build a small *garnish* snippet whose value
//! depends on the original return value, and return `ret (old ^ garnish)`.
//! The data dependence matters — a miscompiled garnish changes the
//! program's observable result, so the differential oracle sees it.
//!
//! Mutants never use `undef` values: the `freeze` lowering is
//! operand-forwarding, so an `undef`-carrying mutant would make the
//! oracles unsound rather than the translator wrong.

use siro_ir::{
    verify, BlockId, FloatPredicate, FuncBuilder, FuncId, Instruction, IntPredicate, IrVersion,
    Module, Opcode, RmwOp, TypeId, ValueRef,
};
use siro_rng::{Rng, StdRng};

/// One targeted mutation. Every variant is deterministic given the RNG
/// state and gated on [`Mutator::applicable`] so mutants stay well-formed
/// for their module's version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mutator {
    /// Perturb one integer constant in an arithmetic/compare position.
    ConstTweak,
    /// Insert a `fence` barrier (no data effect).
    FenceBarrier,
    /// `alloca`/`store`/`atomicrmw add`/`load` counter round trip.
    AtomicCounter,
    /// `cmpxchg` plus `extractvalue` on its `{ty, i1}` result.
    CompareExchange,
    /// `insertelement`/`shufflevector`/`extractelement` lane traffic.
    VectorLanes,
    /// A `switch` over the low bits, merged through a `phi`.
    SwitchDispatch,
    /// An `indirectbr` over the low bit, merged through a `phi`.
    IndirectDispatch,
    /// `invoke` of a helper with a `landingpad`/`resume` unwind block.
    InvokeUnwind,
    /// `sitofp` → float arithmetic → `fcmp` → `select`.
    FloatChain,
    /// `getelementptr` into an `alloca`'d array, store/load round trip.
    ArrayGep,
    /// A never-taken branch to an `unreachable` block.
    DeadUnreachable,
    /// `ptrtoint`/`inttoptr` round trip, then load through the result.
    PointerRoundTrip,
    /// `freeze` of a concrete value (version ≥ 10.0).
    FreezeValue,
    /// `insertvalue`/`extractvalue` struct round trip.
    AggregateRoundTrip,
    /// A `va_arg` probe (defined-zero in the interpreter's model).
    VaArgProbe,
    /// Asymmetric arithmetic (`sub`/`udiv`/`shl` with safe constants) —
    /// the kinds an operand-swap miscompile is most sensitive to.
    BinopMix,
}

impl Mutator {
    /// Every mutator, in catalogue order.
    pub const ALL: [Mutator; 16] = [
        Mutator::ConstTweak,
        Mutator::FenceBarrier,
        Mutator::AtomicCounter,
        Mutator::CompareExchange,
        Mutator::VectorLanes,
        Mutator::SwitchDispatch,
        Mutator::IndirectDispatch,
        Mutator::InvokeUnwind,
        Mutator::FloatChain,
        Mutator::ArrayGep,
        Mutator::DeadUnreachable,
        Mutator::PointerRoundTrip,
        Mutator::FreezeValue,
        Mutator::AggregateRoundTrip,
        Mutator::VaArgProbe,
        Mutator::BinopMix,
    ];

    /// Stable catalogue name (used in reports and regression artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Mutator::ConstTweak => "const-tweak",
            Mutator::FenceBarrier => "fence-barrier",
            Mutator::AtomicCounter => "atomic-counter",
            Mutator::CompareExchange => "compare-exchange",
            Mutator::VectorLanes => "vector-lanes",
            Mutator::SwitchDispatch => "switch-dispatch",
            Mutator::IndirectDispatch => "indirect-dispatch",
            Mutator::InvokeUnwind => "invoke-unwind",
            Mutator::FloatChain => "float-chain",
            Mutator::ArrayGep => "array-gep",
            Mutator::DeadUnreachable => "dead-unreachable",
            Mutator::PointerRoundTrip => "pointer-round-trip",
            Mutator::FreezeValue => "freeze-value",
            Mutator::AggregateRoundTrip => "aggregate-round-trip",
            Mutator::VaArgProbe => "va-arg-probe",
            Mutator::BinopMix => "binop-mix",
        }
    }

    /// The opcodes the mutator injects; all must be supported by the
    /// module's version for the mutant to verify.
    pub fn injected_kinds(self) -> &'static [Opcode] {
        match self {
            Mutator::ConstTweak => &[],
            Mutator::FenceBarrier => &[Opcode::Fence],
            Mutator::AtomicCounter => &[Opcode::AtomicRmw],
            Mutator::CompareExchange => &[Opcode::CmpXchg, Opcode::ExtractValue, Opcode::ZExt],
            Mutator::VectorLanes => &[
                Opcode::InsertElement,
                Opcode::ShuffleVector,
                Opcode::ExtractElement,
            ],
            Mutator::SwitchDispatch => &[Opcode::Switch, Opcode::Phi],
            Mutator::IndirectDispatch => &[Opcode::IndirectBr, Opcode::Phi],
            Mutator::InvokeUnwind => &[Opcode::Invoke, Opcode::LandingPad, Opcode::Resume],
            Mutator::FloatChain => &[
                Opcode::SIToFP,
                Opcode::FAdd,
                Opcode::FMul,
                Opcode::FCmp,
                Opcode::Select,
            ],
            Mutator::ArrayGep => &[Opcode::GetElementPtr],
            Mutator::DeadUnreachable => &[Opcode::Unreachable],
            Mutator::PointerRoundTrip => &[Opcode::PtrToInt, Opcode::IntToPtr],
            Mutator::FreezeValue => &[Opcode::Freeze],
            Mutator::AggregateRoundTrip => &[Opcode::InsertValue, Opcode::ExtractValue],
            Mutator::VaArgProbe => &[Opcode::VAArg],
            Mutator::BinopMix => &[Opcode::Sub, Opcode::UDiv, Opcode::Shl],
        }
    }

    /// Whether the mutator's injected kinds all exist at `version`.
    pub fn applicable(self, version: IrVersion) -> bool {
        self.injected_kinds().iter().all(|&k| version.supports(k))
    }

    /// Applies the mutation. Returns `None` when the module has no
    /// suitable surgery site or the mutant fails verification.
    pub fn apply(self, module: &Module, rng: &mut StdRng) -> Option<Module> {
        if !self.applicable(module.version) {
            return None;
        }
        let out = match self {
            Mutator::ConstTweak => const_tweak(module, rng),
            Mutator::FenceBarrier => with_appended_snippet(module, |b, i32t, _| {
                b.fence();
                ValueRef::const_int(i32t, 0)
            }),
            Mutator::AtomicCounter => with_appended_snippet(module, |b, i32t, x| {
                let slot = b.alloca(i32t);
                b.store(ValueRef::const_int(i32t, 5), slot);
                let old = b.atomicrmw(RmwOp::Add, slot, x);
                let now = b.load(i32t, slot);
                b.add(old, now)
            }),
            Mutator::CompareExchange => with_appended_snippet(module, |b, i32t, x| {
                let i1 = b.module().types.i1();
                let slot = b.alloca(i32t);
                b.store(x, slot);
                let pair = b.cmpxchg(slot, x, ValueRef::const_int(i32t, 11));
                let old = b.extractvalue(pair, vec![0], i32t);
                let ok = b.extractvalue(pair, vec![1], i1);
                let oki = b.zext(ok, i32t);
                b.add(old, oki)
            }),
            Mutator::VectorLanes => with_appended_snippet(module, |b, i32t, x| {
                let v4 = b.module().types.vector(i32t, 4);
                let v0 = ValueRef::ZeroInit(v4);
                let v1 = b.insertelement(v0, x, ValueRef::const_int(i32t, 0));
                let v2 = b.insertelement(
                    v1,
                    ValueRef::const_int(i32t, 9),
                    ValueRef::const_int(i32t, 3),
                );
                let mut sh = Instruction::new(Opcode::ShuffleVector, v4, vec![v2, v0]);
                sh.attrs.indices = vec![3, 0, 5, 2];
                let shuffled = b.push(sh);
                b.extractelement(shuffled, ValueRef::const_int(i32t, 1), i32t)
            }),
            Mutator::SwitchDispatch => with_appended_snippet(module, |b, i32t, x| {
                let sel = b.and(x, ValueRef::const_int(i32t, 3));
                let c0 = b.add_block("df_c0");
                let c1 = b.add_block("df_c1");
                let dflt = b.add_block("df_default");
                let merge = b.add_block("df_merge");
                b.switch(sel, dflt, vec![(0, c0), (1, c1)]);
                b.position_at_end(c0);
                b.br(merge);
                b.position_at_end(c1);
                b.br(merge);
                b.position_at_end(dflt);
                b.br(merge);
                b.position_at_end(merge);
                b.phi(
                    i32t,
                    vec![
                        (ValueRef::const_int(i32t, 21), c0),
                        (x, c1),
                        (ValueRef::const_int(i32t, 4), dflt),
                    ],
                )
            }),
            Mutator::IndirectDispatch => with_appended_snippet(module, |b, i32t, x| {
                let void = b.module().types.void();
                let sel = b.and(x, ValueRef::const_int(i32t, 1));
                let d0 = b.add_block("df_d0");
                let d1 = b.add_block("df_d1");
                let merge = b.add_block("df_merge");
                b.push(Instruction::new(
                    Opcode::IndirectBr,
                    void,
                    vec![sel, ValueRef::Block(d0), ValueRef::Block(d1)],
                ));
                b.position_at_end(d0);
                b.br(merge);
                b.position_at_end(d1);
                b.br(merge);
                b.position_at_end(merge);
                b.phi(i32t, vec![(ValueRef::const_int(i32t, 17), d0), (x, d1)])
            }),
            Mutator::InvokeUnwind => {
                let mut pre = module.clone();
                let helper = ensure_helper_callee(&mut pre);
                with_appended_snippet(&pre, |b, i32t, _| {
                    let void = b.module().types.void();
                    let normal = b.add_block("df_normal");
                    let unwind = b.add_block("df_unwind");
                    let v = b.invoke(i32t, ValueRef::Func(helper), vec![], normal, unwind);
                    b.position_at_end(unwind);
                    let lp = b.push(Instruction::new(Opcode::LandingPad, i32t, vec![]));
                    b.push(Instruction::new(Opcode::Resume, void, vec![lp]));
                    b.position_at_end(normal);
                    v
                })
            }
            Mutator::FloatChain => with_appended_snippet(module, |b, i32t, x| {
                let f64t = b.module().types.f64();
                let xf = b.cast(Opcode::SIToFP, x, f64t);
                let g = b.fadd(
                    xf,
                    ValueRef::ConstFloat {
                        ty: f64t,
                        bits: 1.5f64.to_bits(),
                    },
                );
                let sq = b.fmul(g, g);
                let c = b.fcmp(
                    FloatPredicate::Olt,
                    sq,
                    ValueRef::ConstFloat {
                        ty: f64t,
                        bits: 1.0e6f64.to_bits(),
                    },
                );
                b.select(
                    c,
                    ValueRef::const_int(i32t, 13),
                    ValueRef::const_int(i32t, 27),
                )
            }),
            Mutator::ArrayGep => with_appended_snippet(module, |b, i32t, x| {
                let arr = b.module().types.array(i32t, 4);
                let pi32 = b.module().types.ptr(i32t);
                let slot = b.alloca(arr);
                let p = b.gep(
                    arr,
                    slot,
                    vec![ValueRef::const_int(i32t, 0), ValueRef::const_int(i32t, 2)],
                    pi32,
                );
                b.store(x, p);
                b.load(i32t, p)
            }),
            Mutator::DeadUnreachable => with_appended_snippet(module, |b, i32t, _| {
                let c = b.icmp(
                    IntPredicate::Eq,
                    ValueRef::const_int(i32t, 1),
                    ValueRef::const_int(i32t, 2),
                );
                let dead = b.add_block("df_dead");
                let live = b.add_block("df_live");
                b.cond_br(c, dead, live);
                b.position_at_end(dead);
                b.unreachable();
                b.position_at_end(live);
                ValueRef::const_int(i32t, 6)
            }),
            Mutator::PointerRoundTrip => with_appended_snippet(module, |b, i32t, x| {
                let i64t = b.module().types.i64();
                let pi32 = b.module().types.ptr(i32t);
                let slot = b.alloca(i32t);
                b.store(x, slot);
                let addr = b.ptrtoint(slot, i64t);
                let back = b.inttoptr(addr, pi32);
                b.load(i32t, back)
            }),
            Mutator::FreezeValue => with_appended_snippet(module, |b, _, x| b.freeze(x)),
            Mutator::AggregateRoundTrip => with_appended_snippet(module, |b, i32t, x| {
                let st = b.module().types.struct_(vec![i32t, i32t]);
                let a0 = ValueRef::ZeroInit(st);
                let a1 = b.insertvalue(a0, x, vec![0]);
                let a2 = b.insertvalue(a1, ValueRef::const_int(i32t, 3), vec![1]);
                let e0 = b.extractvalue(a2, vec![0], i32t);
                let e1 = b.extractvalue(a2, vec![1], i32t);
                b.add(e0, e1)
            }),
            Mutator::VaArgProbe => with_appended_snippet(module, |b, i32t, _| {
                let slot = b.alloca(i32t);
                b.push(Instruction::new(Opcode::VAArg, i32t, vec![slot]))
            }),
            Mutator::BinopMix => with_appended_snippet(module, |b, i32t, x| {
                let a = b.sub(x, ValueRef::const_int(i32t, 3));
                let d = b.udiv(a, ValueRef::const_int(i32t, 5));
                b.shl(d, ValueRef::const_int(i32t, 1))
            }),
        }?;
        verify::verify_module(&out).ok()?;
        Some(out)
    }
}

/// The mutators usable for modules of `version`, in catalogue order.
pub fn applicable_mutators(version: IrVersion) -> Vec<Mutator> {
    Mutator::ALL
        .into_iter()
        .filter(|m| m.applicable(version))
        .collect()
}

/// The surgery shared by every structural mutator: detach `main`'s
/// `ret i32 %v`, run `inject` positioned in the returning block, and close
/// with `ret (%v ^ garnish)`. Returns `None` when `main` has no
/// single-operand i32 `ret` to splice (the detached `ret` stays in the
/// arena as a harmless orphan; artifacts round-trip through text, which
/// compacts it away).
pub fn with_appended_snippet(
    module: &Module,
    inject: impl FnOnce(&mut FuncBuilder<'_>, TypeId, ValueRef) -> ValueRef,
) -> Option<Module> {
    let mut m = module.clone();
    let i32t = m.types.i32();
    let fid = m.func_by_name("main")?;
    let (bi, ret_val) = {
        let f = m.func(fid);
        f.blocks.iter().enumerate().find_map(|(bi, blk)| {
            let &iid = blk.insts.last()?;
            let inst = f.inst(iid);
            (inst.opcode == Opcode::Ret
                && inst.operands.len() == 1
                && m.value_type(f, inst.operands[0]) == Some(i32t))
            .then(|| (bi, inst.operands[0]))
        })?
    };
    m.func_mut(fid).blocks[bi].insts.pop();
    let ret_block = BlockId::new(bi as u32);
    let mut b = FuncBuilder::new(&mut m, fid);
    b.position_at_end(ret_block);
    let garnish = inject(&mut b, i32t, ret_val);
    let combined = b.xor(ret_val, garnish);
    b.ret(Some(combined));
    Some(m)
}

/// Adds (or finds) the defined helper `df_callee` the invoke mutator
/// calls: `define i32 @df_callee() { ret i32 7 }`.
fn ensure_helper_callee(m: &mut Module) -> FuncId {
    if let Some(f) = m.func_by_name("df_callee") {
        return f;
    }
    let i32t = m.types.i32();
    let f = FuncBuilder::define(m, "df_callee", i32t, vec![]);
    let mut b = FuncBuilder::new(m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.ret(Some(ValueRef::const_int(i32t, 7)));
    f
}

/// Integer-constant perturbation, restricted to operand positions that
/// cannot introduce division by zero or unportable shift amounts
/// (`add`/`sub`/`mul`/`xor`/`icmp`/`select`/`phi`/`ret`, i32 only).
fn const_tweak(module: &Module, rng: &mut StdRng) -> Option<Module> {
    let mut m = module.clone();
    let i32t = m.types.i32();
    let mut sites: Vec<(usize, siro_ir::InstId, usize)> = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        for blk in &f.blocks {
            for &iid in &blk.insts {
                let inst = f.inst(iid);
                if !matches!(
                    inst.opcode,
                    Opcode::Add
                        | Opcode::Sub
                        | Opcode::Mul
                        | Opcode::Xor
                        | Opcode::ICmp
                        | Opcode::Select
                        | Opcode::Phi
                        | Opcode::Ret
                ) {
                    continue;
                }
                for (oi, op) in inst.operands.iter().enumerate() {
                    if matches!(op, ValueRef::ConstInt { ty, .. } if *ty == i32t) {
                        sites.push((fi, iid, oi));
                    }
                }
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (fi, iid, oi) = sites[rng.gen_range(0..sites.len())];
    let delta = rng.gen_range(1..9);
    if let ValueRef::ConstInt { value, .. } = &mut m.funcs[fi].inst_mut(iid).operands[oi] {
        *value = value.wrapping_add(delta);
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::interp::Machine;
    use siro_rng::SeedableRng;
    use siro_testcases::gen::generate_cases;

    fn seed_module() -> Module {
        generate_cases(42, 1, IrVersion::V13_0).remove(0).module
    }

    #[test]
    fn every_mutator_yields_a_verifying_running_mutant() {
        let base = seed_module();
        for m in Mutator::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let Some(mutant) = m.apply(&base, &mut rng) else {
                panic!("{} produced no mutant on the seed", m.name());
            };
            verify::verify_module(&mutant).unwrap();
            let out = Machine::new(&mutant).with_fuel(100_000).run_main().unwrap();
            assert!(
                out.return_int().is_some(),
                "{} mutant did not return an int: {:?}",
                m.name(),
                out.result
            );
            for &k in m.injected_kinds() {
                let placed = mutant.funcs.iter().any(|f| {
                    f.blocks
                        .iter()
                        .flat_map(|b| &b.insts)
                        .any(|&i| f.inst(i).opcode == k)
                });
                assert!(placed, "{} did not place {k}", m.name());
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let base = seed_module();
        for m in Mutator::ALL {
            let a = m.apply(&base, &mut StdRng::seed_from_u64(3));
            let b = m.apply(&base, &mut StdRng::seed_from_u64(3));
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(
                    siro_ir::write::write_module(&x),
                    siro_ir::write::write_module(&y),
                    "{}",
                    m.name()
                ),
                (None, None) => {}
                _ => panic!("{} nondeterministic applicability", m.name()),
            }
        }
    }

    #[test]
    fn freeze_is_gated_on_version() {
        assert!(!Mutator::FreezeValue.applicable(IrVersion::V3_6));
        assert!(Mutator::FreezeValue.applicable(IrVersion::V13_0));
        assert!(!applicable_mutators(IrVersion::V3_6).contains(&Mutator::FreezeValue));
    }
}
