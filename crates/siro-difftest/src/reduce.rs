//! The delta-debugging IR reducer: shrink a failing input while
//! preserving the failure.
//!
//! Three passes run to a fixpoint, coarsest first:
//!
//! 1. **terminator simplification** — rewrite a `cond_br`/`switch`/
//!    `indirectbr` into an unconditional `br` to one of its successors,
//!    then sweep the blocks that became unreachable;
//! 2. **instruction dropping** — remove one placed instruction, replacing
//!    its uses with the zero constant of its type;
//! 3. **operand simplification** — replace an instruction/argument operand
//!    with the zero constant of its type.
//!
//! Every candidate is re-verified and re-checked against the caller's
//! `still_fails` predicate before it is accepted, so the reducer can never
//! drift onto a different (or vanished) bug. The search order is fixed and
//! the passes use no randomness, so reduction is deterministic for a given
//! input and predicate.

use siro_ir::{
    verify, BasicBlock, BlockId, InstId, Instruction, Module, Opcode, Type, TypeId, TypeTable,
    ValueRef,
};

/// Upper bound on fixpoint rounds (each round runs all three passes).
const MAX_ROUNDS: usize = 8;

/// The result of a reduction.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    /// The reduced module (still failing, still verifying).
    pub module: Module,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Candidate edits tried.
    pub tried: usize,
    /// Candidate edits accepted.
    pub accepted: usize,
}

/// The number of instructions actually placed in blocks (arena orphans
/// and unreachable code do not count — this is the size a human reads).
pub fn placed_inst_count(m: &Module) -> usize {
    m.funcs
        .iter()
        .map(|f| f.blocks.iter().map(|b| b.insts.len()).sum::<usize>())
        .sum()
}

/// The zero constant of `ty`, if the type has one.
fn zero_const(types: &TypeTable, ty: TypeId) -> Option<ValueRef> {
    match types.get(ty) {
        Type::Int(_) => Some(ValueRef::ConstInt { ty, value: 0 }),
        Type::F32 | Type::F64 => Some(ValueRef::ConstFloat { ty, bits: 0 }),
        Type::Ptr { .. } => Some(ValueRef::Null(ty)),
        Type::Array { .. } | Type::Vector { .. } | Type::Struct { .. } => {
            Some(ValueRef::ZeroInit(ty))
        }
        _ => None,
    }
}

/// Rebuilds every defined function keeping only blocks reachable from the
/// entry and the instructions placed in them, renumbering ids densely.
/// Phi incomings from dropped predecessors are removed; stray references
/// to dropped instructions (possible only in unverified intermediates)
/// become zero constants.
pub fn compact(m: &Module) -> Module {
    let mut out = m.clone();
    for (fi, f) in out.funcs.iter_mut().enumerate() {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        let old = &m.funcs[fi];
        // Reachability over the block graph.
        let mut reach = vec![false; old.blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reach[b], true) {
                continue;
            }
            if let Some(&tid) = old.blocks[b].insts.last() {
                for s in old.inst(tid).successors() {
                    if !reach[s.index()] {
                        stack.push(s.index());
                    }
                }
            }
        }
        // Renumber blocks and placed instructions.
        let mut block_map: Vec<Option<BlockId>> = vec![None; old.blocks.len()];
        let mut next_block = 0u32;
        for (bi, r) in reach.iter().enumerate() {
            if *r {
                block_map[bi] = Some(BlockId::new(next_block));
                next_block += 1;
            }
        }
        let mut inst_map: Vec<Option<InstId>> = vec![None; old.insts.len()];
        let mut new_insts: Vec<Instruction> = Vec::new();
        let mut new_blocks: Vec<BasicBlock> = Vec::new();
        for (bi, blk) in old.blocks.iter().enumerate() {
            if !reach[bi] {
                continue;
            }
            let mut nb = BasicBlock {
                name: blk.name.clone(),
                insts: Vec::with_capacity(blk.insts.len()),
            };
            for &iid in &blk.insts {
                let mut inst = old.inst(iid).clone();
                if inst.opcode == Opcode::Phi {
                    let mut ops = Vec::with_capacity(inst.operands.len());
                    for pair in inst.operands.chunks(2) {
                        if let [_, ValueRef::Block(pb)] = pair {
                            if reach[pb.index()] {
                                ops.extend_from_slice(pair);
                            }
                        }
                    }
                    inst.operands = ops.into();
                }
                let nid = InstId::new(new_insts.len() as u32);
                inst_map[iid.index()] = Some(nid);
                new_insts.push(inst);
                nb.insts.push(nid);
            }
            new_blocks.push(nb);
        }
        // Remap operands.
        for inst in &mut new_insts {
            for op in &mut inst.operands {
                *op = match *op {
                    ValueRef::Inst(oid) => match inst_map[oid.index()] {
                        Some(nid) => ValueRef::Inst(nid),
                        None => m
                            .value_type(old, ValueRef::Inst(oid))
                            .and_then(|t| zero_const(&m.types, t))
                            .unwrap_or(ValueRef::Inst(oid)),
                    },
                    ValueRef::Block(ob) => ValueRef::Block(block_map[ob.index()].unwrap_or(ob)),
                    other => other,
                };
            }
        }
        f.blocks = new_blocks.into();
        f.insts = new_insts.into();
    }
    out
}

fn accept(cand: &Module, still_fails: &impl Fn(&Module) -> bool) -> bool {
    verify::verify_module(cand).is_ok() && still_fails(cand)
}

/// Pass 1: try collapsing multi-way terminators into plain branches.
/// Returns true when an edit was accepted (and applied to `cur`).
fn simplify_one_terminator(
    cur: &mut Module,
    still_fails: &impl Fn(&Module) -> bool,
    tried: &mut usize,
) -> bool {
    let void = cur.types.void();
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].is_external {
            continue;
        }
        for bi in 0..cur.funcs[fi].blocks.len() {
            let Some(&tid) = cur.funcs[fi].blocks[bi].insts.last() else {
                continue;
            };
            let term = cur.funcs[fi].inst(tid);
            let multiway = matches!(term.opcode, Opcode::Switch | Opcode::IndirectBr)
                || (term.opcode == Opcode::Br && term.operands.len() == 3);
            if !multiway {
                continue;
            }
            let mut succs = term.successors();
            succs.dedup();
            for s in succs {
                *tried += 1;
                let mut cand = cur.clone();
                cand.funcs[fi].insts[tid.index()] =
                    Instruction::new(Opcode::Br, void, vec![ValueRef::Block(s)]);
                let cand = compact(&cand);
                if accept(&cand, still_fails) {
                    *cur = cand;
                    return true;
                }
            }
        }
    }
    false
}

/// Pass 1b: try dropping one `switch` case (keeps the opcode, sheds an
/// arm). Operand layout: `[value, default, (const, dest)*]`.
fn drop_one_switch_case(
    cur: &mut Module,
    still_fails: &impl Fn(&Module) -> bool,
    tried: &mut usize,
) -> bool {
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].is_external {
            continue;
        }
        for bi in 0..cur.funcs[fi].blocks.len() {
            let Some(&tid) = cur.funcs[fi].blocks[bi].insts.last() else {
                continue;
            };
            let term = cur.funcs[fi].inst(tid);
            if term.opcode != Opcode::Switch || term.operands.len() < 4 {
                continue;
            }
            let n_cases = (term.operands.len() - 2) / 2;
            for ci in 0..n_cases {
                *tried += 1;
                let mut cand = cur.clone();
                let ops = &mut cand.funcs[fi].inst_mut(tid).operands;
                let mut trimmed = ops.to_vec();
                trimmed.drain(2 + 2 * ci..4 + 2 * ci);
                *ops = trimmed.into();
                let cand = compact(&cand);
                if accept(&cand, still_fails) {
                    *cur = cand;
                    return true;
                }
            }
        }
    }
    false
}

/// Pass 1c: try merging a single-predecessor block into the block that
/// unconditionally branches to it. This is what collapses the long
/// straight-line `br` chains generated loop shapes leave behind.
fn merge_one_block(
    cur: &mut Module,
    still_fails: &impl Fn(&Module) -> bool,
    tried: &mut usize,
) -> bool {
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].is_external {
            continue;
        }
        for bi in 0..cur.funcs[fi].blocks.len() {
            let Some(&tid) = cur.funcs[fi].blocks[bi].insts.last() else {
                continue;
            };
            let term = cur.funcs[fi].inst(tid);
            if term.opcode != Opcode::Br || term.operands.len() != 1 {
                continue;
            }
            let ValueRef::Block(s) = term.operands[0] else {
                continue;
            };
            let si = s.index();
            if si == bi || si == 0 {
                continue;
            }
            // `s` must have no other predecessor.
            let f = &cur.funcs[fi];
            let other_pred = f.blocks.iter().enumerate().any(|(obi, ob)| {
                obi != bi
                    && ob
                        .insts
                        .last()
                        .is_some_and(|&t| f.inst(t).successors().contains(&s))
            });
            if other_pred {
                continue;
            }
            *tried += 1;
            let mut cand = cur.clone();
            let func = &mut cand.funcs[fi];
            func.blocks[bi].insts.pop();
            let moved = std::mem::take(&mut func.blocks[si].insts);
            func.blocks[bi].insts.extend(moved);
            // Phi incomings recorded "from s" now arrive from `bi`.
            for inst in &mut func.insts {
                if inst.opcode == Opcode::Phi {
                    for op in &mut inst.operands {
                        if *op == ValueRef::Block(s) {
                            *op = ValueRef::Block(BlockId::new(bi as u32));
                        }
                    }
                }
            }
            let cand = compact(&cand);
            if accept(&cand, still_fails) {
                *cur = cand;
                return true;
            }
        }
    }
    false
}

/// Pass 2: try dropping one placed non-terminator instruction.
fn drop_one_instruction(
    cur: &mut Module,
    still_fails: &impl Fn(&Module) -> bool,
    tried: &mut usize,
) -> bool {
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].is_external {
            continue;
        }
        for bi in 0..cur.funcs[fi].blocks.len() {
            // Latest-added first: garnish code sits at the end of blocks.
            for pos in (0..cur.funcs[fi].blocks[bi].insts.len()).rev() {
                let iid = cur.funcs[fi].blocks[bi].insts[pos];
                let inst = cur.funcs[fi].inst(iid);
                if inst.opcode.is_terminator() {
                    continue;
                }
                let uses = cur.funcs[fi]
                    .blocks
                    .iter()
                    .flat_map(|b| &b.insts)
                    .flat_map(|&i| &cur.funcs[fi].inst(i).operands)
                    .filter(|&&op| op == ValueRef::Inst(iid))
                    .count();
                let repl = if uses > 0 {
                    let f = &cur.funcs[fi];
                    match cur
                        .value_type(f, ValueRef::Inst(iid))
                        .and_then(|t| zero_const(&cur.types, t))
                    {
                        Some(r) => Some(r),
                        None => continue,
                    }
                } else {
                    None
                };
                *tried += 1;
                let mut cand = cur.clone();
                cand.funcs[fi].blocks[bi].insts.remove(pos);
                if let Some(repl) = repl {
                    for inst in &mut cand.funcs[fi].insts {
                        for op in &mut inst.operands {
                            if *op == ValueRef::Inst(iid) {
                                *op = repl;
                            }
                        }
                    }
                }
                let cand = compact(&cand);
                if accept(&cand, still_fails) {
                    *cur = cand;
                    return true;
                }
            }
        }
    }
    false
}

/// Pass 3: try replacing one instruction/argument operand with zero.
fn simplify_one_operand(
    cur: &mut Module,
    still_fails: &impl Fn(&Module) -> bool,
    tried: &mut usize,
) -> bool {
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].is_external {
            continue;
        }
        let placed: Vec<InstId> = cur.funcs[fi]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .collect();
        for iid in placed {
            let n_ops = cur.funcs[fi].inst(iid).operands.len();
            for oi in 0..n_ops {
                let op = cur.funcs[fi].inst(iid).operands[oi];
                if !matches!(op, ValueRef::Inst(_) | ValueRef::Arg(_)) {
                    continue;
                }
                let repl = {
                    let f = &cur.funcs[fi];
                    match cur
                        .value_type(f, op)
                        .and_then(|t| zero_const(&cur.types, t))
                    {
                        Some(r) => r,
                        None => continue,
                    }
                };
                *tried += 1;
                let mut cand = cur.clone();
                cand.funcs[fi].inst_mut(iid).operands[oi] = repl;
                if accept(&cand, still_fails) {
                    *cur = cand;
                    return true;
                }
            }
        }
    }
    false
}

/// Reduces `module` while `still_fails` keeps holding.
///
/// The input must fail the predicate already; if it does not, it is
/// returned unchanged. The returned module always verifies and fails.
pub fn reduce(module: &Module, still_fails: impl Fn(&Module) -> bool) -> ReduceOutcome {
    let mut tried = 0usize;
    let mut accepted = 0usize;
    if !still_fails(module) {
        return ReduceOutcome {
            module: module.clone(),
            rounds: 0,
            tried,
            accepted,
        };
    }
    // Start from the compacted form when it preserves the failure.
    let mut cur = {
        let c = compact(module);
        if accept(&c, &still_fails) {
            c
        } else {
            module.clone()
        }
    };
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut progress = false;
        while simplify_one_terminator(&mut cur, &still_fails, &mut tried) {
            accepted += 1;
            progress = true;
        }
        while drop_one_switch_case(&mut cur, &still_fails, &mut tried) {
            accepted += 1;
            progress = true;
        }
        while merge_one_block(&mut cur, &still_fails, &mut tried) {
            accepted += 1;
            progress = true;
        }
        while drop_one_instruction(&mut cur, &still_fails, &mut tried) {
            accepted += 1;
            progress = true;
        }
        while simplify_one_operand(&mut cur, &still_fails, &mut tried) {
            accepted += 1;
            progress = true;
        }
        if !progress || rounds >= MAX_ROUNDS {
            break;
        }
    }
    ReduceOutcome {
        module: cur,
        rounds,
        tried,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::Mutator;
    use siro_ir::IrVersion;
    use siro_rng::{SeedableRng, StdRng};
    use siro_testcases::gen::generate_cases;

    /// A synthetic failure predicate: "the program still places a
    /// `switch`". Stands in for a translator bug keyed to one kind.
    fn places_switch(m: &Module) -> bool {
        m.funcs.iter().any(|f| {
            f.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|&i| f.inst(i).opcode == Opcode::Switch)
        })
    }

    fn switchy_module() -> Module {
        let base = generate_cases(42, 3, IrVersion::V13_0).remove(2).module;
        Mutator::SwitchDispatch
            .apply(&base, &mut StdRng::seed_from_u64(5))
            .expect("switch mutant")
    }

    #[test]
    fn every_accepted_step_verifies_and_still_fails() {
        let m = switchy_module();
        assert!(places_switch(&m));
        // The predicate wrapper asserts the reducer's contract on every
        // candidate it *accepts* (reduce re-checks before accepting).
        let out = reduce(&m, places_switch);
        verify::verify_module(&out.module).unwrap();
        assert!(places_switch(&out.module), "reduction lost the failure");
        assert!(out.tried >= out.accepted);
    }

    #[test]
    fn reduction_shrinks_aggressively() {
        let m = switchy_module();
        let before = placed_inst_count(&m);
        let out = reduce(&m, places_switch);
        let after = placed_inst_count(&out.module);
        assert!(after < before, "no shrinkage: {before} -> {after}");
        // switch + its selector + per-edge control flow + ret: a handful.
        assert!(after <= 10, "expected <= 10 placed insts, got {after}");
    }

    #[test]
    fn reduction_is_deterministic() {
        let m = switchy_module();
        let a = reduce(&m, places_switch);
        let b = reduce(&m, places_switch);
        assert_eq!(
            siro_ir::write::write_module(&a.module),
            siro_ir::write::write_module(&b.module)
        );
        assert_eq!(a.tried, b.tried);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let m = generate_cases(7, 1, IrVersion::V13_0).remove(0).module;
        assert!(!places_switch(&m));
        let out = reduce(&m, places_switch);
        assert_eq!(
            siro_ir::write::write_module(&out.module),
            siro_ir::write::write_module(&m)
        );
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn compact_drops_unreachable_blocks_and_orphans() {
        let m = switchy_module();
        // The surgery leaves the detached `ret` in the arena; compaction
        // must remove it and keep behaviour intact.
        let c = compact(&m);
        verify::verify_module(&c).unwrap();
        let run = |m: &Module| {
            siro_ir::interp::Machine::new(m)
                .with_fuel(100_000)
                .run_main()
                .unwrap()
                .return_int()
        };
        assert_eq!(run(&m), run(&c));
        let arena: usize = c.funcs.iter().map(|f| f.insts.len()).sum();
        assert_eq!(arena, placed_inst_count(&c), "compact left orphans");
    }
}
