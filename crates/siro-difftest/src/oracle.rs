//! The differential and chain-metamorphic oracles.
//!
//! Three behaviour-preservation properties are checked for a source module
//! `P` at version `A` with intermediate `B` and target `C`:
//!
//! * **differential** — `beh(P) = beh(T_{A→C}(P))`;
//! * **chain** — `beh(T_{A→C}(P)) = beh(T_{B→C}(T_{A→B}(P)))`, the
//!   metamorphic relation A→B→C ≡ A→C;
//! * **roundtrip** — `beh(P) = beh(T_{B→A}(T_{A→B}(P)))`, the A→B→A
//!   identity.
//!
//! "Behaviour" is the interpreter verdict: the returned integer or the
//! trap kind. Fuel exhaustion on either side skips the comparison
//! (translation changes instruction counts, so a fuel limit is not a
//! semantic property); so do the synthesized translator's *documented*
//! partiality errors (`UnseenPredicate`, `MissingTranslator`,
//! `UnsupportedInstruction`) — those ask for more test cases, they are not
//! translator bugs. Everything else is a failure, classified by family.

use std::sync::Arc;

use siro_core::{Skeleton, TranslateError};
use siro_ir::{
    interp::{ExecResult, Machine, TrapKind},
    verify, write, IrVersion, Module,
};
use siro_synth::{
    OracleTest, Router, SynthError, SynthFault, SynthesisConfig, SynthesisOutcome, TranslatorCache,
};

/// Default interpreter fuel for oracle runs.
pub const ORACLE_FUEL: u64 = 200_000;

/// An observable program behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Behaviour {
    /// `main` returned this integer.
    Returns(i64),
    /// Execution trapped with this kind (rendered).
    Traps(String),
    /// `main` returned, but not an integer (kept comparable).
    NonInt,
}

impl std::fmt::Display for Behaviour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Behaviour::Returns(v) => write!(f, "returns {v}"),
            Behaviour::Traps(k) => write!(f, "traps {k}"),
            Behaviour::NonInt => f.write_str("returns non-int"),
        }
    }
}

/// Runs a module and reduces the outcome to a comparable behaviour.
/// `None` means fuel exhaustion or a harness error — skip, not a bug.
pub fn behaviour(m: &Module, fuel: u64) -> Option<Behaviour> {
    let o = Machine::new(m).with_fuel(fuel).run_main().ok()?;
    match &o.result {
        ExecResult::Returned(_) => Some(
            o.return_int()
                .map(Behaviour::Returns)
                .unwrap_or(Behaviour::NonInt),
        ),
        ExecResult::Trapped(t) if t.kind == TrapKind::FuelExhausted => None,
        ExecResult::Trapped(t) => Some(Behaviour::Traps(format!("{:?}", t.kind))),
    }
}

/// How a confirmed oracle violation manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureFamily {
    /// Translated module runs but behaves differently.
    Miscompile,
    /// Translation failed with a non-partiality error.
    TranslateCrash,
    /// Translated module fails verification.
    InvalidOutput,
    /// The compiled and interpreted execution tiers of the *same*
    /// translator disagreed (different verdict, or different bytes on
    /// success). This is never a synthesis bug — it is a bug in the
    /// compile backend or its fallback contract (`docs/COMPILED.md`).
    TierDivergence,
    /// Mutating an `arena_clone` of the input changed the original's
    /// serialized bytes. This is never a synthesis bug — it means the
    /// IR core's clone shared storage with its source
    /// (`docs/IR_CORE.md`).
    CloneAliasing,
    /// A module and its image across a SIRO↔WIR bridge landed in
    /// different behaviour buckets ([`siro_synth::XBehaviour`]): the
    /// bridge failed to normalize a semantic divergence between the two
    /// dialects (see [`crate::cross`] and `docs/DIALECTS.md`).
    CrossDialect,
}

impl FailureFamily {
    /// Stable name for reports and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FailureFamily::Miscompile => "miscompile",
            FailureFamily::TranslateCrash => "translate-crash",
            FailureFamily::InvalidOutput => "invalid-output",
            FailureFamily::TierDivergence => "tier-divergence",
            FailureFamily::CloneAliasing => "clone-aliasing",
            FailureFamily::CrossDialect => "cross-dialect",
        }
    }

    /// Parses a [`FailureFamily::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "miscompile" => Some(FailureFamily::Miscompile),
            "translate-crash" => Some(FailureFamily::TranslateCrash),
            "invalid-output" => Some(FailureFamily::InvalidOutput),
            "tier-divergence" => Some(FailureFamily::TierDivergence),
            "clone-aliasing" => Some(FailureFamily::CloneAliasing),
            "cross-dialect" => Some(FailureFamily::CrossDialect),
            _ => None,
        }
    }
}

/// A confirmed oracle violation on one input.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle tripped: `differential`, `chain`, or `roundtrip`.
    pub oracle: &'static str,
    /// The failure family.
    pub family: FailureFamily,
    /// Human-readable evidence (behaviours or error text).
    pub detail: String,
}

/// The verdict for one fuzzing input.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every applicable oracle agreed.
    Agree,
    /// Nothing could be compared (fuel, translator partiality).
    Skip(String),
    /// An oracle tripped.
    Fail(Failure),
}

/// The four synthesized translator legs the oracles need for a
/// `(src, mid, tgt)` triple: direct `src→tgt`, the chain decomposition
/// `src→mid` / `mid→tgt`, and the return leg `mid→src`.
#[derive(Debug, Clone)]
pub struct ChainSet {
    /// Source version `A`.
    pub src: IrVersion,
    /// Intermediate version `B`.
    pub mid: IrVersion,
    /// Target version `C`.
    pub tgt: IrVersion,
    /// `A→C`.
    pub direct: Arc<SynthesisOutcome>,
    /// `A→B`.
    pub first: Arc<SynthesisOutcome>,
    /// `B→C`.
    pub second: Arc<SynthesisOutcome>,
    /// `B→A`.
    pub back: Arc<SynthesisOutcome>,
    /// The fault injected into every leg (`None` in production).
    pub fault: Option<SynthFault>,
}

/// Converts the hand-written corpus usable for a pair into synthesis
/// oracle tests built at `src`.
pub fn corpus_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

/// Catalog intermediates for `(src, tgt)` ranked the way the router
/// ranks them: by the summed edge cost of the two-hop decomposition
/// `src → mid → tgt` under the router's *current* cost landscape (cache
/// warmth, store entries, observed latency), cheapest first with ties
/// broken toward the lower version. The head of this list is the
/// intermediate a composed route would take; the tail is the alternate
/// paths that path-selection fuzzing rotates through.
pub fn routed_mids(src: IrVersion, tgt: IrVersion) -> Vec<IrVersion> {
    let graph = Router::new().graph();
    let mut mids: Vec<(u64, IrVersion)> = graph
        .nodes()
        .iter()
        .filter_map(|n| n.as_siro())
        .filter(|&m| m != src && m != tgt)
        .map(|m| {
            // A missing edge (off-catalog hop) prices as unreachable but
            // still finite, so the sort stays total.
            let leg = |a, b| graph.edge(a, b).map_or(u64::MAX / 4, |e| e.cost_us);
            (leg(src, m).saturating_add(leg(m, tgt)), m)
        })
        .collect();
    mids.sort();
    mids.into_iter().map(|(_, m)| m).collect()
}

impl ChainSet {
    /// [`ChainSet::synthesize`] with the intermediate chosen by the
    /// router instead of the test author: the cheapest two-hop
    /// decomposition of `(src, tgt)` under the current edge costs (see
    /// [`routed_mids`]).
    ///
    /// # Errors
    ///
    /// Propagates the first leg's [`SynthError`].
    ///
    /// # Panics
    ///
    /// When the catalog has no intermediate between `src` and `tgt`
    /// (impossible for the 13-version catalog).
    pub fn routed(
        src: IrVersion,
        tgt: IrVersion,
        fault: Option<SynthFault>,
    ) -> Result<Self, SynthError> {
        let mid = *routed_mids(src, tgt)
            .first()
            .expect("catalog has at least three versions");
        Self::synthesize(src, mid, tgt, fault)
    }

    /// Synthesizes (or fetches from the process-wide [`TranslatorCache`])
    /// all four legs. `fault` is threaded into every leg's config, so a
    /// faulted set never collides with a clean one in the cache.
    ///
    /// # Errors
    ///
    /// Propagates the first leg's [`SynthError`].
    pub fn synthesize(
        src: IrVersion,
        mid: IrVersion,
        tgt: IrVersion,
        fault: Option<SynthFault>,
    ) -> Result<Self, SynthError> {
        let leg = |a: IrVersion, b: IrVersion| {
            let mut cfg = SynthesisConfig::new(a, b);
            cfg.fault = fault;
            TranslatorCache::get_or_synthesize(cfg, &corpus_tests(a, b))
        };
        Ok(ChainSet {
            src,
            mid,
            tgt,
            direct: leg(src, tgt)?,
            first: leg(src, mid)?,
            second: leg(mid, tgt)?,
            back: leg(mid, src)?,
            fault,
        })
    }

    /// Checks every applicable oracle on one source-version input.
    ///
    /// The behavioural oracles never see `m` itself: every leg runs on
    /// an [`Module::arena_clone`], which is then deliberately scrambled.
    /// If the original's serialized bytes change, the *arena-clone
    /// oracle* trips ([`FailureFamily::CloneAliasing`]) — each fuzzed
    /// input doubles as a storage-disjointness test for the IR core.
    pub fn check(&self, m: &Module, fuel: u64) -> Verdict {
        let before = write::write_module(m);
        let mut probe = m.arena_clone();
        let verdict = self.check_behaviour(&probe, fuel);
        scramble(&mut probe);
        if write::write_module(m) != before {
            return Verdict::Fail(Failure {
                oracle: "arena-clone",
                family: FailureFamily::CloneAliasing,
                detail: format!(
                    "mutating a clone changed the original {} module's serialized bytes",
                    m.version
                ),
            });
        }
        verdict
    }

    /// The behavioural oracles proper (differential, chain, roundtrip,
    /// tier equivalence), on a module [`ChainSet::check`] may freely
    /// alias.
    fn check_behaviour(&self, m: &Module, fuel: u64) -> Verdict {
        let Some(b_src) = behaviour(m, fuel) else {
            return Verdict::Skip("source ran out of fuel".into());
        };

        let direct = translate_leg(m, self.tgt, &self.direct, "differential");
        let step1 = translate_leg(m, self.mid, &self.first, "roundtrip");
        let mut compared = false;

        // Differential: source vs direct target.
        let direct_out = match direct {
            Leg::Ok(out) => {
                if let Some(b_tgt) = behaviour(&out, fuel) {
                    compared = true;
                    if b_tgt != b_src {
                        return Verdict::Fail(Failure {
                            oracle: "differential",
                            family: FailureFamily::Miscompile,
                            detail: format!("source {b_src}, {}→{} {b_tgt}", self.src, self.tgt),
                        });
                    }
                }
                Some(out)
            }
            Leg::Skip => None,
            Leg::Fail(f) => return Verdict::Fail(f),
        };

        // Chain + roundtrip both ride on the A→B leg.
        let step1_out = match step1 {
            Leg::Ok(out) => Some(out),
            Leg::Skip => None,
            Leg::Fail(f) => return Verdict::Fail(f),
        };
        if let Some(mid_m) = &step1_out {
            // Chain: A→B→C vs A→C.
            if let Some(direct_m) = &direct_out {
                match translate_leg(mid_m, self.tgt, &self.second, "chain") {
                    Leg::Ok(two_step) => {
                        if let (Some(a), Some(b)) =
                            (behaviour(direct_m, fuel), behaviour(&two_step, fuel))
                        {
                            compared = true;
                            if a != b {
                                return Verdict::Fail(Failure {
                                    oracle: "chain",
                                    family: FailureFamily::Miscompile,
                                    detail: format!(
                                        "{}→{} {a}, {}→{}→{} {b}",
                                        self.src, self.tgt, self.src, self.mid, self.tgt
                                    ),
                                });
                            }
                        }
                    }
                    Leg::Skip => {}
                    Leg::Fail(f) => return Verdict::Fail(f),
                }
            }
            // Roundtrip: A→B→A vs A.
            match translate_leg(mid_m, self.src, &self.back, "roundtrip") {
                Leg::Ok(home) => {
                    if let Some(b_home) = behaviour(&home, fuel) {
                        compared = true;
                        if b_home != b_src {
                            return Verdict::Fail(Failure {
                                oracle: "roundtrip",
                                family: FailureFamily::Miscompile,
                                detail: format!(
                                    "source {b_src}, {}→{}→{} {b_home}",
                                    self.src, self.mid, self.src
                                ),
                            });
                        }
                    }
                }
                Leg::Skip => {}
                Leg::Fail(f) => return Verdict::Fail(f),
            }
        }

        if compared {
            Verdict::Agree
        } else {
            Verdict::Skip("every leg was skipped (translator partiality)".into())
        }
    }
}

enum Leg {
    Ok(Box<Module>),
    Skip,
    Fail(Failure),
}

/// Trashes every arena of `m` in place: renames entities, empties
/// operand lists and block bodies, and rewrites remaining storage. If
/// any buffer were shared with the module `m` was cloned from, the
/// damage would show up in the original's serialized bytes.
fn scramble(m: &mut Module) {
    m.name.push_str("!scrambled");
    for f in &mut m.funcs {
        f.name.push_str("!scrambled");
        for inst in &mut f.insts {
            inst.operands.clear();
            inst.name = Some("scrambled".to_string());
        }
        for b in &mut f.blocks {
            b.name.push_str("!scrambled");
            b.insts.clear();
        }
    }
    for g in &mut m.globals {
        g.name.push_str("!scrambled");
    }
}

/// Translator partiality the synthesized-translator contract documents:
/// asks the user for more test cases rather than flagging a bug.
fn skippable(e: &TranslateError) -> bool {
    matches!(
        e,
        TranslateError::UnseenPredicate { .. }
            | TranslateError::MissingTranslator(_)
            | TranslateError::UnsupportedInstruction { .. }
    )
}

fn translate_leg(
    m: &Module,
    tgt: IrVersion,
    outcome: &SynthesisOutcome,
    oracle: &'static str,
) -> Leg {
    let interpreted = Skeleton::new(tgt).translate_module(m, &outcome.translator);
    if let Some(f) = check_tiers(m, tgt, outcome, oracle, &interpreted) {
        return Leg::Fail(f);
    }
    match interpreted {
        Ok(out) => match verify::verify_module(&out) {
            Ok(()) => Leg::Ok(Box::new(out)),
            Err(e) => Leg::Fail(Failure {
                oracle,
                family: FailureFamily::InvalidOutput,
                detail: format!("{}→{} output does not verify: {e}", m.version, tgt),
            }),
        },
        Err(e) if skippable(&e) => Leg::Skip,
        Err(e) => Leg::Fail(Failure {
            oracle,
            family: FailureFamily::TranslateCrash,
            detail: format!("{}→{}: {e}", m.version, tgt),
        }),
    }
}

/// Runs the same leg through the compiled tier (when enabled and the
/// translator lowers) and demands it agrees with the interpreter: the
/// same ok/skip/fail verdict, and byte-identical output text on success.
/// Every fuzzed mutant therefore exercises *both* execution tiers — the
/// difftest doubles as the compile backend's equivalence oracle.
fn check_tiers(
    m: &Module,
    tgt: IrVersion,
    outcome: &SynthesisOutcome,
    oracle: &'static str,
    interpreted: &Result<Module, TranslateError>,
) -> Option<Failure> {
    if !siro_synth::compile_enabled() {
        return None;
    }
    let compiled = outcome.compiled()?;
    let divergence = |detail: String| {
        Some(Failure {
            oracle,
            family: FailureFamily::TierDivergence,
            detail,
        })
    };
    match (compiled.translate_module(m), interpreted) {
        (Ok(fast), Ok(slow)) => {
            let (fast, slow) = (write::write_module(&fast), write::write_module(slow));
            if fast == slow {
                None
            } else {
                divergence(format!(
                    "{}→{}: compiled and interpreted outputs differ ({} vs {} bytes)",
                    m.version,
                    tgt,
                    fast.len(),
                    slow.len()
                ))
            }
        }
        (Err(ce), Err(ie)) if skippable(&ce) == skippable(ie) => None,
        (Ok(_), Err(e)) => divergence(format!(
            "{}→{}: compiled tier succeeded where the interpreter failed ({e})",
            m.version, tgt
        )),
        (Err(e), Ok(_)) => divergence(format!(
            "{}→{}: compiled tier failed ({e}) where the interpreter succeeded",
            m.version, tgt
        )),
        (Err(ce), Err(ie)) => divergence(format!(
            "{}→{}: compiled tier error class differs: compiled `{ce}`, interpreted `{ie}`",
            m.version, tgt
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, ValueRef};

    fn tiny(version: IrVersion) -> Module {
        let mut m = Module::new("tiny", version);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.sub(ValueRef::const_int(i32t, 50), ValueRef::const_int(i32t, 8));
        b.ret(Some(v));
        m
    }

    #[test]
    fn behaviour_reduces_returns_and_traps() {
        let m = tiny(IrVersion::V13_0);
        assert_eq!(behaviour(&m, ORACLE_FUEL), Some(Behaviour::Returns(42)));
        assert_eq!(behaviour(&m, 1), None, "fuel exhaustion must skip");
    }

    #[test]
    fn clean_chain_set_agrees_on_a_simple_program() {
        let chain = ChainSet::synthesize(IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6, None)
            .unwrap();
        match chain.check(&tiny(IrVersion::V13_0), ORACLE_FUEL) {
            Verdict::Agree => {}
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn scramble_is_destructive_but_clone_shields_the_original() {
        // Sensitivity: scrambling really changes a module's bytes, so a
        // shared buffer could not hide from the arena-clone oracle.
        let m = tiny(IrVersion::V13_0);
        let before = write::write_module(&m);
        let mut probe = m.arena_clone();
        scramble(&mut probe);
        assert_ne!(
            write::write_module(&probe),
            before,
            "scramble left the clone byte-identical; the oracle is blind"
        );
        // Disjointness: the original is untouched.
        assert_eq!(write::write_module(&m), before);
    }

    #[test]
    fn family_names_round_trip() {
        for f in [
            FailureFamily::Miscompile,
            FailureFamily::TranslateCrash,
            FailureFamily::InvalidOutput,
            FailureFamily::TierDivergence,
            FailureFamily::CloneAliasing,
            FailureFamily::CrossDialect,
        ] {
            assert_eq!(FailureFamily::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn faulted_chain_set_fails_on_an_asymmetric_sub() {
        let fault = Some(SynthFault::SwapOperands(siro_ir::Opcode::Sub));
        let chain =
            ChainSet::synthesize(IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6, fault)
                .unwrap();
        match chain.check(&tiny(IrVersion::V13_0), ORACLE_FUEL) {
            Verdict::Fail(f) => {
                assert_eq!(f.family, FailureFamily::Miscompile);
            }
            other => panic!("expected a miscompile, got {other:?}"),
        }
    }
}
