//! Coverage-guided differential fuzzing of synthesized translators.
//!
//! The paper's fuzzing evaluation (§8.3) asks one question of a
//! synthesized translator: *does the translated program behave like the
//! source program?* This crate operationalizes that question as a
//! feedback-driven loop:
//!
//! * [`mutate`] — targeted mutators that splice long-tail instruction
//!   kinds (atomics, `invoke`/`landingpad`, vectors, `indirectbr`, …)
//!   into well-typed generated programs, gated on
//!   [`IrVersion::supports`](siro_ir::IrVersion);
//! * [`oracle`] — the interpreter-differential oracle plus two chain
//!   metamorphic relations: `A→B→C ≡ A→C` and the `A→B→A` round trip;
//! * [`fuzz`] — the loop itself, guided by executed-opcode coverage
//!   (from [`siro_fuzz::coverage`] block probes) and translator-phase
//!   funnel counters (from [`siro_trace`]);
//! * [`mod@reduce`] — a delta-debugging reducer that shrinks every failure
//!   to a minimal reproduction before it is reported;
//! * [`artifact`] — deterministic on-disk regression artifacts that are
//!   simultaneously valid IR modules and self-describing bug reports;
//! * [`report`] — the `BENCH_difftest.json` emitter
//!   (schema `siro-bench/difftest-v1`);
//! * [`wir_mutate`] + [`cross`] — the second dialect: stack-depth-
//!   preserving WIR mutators and the cross-dialect interpreter-
//!   differential oracle over the SIRO↔WIR bridge anchors, with `.sirw`
//!   regression artifacts (schema `siro-difftest/cross-regression-v1`).
//!
//! Faults for end-to-end validation of the pipeline are injected with
//! [`siro_synth::SynthFault`]; a clean run over the production
//! synthesis pipeline is expected to find no failures.

#![warn(missing_docs)]

pub mod artifact;
pub mod cross;
pub mod fuzz;
pub mod mutate;
pub mod oracle;
pub mod reduce;
pub mod report;
pub mod wir_mutate;

pub use artifact::{RegressionArtifact, ARTIFACT_SCHEMA};
pub use cross::{
    run_all_anchors, run_cross, CrossArtifact, CrossConfig, CrossFailure, CrossReport,
    CROSS_ARTIFACT_SCHEMA, CROSS_DEFAULT_MODULES,
};
pub use fuzz::{run, DifftestConfig, DifftestReport, FailureRecord, SHRINK_TARGET};
pub use mutate::{applicable_mutators, Mutator};
pub use oracle::{
    behaviour, routed_mids, Behaviour, ChainSet, Failure, FailureFamily, Verdict, ORACLE_FUEL,
};
pub use reduce::{compact, placed_inst_count, reduce, ReduceOutcome};
pub use report::{render_difftest_json, write_difftest_json};
pub use wir_mutate::{applicable_wir_mutators, raisable_wir_mutators, WirMutator};
