//! Replays every committed regression artifact as a failing-then-fixed
//! check, in the default `cargo test` lane.
//!
//! Each artifact under `regressions/` records the version triple, the
//! injected translator fault that produced the failure, the oracle that
//! tripped, and the reduced reproduction module. The replay asserts the
//! full contract:
//!
//! * the module is shrunk (≤ [`SHRINK_TARGET`] placed instructions);
//! * with the recorded fault injected, the recorded oracle still fails
//!   with the recorded family (**failing**);
//! * with the production translators (no fault), no oracle fails
//!   (**then fixed**).

use std::path::Path;

use siro_difftest::oracle::ChainSet;
use siro_difftest::{
    placed_inst_count, FailureFamily, RegressionArtifact, Verdict, ORACLE_FUEL, SHRINK_TARGET,
};

fn regressions_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/regressions"))
}

#[test]
fn committed_artifacts_exist_and_parse() {
    let artifacts = RegressionArtifact::load_dir(regressions_dir());
    assert!(
        !artifacts.is_empty(),
        "no regression artifacts under {}",
        regressions_dir().display()
    );
    for (path, a) in &artifacts {
        assert!(
            !a.oracle.is_empty() && !a.mutator.is_empty(),
            "{} has empty metadata",
            path.display()
        );
    }
}

#[test]
fn committed_artifacts_are_shrunk() {
    for (path, a) in RegressionArtifact::load_dir(regressions_dir()) {
        let n = placed_inst_count(&a.module);
        assert!(
            n <= SHRINK_TARGET,
            "{} has {n} placed instructions (target {SHRINK_TARGET})",
            path.display()
        );
    }
}

#[test]
fn artifacts_fail_with_recorded_fault_and_pass_without() {
    for (path, a) in RegressionArtifact::load_dir(regressions_dir()) {
        assert!(
            a.fault.is_some(),
            "{}: a faultless artifact would be a real translator bug — \
             fix the translator instead of committing it",
            path.display()
        );

        // Failing: the faulted translator still trips the recorded oracle.
        let faulted = ChainSet::synthesize(a.src, a.mid, a.tgt, a.fault)
            .unwrap_or_else(|e| panic!("{}: faulted synthesis failed: {e}", path.display()));
        match faulted.check(&a.module, ORACLE_FUEL) {
            Verdict::Fail(f) => {
                assert_eq!(f.oracle, a.oracle, "{}: wrong oracle", path.display());
                assert_eq!(f.family, a.family, "{}: wrong family", path.display());
            }
            other => panic!(
                "{}: expected the recorded {}/{} failure, got {other:?}",
                path.display(),
                a.oracle,
                a.family.name()
            ),
        }

        // Then fixed: the production translators agree on the same input.
        let clean = ChainSet::synthesize(a.src, a.mid, a.tgt, None)
            .unwrap_or_else(|e| panic!("{}: clean synthesis failed: {e}", path.display()));
        match clean.check(&a.module, ORACLE_FUEL) {
            Verdict::Fail(f) => panic!(
                "{}: production translators fail too ({}/{}): {}",
                path.display(),
                f.oracle,
                f.family.name(),
                f.detail
            ),
            Verdict::Agree | Verdict::Skip(_) => {}
        }
    }
}

#[test]
fn artifact_family_metadata_is_well_formed() {
    for (path, a) in RegressionArtifact::load_dir(regressions_dir()) {
        assert!(
            FailureFamily::parse(a.family.name()).is_some(),
            "{}: family does not round-trip",
            path.display()
        );
        assert!(
            matches!(a.oracle.as_str(), "differential" | "chain" | "roundtrip"),
            "{}: unknown oracle `{}`",
            path.display(),
            a.oracle
        );
    }
}
