//! Replays every committed cross-dialect regression artifact (`.sirw`) in
//! the default `cargo test` lane.
//!
//! A cross artifact records a *real* dialect divergence — a module whose
//! exact behaviour differs between WIR and its bridge-raised Siro image —
//! together with the normalized contract that makes the bridge sound:
//! both sides land in the same [`XBehaviour`] bucket. The replay asserts
//! the full story:
//!
//! * **divergent** — the exact WIR outcome and the exact Siro outcome of
//!   the raised image still differ (the recorded bug would trip a naive
//!   exactness oracle);
//! * **then normalized** — both sides bucket identically under
//!   [`XBehaviour`], and the round-trip lowering agrees too, so the
//!   production cross-dialect oracle ([`siro_difftest::run_cross`]) stays
//!   clean.
//!
//! Regenerate the canonical artifact with:
//!
//! ```text
//! SIRO_REGEN_CROSS=1 cargo test -p siro-difftest --test cross_replay
//! ```

use std::path::Path;

use siro_difftest::{CrossArtifact, FailureFamily};
use siro_ir::{
    interp::{ExecResult, Machine},
    IrVersion,
};
use siro_synth::{raise_module, siro_behaviour, wir_behaviour, XBehaviour, BRIDGE_FUEL};
use siro_wir::{
    verify_module, write_module, WBin, WTy, WirFunc, WirInst, WirMachine, WirModule, WirVersion,
};

fn regressions_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/regressions"))
}

/// The first divergence the cross-dialect oracle hunt surfaced, kept as
/// the canonical committed artifact: `i32.div_s` on `MIN / -1` traps
/// integer-overflow in WIR, while Siro's `sdiv` wraps to `MIN`. The
/// bridge normalizes both into the arithmetic-trap bucket by guarding the
/// raised `sdiv` (degrading overflow to a div-by-zero trap — same
/// bucket, different exact kind).
fn canonical_divergence() -> CrossArtifact {
    let mut m = WirModule::new("sdiv_overflow_divergence", WirVersion::W2_0);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, i64::from(i32::MIN)));
    f.body.alloc(WirInst::Const(WTy::I32, -1));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
    f.body.alloc(WirInst::Return);
    m.funcs.push(f);
    verify_module(&m).expect("canonical module must validate");
    CrossArtifact {
        siro: IrVersion::V13_0,
        wir: WirVersion::W2_0,
        direction: "raise".into(),
        family: FailureFamily::CrossDialect,
        mutator: "wir-div-edge".into(),
        detail: "wir traps integer-overflow where siro sdiv wraps; bridge guard \
                 normalizes both into the arith bucket"
            .into(),
        module: m,
    }
}

#[test]
fn regen_cross_artifacts() {
    if std::env::var("SIRO_REGEN_CROSS").is_err() {
        return;
    }
    let a = canonical_divergence();
    let path = a.save(regressions_dir()).expect("write artifact");
    println!("wrote {}", path.display());
}

#[test]
fn committed_cross_artifacts_exist_and_parse() {
    let artifacts = CrossArtifact::load_dir(regressions_dir());
    assert!(
        !artifacts.is_empty(),
        "no .sirw cross artifacts under {} (run with SIRO_REGEN_CROSS=1 to regenerate)",
        regressions_dir().display()
    );
    for (path, a) in &artifacts {
        assert_eq!(
            a.family,
            FailureFamily::CrossDialect,
            "{}: wrong family",
            path.display()
        );
        assert!(
            matches!(a.direction.as_str(), "raise" | "lower"),
            "{}: unknown direction `{}`",
            path.display(),
            a.direction
        );
        verify_module(&a.module)
            .unwrap_or_else(|e| panic!("{}: module does not validate: {e}", path.display()));
        assert_eq!(
            a.module.version,
            a.wir,
            "{}: version mismatch",
            path.display()
        );
    }
}

#[test]
fn cross_artifacts_diverge_exactly_then_normalize() {
    for (path, a) in CrossArtifact::load_dir(regressions_dir()) {
        // Exact outcomes on both sides of the bridge.
        let wir_exact = WirMachine::new(&a.module)
            .with_fuel(BRIDGE_FUEL)
            .run_main()
            .result;
        let raised = raise_module(&a.module, a.siro)
            .unwrap_or_else(|e| panic!("{}: raise failed: {e}", path.display()));
        let siro_outcome = Machine::new(&raised)
            .with_fuel(BRIDGE_FUEL)
            .run_main()
            .unwrap_or_else(|e| panic!("{}: siro run failed: {e}", path.display()));
        let siro_exact = match &siro_outcome.result {
            ExecResult::Returned(_) => format!("value {:?}", siro_outcome.return_int()),
            ExecResult::Trapped(t) => format!("trap {:?}", t.kind),
        };

        // Divergent: the exact outcomes differ — this is the recorded bug.
        assert_ne!(
            format!("{wir_exact:?}").to_lowercase(),
            siro_exact.to_lowercase(),
            "{}: exact behaviours agree; this is not a divergence artifact",
            path.display()
        );

        // Then normalized: both sides share an XBehaviour bucket, and the
        // round trip through the lowering agrees too.
        let want = wir_behaviour(&a.module);
        assert_eq!(
            siro_behaviour(&raised),
            want,
            "{}: bridge no longer normalizes the raise leg",
            path.display()
        );
        let lowered = siro_synth::lower_module(&raised, a.wir)
            .unwrap_or_else(|e| panic!("{}: lower failed: {e}", path.display()));
        assert_eq!(
            wir_behaviour(&lowered),
            want,
            "{}: bridge no longer normalizes the round trip",
            path.display()
        );
    }
}

#[test]
fn canonical_divergence_is_the_sdiv_overflow_case() {
    let a = canonical_divergence();
    let on_disk = CrossArtifact::load_dir(regressions_dir());
    let found = on_disk
        .iter()
        .find(|(_, b)| write_module(&b.module) == write_module(&a.module))
        .unwrap_or_else(|| {
            panic!(
                "the canonical sdiv MIN/-1 artifact is not committed under {}",
                regressions_dir().display()
            )
        });
    assert_eq!(found.1.siro, IrVersion::V13_0);
    assert_eq!(found.1.wir, WirVersion::W2_0);

    // Pin the exact divergence: integer-overflow trap vs a wrapped value
    // on a naive raise, normalized to the arith bucket by the bridge.
    use siro_wir::{WirExec, WirTrap};
    let exact = WirMachine::new(&a.module).run_main().result;
    assert_eq!(exact, WirExec::Trap(WirTrap::IntegerOverflow));
    assert_eq!(wir_behaviour(&a.module), XBehaviour::Arith);
    let raised = raise_module(&a.module, IrVersion::V13_0).expect("raise");
    assert_eq!(siro_behaviour(&raised), XBehaviour::Arith);
}
