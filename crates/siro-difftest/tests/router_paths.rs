//! Path selection under fuzz: the difftest lane for the version-graph
//! router.
//!
//! Three layers, cheapest first:
//!
//! * **planner properties** — randomized warm/cold/latency landscapes
//!   over the real catalog, with [`VersionGraph::cheapest_path`] checked
//!   against path invariants and, on small node subsets, against a
//!   brute-force enumeration of every simple path;
//! * **routed oracles** — [`ChainSet::routed`] lets the router pick the
//!   chain intermediate, and the metamorphic oracles must still agree on
//!   clean translators (and still catch injected faults);
//! * **routed fuzzing** — a short [`run`] with `route_mids > 1` rotates
//!   mutants across router-ranked paths; an injected fault must be
//!   caught on one of them and the failing path recorded.
//!
//! The `generate_path_selection_artifact` test (ignored by default)
//! regenerates the committed path-selection regression artifact under
//! `regressions/`.

use std::time::Duration;

use siro_difftest::{routed_mids, run, ChainSet, DifftestConfig, Verdict, ORACLE_FUEL};
use siro_ir::{FuncBuilder, IrVersion, Module, Opcode, ValueRef};
use siro_rng::{Rng, SeedableRng, StdRng};
use siro_synth::{
    EdgeClass, EdgeInfo, RoutePlan, SynthFault, VersionGraph, COST_COLD_US, COST_HOT_US,
    COST_WARM_US, OBSERVED_CAP_US,
};

fn tiny(version: IrVersion) -> Module {
    let mut m = Module::new("tiny", version);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let v = b.sub(ValueRef::const_int(i32t, 50), ValueRef::const_int(i32t, 8));
    b.ret(Some(v));
    m
}

/// A random cost landscape: each ordered pair gets an edge with
/// probability `edge_p` (percent), a random class, and a random observed
/// latency below the cap.
fn random_graph(rng: &mut StdRng, nodes: &[IrVersion], edge_p: u32) -> VersionGraph {
    let mut edges = Vec::new();
    for &a in nodes {
        for &b in nodes {
            if a == b || rng.gen_range(0..100) >= edge_p {
                continue;
            }
            let class = match rng.gen_range(0..3) {
                0 => EdgeClass::Hot,
                1 => EdgeClass::Warm,
                _ => EdgeClass::Cold,
            };
            let class_cost = match class {
                EdgeClass::Hot => COST_HOT_US,
                EdgeClass::Warm => COST_WARM_US,
                EdgeClass::Cold => COST_COLD_US,
            };
            let observed = if rng.gen_range(0..2) == 0 {
                Some(rng.gen_range(0..OBSERVED_CAP_US))
            } else {
                None
            };
            edges.push(EdgeInfo {
                from: a.into(),
                to: b.into(),
                class,
                observed_us: observed,
                cost_us: class_cost + observed.unwrap_or(0),
            });
        }
    }
    VersionGraph::from_edges(nodes.to_vec(), edges)
}

/// The plan must be a connected `from → to` walk whose summed hop costs
/// equal the reported total, and no pricier than the direct edge.
fn assert_plan_invariants(graph: &VersionGraph, plan: &RoutePlan) {
    let mut at = plan.from;
    let mut total = 0u64;
    for hop in &plan.hops {
        assert_eq!(hop.from, at, "disconnected hop in {}", plan.describe());
        let edge = graph
            .edge(hop.from, hop.to)
            .unwrap_or_else(|| panic!("plan uses a non-edge: {}", plan.describe()));
        assert_eq!(edge.cost_us, hop.cost_us, "stale hop cost");
        at = hop.to;
        total += hop.cost_us;
    }
    assert_eq!(at, plan.to, "plan does not end at the target");
    assert_eq!(total, plan.cost_us, "plan cost is not the sum of its hops");
    if let Some(direct) = graph.edge(plan.from, plan.to) {
        assert!(
            plan.cost_us <= direct.cost_us,
            "plan {} beats nothing: direct costs {}us",
            plan.describe(),
            direct.cost_us
        );
    }
}

/// Cheapest simple-path cost by exhaustive enumeration (small graphs).
fn brute_force_cost(
    graph: &VersionGraph,
    nodes: &[IrVersion],
    at: IrVersion,
    to: IrVersion,
    used: &mut Vec<IrVersion>,
) -> Option<u64> {
    if at == to {
        return Some(0);
    }
    let mut best: Option<u64> = None;
    for &next in nodes {
        if used.contains(&next) {
            continue;
        }
        let Some(edge) = graph.edge(at, next) else {
            continue;
        };
        used.push(next);
        if let Some(rest) = brute_force_cost(graph, nodes, next, to, used) {
            let cost = edge.cost_us + rest;
            best = Some(best.map_or(cost, |b| b.min(cost)));
        }
        used.pop();
    }
    best
}

#[test]
fn fuzzed_cost_landscapes_hold_plan_invariants() {
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9);
    let nodes = IrVersion::CATALOG.to_vec();
    for round in 0..60 {
        let graph = random_graph(&mut rng, &nodes, 20 + (round % 8) * 10);
        for &a in &nodes {
            for &b in &nodes {
                let Some(plan) = graph.cheapest_path(a, b) else {
                    continue;
                };
                if a == b {
                    assert_eq!(plan.hop_count(), 0);
                    assert_eq!(plan.cost_us, 0);
                    continue;
                }
                assert_plan_invariants(&graph, &plan);
            }
        }
    }
}

#[test]
fn fuzzed_small_graphs_match_brute_force_optimum() {
    let mut rng = StdRng::seed_from_u64(0x51ce_cafe);
    let nodes = &IrVersion::CATALOG[..5];
    for _ in 0..120 {
        let graph = random_graph(&mut rng, nodes, 50);
        for &a in nodes {
            for &b in nodes {
                if a == b {
                    continue;
                }
                let planned = graph.cheapest_path(a, b).map(|p| p.cost_us);
                let brute = brute_force_cost(&graph, nodes, a, b, &mut vec![a]);
                assert_eq!(planned, brute, "suboptimal or spurious plan {a} -> {b}");
            }
        }
    }
}

#[test]
fn planner_is_deterministic_across_snapshots() {
    let nodes = IrVersion::CATALOG.to_vec();
    for seed in [1u64, 2, 3] {
        let g1 = random_graph(&mut StdRng::seed_from_u64(seed), &nodes, 60);
        let g2 = random_graph(&mut StdRng::seed_from_u64(seed), &nodes, 60);
        for &a in &nodes {
            for &b in &nodes {
                let p1 = g1.cheapest_path(a, b).map(|p| p.describe());
                let p2 = g2.cheapest_path(a, b).map(|p| p.describe());
                assert_eq!(p1, p2, "ties must break deterministically");
            }
        }
    }
}

#[test]
fn routed_mids_excludes_endpoints_and_covers_the_catalog() {
    let (src, tgt) = (IrVersion::V10_0, IrVersion::V4_0);
    let mids = routed_mids(src, tgt);
    assert_eq!(mids.len(), IrVersion::CATALOG.len() - 2);
    assert!(!mids.contains(&src) && !mids.contains(&tgt));
}

#[test]
fn routed_chain_agrees_on_clean_translators() {
    // Pair unique to this test so concurrent tests cannot perturb which
    // intermediate ranks cheapest mid-flight.
    let chain = ChainSet::routed(IrVersion::V9_0, IrVersion::V3_0, None).expect("routed synthesis");
    assert!(chain.mid != chain.src && chain.mid != chain.tgt);
    match chain.check(&tiny(chain.src), ORACLE_FUEL) {
        Verdict::Agree => {}
        other => panic!("expected agreement on the routed path, got {other:?}"),
    }
}

#[test]
fn routed_fuzz_catches_a_fault_on_a_router_ranked_path() {
    let mut cfg = DifftestConfig::routed(IrVersion::V10_0, IrVersion::V4_0);
    cfg.route_mids = 2;
    cfg.fault = Some(SynthFault::SwapOperands(Opcode::Sub));
    cfg.budget = Duration::from_secs(20);
    cfg.max_execs = 24;
    let report = run(&cfg).expect("fuzzing run");
    assert_eq!(report.mids.len(), 2, "two router-ranked paths expected");
    assert!(
        !report.failures.is_empty(),
        "the injected fault must be caught on a routed path"
    );
    for f in &report.failures {
        assert!(
            report.mids.contains(&f.mid),
            "failure recorded on unknown path via {}",
            f.mid
        );
    }
}

/// Regenerates the committed path-selection regression artifact. Run
/// explicitly (`cargo test -p siro-difftest --test router_paths -- \
/// --ignored generate_path_selection_artifact`) after a change to the
/// artifact format, the router's ranking, or the corpus; commit the
/// resulting file.
#[test]
#[ignore = "generator: rewrites the committed path-selection artifact"]
fn generate_path_selection_artifact() {
    let (src, tgt) = (IrVersion::V10_0, IrVersion::V9_0);
    let fault = Some(SynthFault::SwapOperands(Opcode::Sub));
    let chain = ChainSet::routed(src, tgt, fault).expect("faulted routed synthesis");
    let module = tiny(src);
    let Verdict::Fail(f) = chain.check(&module, ORACLE_FUEL) else {
        panic!("the injected fault must trip an oracle on the routed path");
    };
    let artifact = siro_difftest::RegressionArtifact {
        src,
        mid: chain.mid,
        tgt,
        fault,
        oracle: f.oracle.to_string(),
        family: f.family,
        mutator: "route-path".into(),
        detail: f.detail,
        module,
    };
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/regressions"));
    let path = artifact.save(dir).expect("write artifact");
    eprintln!("wrote {}", path.display());
}
