//! Handlers for *new* instructions (§3.3.2): instructions the source version
//! has but the target version lacks.
//!
//! The paper's two principles are implemented literally:
//!
//! 1. **Check the necessity of translation.** The five Windows
//!    exception-handling instructions are never encountered on Linux; they
//!    are reported as untranslatable rather than lowered.
//! 2. **Analysis-preserving translation.** The three remaining new
//!    instructions get one-to-many lowerings that keep control flow and
//!    data flow intact:
//!    * `callbr` → a plain call of the inline assembly plus a `switch` that
//!      restores the control-flow edges;
//!    * `freeze` → its operand value (data-flow preserving);
//!    * `addrspacecast` → `bitcast` (its pre-3.4 spelling).

use siro_api::TranslationCtx;
use siro_ir::{Instruction, Opcode, ValueRef};

use crate::error::{TranslateError, TranslateResult};

/// Translates one instruction of a kind the target version does not
/// support. Returns the target value standing in for the instruction's
/// result.
///
/// # Errors
///
/// [`TranslateError::UnsupportedInstruction`] for kinds with no
/// analysis-preserving lowering (the Windows EH family).
pub fn lower_new_instruction(
    ctx: &mut TranslationCtx<'_>,
    inst_id: siro_ir::InstId,
) -> TranslateResult<ValueRef> {
    let inst = ctx.src_func()?.inst(inst_id).clone();
    siro_trace::counter("core.newinsts_lowered", 1);
    match inst.opcode {
        Opcode::Freeze => lower_freeze(ctx, &inst),
        Opcode::AddrSpaceCast => lower_addrspacecast(ctx, &inst),
        Opcode::CallBr => lower_callbr(ctx, &inst),
        op if op.is_windows_eh() => Err(TranslateError::UnsupportedInstruction {
            opcode: op,
            detail: "Windows exception-handling instruction; never encountered on Linux \
                     targets, translation deliberately omitted (paper §3.3.2)"
                .into(),
        }),
        op => Err(TranslateError::UnsupportedInstruction {
            opcode: op,
            detail: "no analysis-preserving lowering is registered".into(),
        }),
    }
}

/// `freeze %v` → `%v`: the freeze result is replaced by its operand,
/// preserving data flow (undef propagation is a refinement the analyses in
/// scope do not observe).
fn lower_freeze(ctx: &mut TranslationCtx<'_>, inst: &Instruction) -> TranslateResult<ValueRef> {
    Ok(ctx.translate_value(inst.operands[0])?)
}

/// `addrspacecast` → `bitcast`, the original way of writing address-space
/// casts before LLVM 3.4.
fn lower_addrspacecast(
    ctx: &mut TranslationCtx<'_>,
    inst: &Instruction,
) -> TranslateResult<ValueRef> {
    let v = ctx.translate_value(inst.operands[0])?;
    let to = ctx.translate_type(inst.ty);
    Ok(ctx.build(Instruction::new(Opcode::BitCast, to, vec![v]))?)
}

/// `callbr ... to label %ft [label %i0, ...]` → a plain `call` followed by a
/// `switch` whose default edge is the fallthrough and whose case edges are
/// the indirect destinations. The selector is the constant 0, so execution
/// always takes the fallthrough edge (our simulated `callbr` semantics),
/// while every control-flow edge of the original remains in the CFG —
/// analysis-preserving in the sense of §3.3.2.
fn lower_callbr(ctx: &mut TranslationCtx<'_>, inst: &Instruction) -> TranslateResult<ValueRef> {
    let callee = ctx.translate_value(inst.operands[0])?;
    let mut args = Vec::new();
    for &a in inst.call_args() {
        args.push(ctx.translate_value(a)?);
    }
    let succ = inst.successors();
    let fallthrough = ctx.translate_block(succ[0])?;
    let mut indirect = Vec::new();
    for &b in &succ[1..] {
        indirect.push(ctx.translate_block(b)?);
    }
    // The call.
    let ret_ty = ctx.translate_type(inst.ty);
    let n = args.len() as u32;
    let mut ops = vec![callee];
    ops.extend(args);
    let mut call = Instruction::new(Opcode::Call, ret_ty, ops);
    call.attrs.num_args = n;
    let call_v = ctx.build(call)?;
    // The control-flow restoring switch.
    let i32t = ctx.tgt.types.i32();
    let void = ctx.tgt.types.void();
    let mut sw_ops = vec![ValueRef::const_int(i32t, 0), ValueRef::Block(fallthrough)];
    for (i, b) in indirect.into_iter().enumerate() {
        sw_ops.push(ValueRef::const_int(i32t, i as i64 + 1));
        sw_ops.push(ValueRef::Block(b));
    }
    ctx.build(Instruction::new(Opcode::Switch, void, sw_ops))?;
    Ok(call_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, InlineAsm, IrVersion, Module};

    fn setup_ctx(m: &Module) -> TranslationCtx<'_> {
        let mut ctx = TranslationCtx::new(m, IrVersion::V3_6);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        for b in m.func(sfid).block_ids() {
            let name = m.func(sfid).block(b).name.clone();
            let tb = ctx.tgt.func_mut(tfid).add_block(name);
            ctx.map_block(b, tb);
        }
        ctx.set_insertion(siro_ir::BlockId::new(0));
        ctx
    }

    #[test]
    fn freeze_lowers_to_operand() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.freeze(ValueRef::const_int(i32t, 9));
        b.ret(Some(v));
        let mut ctx = setup_ctx(&m);
        let out = lower_new_instruction(&mut ctx, siro_ir::InstId::new(0)).unwrap();
        // Constant 9, retyped into the target table.
        assert_eq!(out.as_int(), Some(9));
        // No instruction was built.
        assert_eq!(ctx.tgt.func(ctx.tgt_func_id().unwrap()).inst_count(), 0);
    }

    #[test]
    fn addrspacecast_lowers_to_bitcast() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let p0 = m.types.ptr(i32t);
        let p3 = m.types.ptr_in(i32t, 3);
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.addrspacecast(ValueRef::Null(p0), p3);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let mut ctx = setup_ctx(&m);
        let out = lower_new_instruction(&mut ctx, siro_ir::InstId::new(0)).unwrap();
        let tf = ctx.tgt.func(ctx.tgt_func_id().unwrap());
        assert_eq!(tf.inst(out.as_inst().unwrap()).opcode, Opcode::BitCast);
    }

    #[test]
    fn callbr_lowers_to_call_plus_switch() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let fnty = m.types.func(i32t, vec![]);
        let asm = m.add_asm(InlineAsm {
            text: "ret 4".into(),
            constraints: String::new(),
            ty: fnty,
            hw_level: 1,
        });
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let ft = b.add_block("ft");
        let side = b.add_block("side");
        b.position_at_end(e);
        let v = b.callbr(i32t, ValueRef::InlineAsm(asm), vec![], ft, vec![side]);
        b.position_at_end(ft);
        b.ret(Some(v));
        b.position_at_end(side);
        b.ret(Some(ValueRef::const_int(i32t, -1)));
        let mut ctx = setup_ctx(&m);
        let out = lower_new_instruction(&mut ctx, siro_ir::InstId::new(0)).unwrap();
        let tfid = ctx.tgt_func_id().unwrap();
        let tf = ctx.tgt.func(tfid);
        assert_eq!(tf.inst_count(), 2);
        assert_eq!(tf.inst(out.as_inst().unwrap()).opcode, Opcode::Call);
        let sw = tf.inst(siro_ir::InstId::new(1));
        assert_eq!(sw.opcode, Opcode::Switch);
        // default = fallthrough + 1 case = side target.
        assert_eq!(sw.successors().len(), 2);
    }

    #[test]
    fn windows_eh_is_reported_untranslatable() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let void = m.types.void();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let h = b.add_block("handler");
        b.position_at_end(e);
        b.push(Instruction::new(
            Opcode::CatchSwitch,
            void,
            vec![ValueRef::Block(h)],
        ));
        b.position_at_end(h);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let mut ctx = setup_ctx(&m);
        let err = lower_new_instruction(&mut ctx, siro_ir::InstId::new(0)).unwrap_err();
        assert!(matches!(
            err,
            TranslateError::UnsupportedInstruction {
                opcode: Opcode::CatchSwitch,
                ..
            }
        ));
    }
}
