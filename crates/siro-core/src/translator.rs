//! Instruction translators: the `M_k : [Σ_k -> Λ_k]` mappings of Def. 3.1,
//! in executable form.

use std::collections::HashMap;
use std::sync::Arc;

use siro_api::{ApiProgram, ApiRegistry, PredConj, TranslationCtx};
use siro_ir::{InstId, Opcode, ValueRef};

use crate::error::{TranslateError, TranslateResult};
use crate::newinst;

/// Anything that can translate a single instruction — the
/// `TranslateInst` interface of Alg. 1 that the skeleton dispatches to.
pub trait InstTranslator {
    /// Translates instruction `inst` of the current source function,
    /// appending target instructions at the context insertion point, and
    /// returns the target value standing for the instruction's result.
    ///
    /// # Errors
    ///
    /// Any [`TranslateError`]; the skeleton aborts the module translation.
    fn translate_inst(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst: InstId,
    ) -> TranslateResult<ValueRef>;
}

/// One arm of an instruction translator: a predicate guard plus the atomic
/// translator to run when it matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatorArm {
    /// The predicate conjunctions this arm covers. Empty = the `true`
    /// predicate (single sub-kind, always matches).
    pub covers: Vec<PredConj>,
    /// The atomic translator λ.
    pub program: ApiProgram,
}

impl TranslatorArm {
    /// Whether this arm matches a runtime predicate conjunction.
    pub fn matches(&self, conj: &PredConj) -> bool {
        self.covers.is_empty() || self.covers.iter().any(|c| c == conj)
    }
}

/// The translator for one instruction kind: ordered arms, first match wins;
/// no match triggers the warning path (unseen conjunctive predicate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindTranslator {
    /// The arms, most specific first.
    pub arms: Vec<TranslatorArm>,
}

impl KindTranslator {
    /// A single-arm translator with the `true` predicate.
    pub fn single(program: ApiProgram) -> Self {
        KindTranslator {
            arms: vec![TranslatorArm {
                covers: Vec::new(),
                program,
            }],
        }
    }

    /// Selects the arm matching `conj`.
    pub fn select(&self, conj: &PredConj) -> Option<&ApiProgram> {
        self.arms
            .iter()
            .find(|a| a.matches(conj))
            .map(|a| &a.program)
    }
}

/// A complete instruction-translator set produced by synthesis (or built by
/// hand): the output of skeleton completion, pluggable into the skeleton.
#[derive(Debug, Clone)]
pub struct SynthesizedTranslator {
    /// The component registry the programs are expressed over.
    pub registry: Arc<ApiRegistry>,
    /// Per-kind translators for common instructions.
    pub kinds: HashMap<Opcode, KindTranslator>,
}

impl SynthesizedTranslator {
    /// Creates an empty translator set over a registry.
    pub fn new(registry: Arc<ApiRegistry>) -> Self {
        SynthesizedTranslator {
            registry,
            kinds: HashMap::new(),
        }
    }

    /// Registers the translator for one kind.
    pub fn insert(&mut self, kind: Opcode, translator: KindTranslator) {
        self.kinds.insert(kind, translator);
    }

    /// Kinds that have translators.
    pub fn covered_kinds(&self) -> Vec<Opcode> {
        let mut v: Vec<Opcode> = self.kinds.keys().copied().collect();
        v.sort();
        v
    }

    /// Structural equality: same version pair and identical per-kind arms
    /// (covers and programs). `PartialEq` is deliberately *not* derived —
    /// the registry holds closures, so this method spells out exactly what
    /// "the same translator" means: two structurally equal translators
    /// over registries of the same pair behave identically, because
    /// [`ApiRegistry::for_pair`] is deterministic.
    pub fn structurally_eq(&self, other: &SynthesizedTranslator) -> bool {
        self.registry.src_version == other.registry.src_version
            && self.registry.tgt_version == other.registry.tgt_version
            && self.kinds == other.kinds
    }
}

impl InstTranslator for SynthesizedTranslator {
    fn translate_inst(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst: InstId,
    ) -> TranslateResult<ValueRef> {
        let opcode = ctx.src_func()?.inst(inst).opcode;
        // New instructions: the target version cannot express this kind.
        if !self.registry.tgt_version.supports(opcode) {
            return newinst::lower_new_instruction(ctx, inst);
        }
        let kt = self
            .kinds
            .get(&opcode)
            .ok_or(TranslateError::MissingTranslator(opcode))?;
        let conj = self.registry.subkind_profile(ctx, opcode, inst)?;
        let program = kt.select(&conj).ok_or_else(|| {
            // The paper's generated warning branch for unseen predicates.
            TranslateError::UnseenPredicate {
                kind: opcode,
                conj: conj.clone(),
            }
        })?;
        Ok(program.run(&self.registry, ctx, inst)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_api::PredValue;

    fn conj(pairs: &[(&str, bool)]) -> PredConj {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), PredValue::Bool(*v)))
            .collect()
    }

    #[test]
    fn arm_matching() {
        let reg = ApiRegistry::for_pair(siro_ir::IrVersion::V13_0, siro_ir::IrVersion::V3_6);
        let any_prog = ApiProgram {
            kind: Opcode::Br,
            steps: vec![],
        };
        let _ = &reg;
        let arm = TranslatorArm {
            covers: vec![conj(&[("is_unconditional", true)])],
            program: any_prog.clone(),
        };
        assert!(arm.matches(&conj(&[("is_unconditional", true)])));
        assert!(!arm.matches(&conj(&[("is_unconditional", false)])));
        let true_arm = TranslatorArm {
            covers: vec![],
            program: any_prog,
        };
        assert!(true_arm.matches(&conj(&[("anything", false)])));
    }

    #[test]
    fn kind_translator_first_match_wins() {
        let p1 = ApiProgram {
            kind: Opcode::Br,
            steps: vec![],
        };
        let mut p2 = p1.clone();
        p2.kind = Opcode::Ret; // distinguishable marker
        let kt = KindTranslator {
            arms: vec![
                TranslatorArm {
                    covers: vec![conj(&[("is_unconditional", true)])],
                    program: p1,
                },
                TranslatorArm {
                    covers: vec![],
                    program: p2,
                },
            ],
        };
        assert_eq!(
            kt.select(&conj(&[("is_unconditional", true)]))
                .unwrap()
                .kind,
            Opcode::Br
        );
        assert_eq!(
            kt.select(&conj(&[("is_unconditional", false)]))
                .unwrap()
                .kind,
            Opcode::Ret
        );
    }
}
