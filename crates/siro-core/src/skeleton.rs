//! The version-agnostic translation skeleton of Alg. 1.
//!
//! The skeleton divides and conquers the IR hierarchy top-down: globals,
//! then functions (arguments, then blocks, then instructions), delegating
//! every instruction to a pluggable [`InstTranslator`] — the interface the
//! synthesized instruction translators are later filled into. The skeleton
//! itself is written once and reused for every version pair.

use siro_api::TranslationCtx;
use siro_ir::{IrVersion, Module};

use crate::error::{TranslateError, TranslateResult};
use crate::translator::InstTranslator;

/// The reusable translation skeleton for one target version.
///
/// # Examples
///
/// ```
/// use siro_core::{ReferenceTranslator, Skeleton};
/// use siro_ir::{FuncBuilder, IrVersion, Module, ValueRef};
///
/// let mut m = Module::new("demo", IrVersion::V13_0);
/// let i32t = m.types.i32();
/// let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
/// let mut b = FuncBuilder::new(&mut m, f);
/// let e = b.add_block("entry");
/// b.position_at_end(e);
/// b.ret(Some(ValueRef::const_int(i32t, 3)));
///
/// let out = Skeleton::new(IrVersion::V3_6)
///     .translate_module(&m, &ReferenceTranslator)
///     .unwrap();
/// assert_eq!(out.version, IrVersion::V3_6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Skeleton {
    target: IrVersion,
}

impl Skeleton {
    /// Creates a skeleton targeting `target`.
    pub fn new(target: IrVersion) -> Self {
        Skeleton { target }
    }

    /// The target version.
    pub fn target_version(&self) -> IrVersion {
        self.target
    }

    /// Translates a whole module (Alg. 1's top level).
    ///
    /// # Errors
    ///
    /// Propagates instruction-translator failures and reports unresolved
    /// forward references.
    pub fn translate_module(
        &self,
        src: &Module,
        inst_translator: &dyn InstTranslator,
    ) -> TranslateResult<Module> {
        let mut ctx = TranslationCtx::new(src, self.target);
        self.translate_into(&mut ctx, src, inst_translator)?;
        siro_trace::counter("core.modules_translated", 1);
        Ok(ctx.finish())
    }

    /// Translates into an existing context (exposed so the synthesizer can
    /// keep the context for inspection).
    ///
    /// # Errors
    ///
    /// See [`Skeleton::translate_module`].
    pub fn translate_into(
        &self,
        ctx: &mut TranslationCtx<'_>,
        src: &Module,
        inst_translator: &dyn InstTranslator,
    ) -> TranslateResult<()> {
        // TranslateGlobal for every g in G.
        for g in src.global_ids() {
            ctx.translate_global(g);
        }
        // Pre-register every function signature so call operands resolve
        // regardless of translation order.
        for f in src.func_ids() {
            ctx.clone_signature(f);
        }
        // TranslateFunc for every f in F.
        for f in src.func_ids() {
            if src.func(f).is_external {
                continue;
            }
            self.translate_function(ctx, src, f, inst_translator)?;
        }
        Ok(())
    }

    fn translate_function(
        &self,
        ctx: &mut TranslationCtx<'_>,
        src: &Module,
        src_fid: siro_ir::FuncId,
        inst_translator: &dyn InstTranslator,
    ) -> TranslateResult<()> {
        let tgt_fid = ctx.translate_func(src_fid)?;
        ctx.begin_function(src_fid, tgt_fid);
        let func = src.func(src_fid);
        // Translator-phase funnel counters: coarse per-phase totals the
        // difftest fuzzer deltas around a translation to derive feedback
        // (an input that pushes more blocks/phis/insts through the funnel
        // is structurally novel even when block coverage is unchanged).
        siro_trace::counter("core.funcs_translated", 1);
        siro_trace::counter("core.blocks_translated", func.blocks.len() as u64);
        siro_trace::counter(
            "core.phis_translated",
            func.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|&&i| func.inst(i).opcode == siro_ir::Opcode::Phi)
                .count() as u64,
        );
        // TranslateArg: arguments were carried over by clone_signature;
        // TranslateBlock: pre-create each block so block operands and
        // forward branches resolve.
        for b in func.block_ids() {
            let name = func.block(b).name.clone();
            let tb = ctx.tgt.func_mut(tgt_fid).add_block(name);
            ctx.map_block(b, tb);
        }
        // TranslateInst for each instruction, in block layout order.
        for b in func.block_ids() {
            let tb = ctx.translate_block(b)?;
            ctx.set_insertion(tb);
            for &i in &func.block(b).insts {
                siro_trace::counter("core.insts_translated", 1);
                let v = inst_translator.translate_inst(ctx, i)?;
                // Carry the source instruction's name (our stand-in for
                // `!dbg` source locations) onto the translated result —
                // a skeleton responsibility, independent of how the
                // instruction translator was obtained.
                if let (Some(name), Some(tid)) = (func.inst(i).name.clone(), v.as_inst()) {
                    let tf = ctx.tgt.func_mut(tgt_fid);
                    if tf.inst(tid).name.is_none() {
                        tf.inst_mut(tid).name = Some(name);
                    }
                }
                ctx.note_translated(i, v)?;
            }
        }
        let unresolved = ctx.unresolved_placeholders();
        if unresolved > 0 {
            return Err(TranslateError::UnresolvedPlaceholders {
                func: func.name.clone(),
                count: unresolved,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceTranslator;
    use siro_ir::{
        interp::Machine, verify::verify_module, FuncBuilder, Function, GlobalInit, IrVersion,
        Param, ValueRef,
    };

    #[test]
    fn translates_globals_functions_and_calls() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        m.add_global(siro_ir::Global {
            name: "g".into(),
            ty: i32t,
            init: GlobalInit::Int(30),
            is_const: false,
        });
        let helper = FuncBuilder::define(
            &mut m,
            "helper",
            i32t,
            vec![Param {
                name: "x".into(),
                ty: i32t,
            }],
        );
        let mut b = FuncBuilder::new(&mut m, helper);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.add(ValueRef::Arg(0), ValueRef::const_int(i32t, 12));
        b.ret(Some(v));
        let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, mainf);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let g = b.load(i32t, ValueRef::Global(siro_ir::GlobalId::new(0)));
        let r = b.call(i32t, ValueRef::Func(helper), vec![g]);
        b.ret(Some(r));
        let before = Machine::new(&m).run_main().unwrap().return_int();
        assert_eq!(before, Some(42));

        let out = Skeleton::new(IrVersion::V3_0)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        verify_module(&out).unwrap();
        assert_eq!(out.globals.len(), 1);
        assert_eq!(out.funcs.len(), 2);
        let after = Machine::new(&out).run_main().unwrap().return_int();
        assert_eq!(after, Some(42));
    }

    #[test]
    fn forward_references_resolve_via_placeholders() {
        // A phi that references an instruction defined *later* in layout
        // order exercises the placeholder machinery.
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let loopb = b.add_block("loop");
        let exit = b.add_block("exit");
        b.position_at_end(entry);
        b.br(loopb);
        b.position_at_end(loopb);
        let phi = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), entry)]);
        let next = b.add(phi, ValueRef::const_int(i32t, 3));
        let cond = b.icmp(
            siro_ir::IntPredicate::Sge,
            next,
            ValueRef::const_int(i32t, 9),
        );
        b.cond_br(cond, exit, loopb);
        b.position_at_end(exit);
        b.ret(Some(next));
        if let ValueRef::Inst(pid) = phi {
            let fm = m.func_mut(f);
            fm.inst_mut(pid)
                .operands
                .extend([next, ValueRef::Block(loopb)]);
        }
        let before = Machine::new(&m).run_main().unwrap().return_int();
        let out = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        verify_module(&out).unwrap();
        let after = Machine::new(&out).run_main().unwrap().return_int();
        assert_eq!(before, after);
    }

    #[test]
    fn external_declarations_carry_over() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let malloc = m.add_func(Function::external(
            "malloc",
            i32t,
            vec![Param {
                name: "n".into(),
                ty: i32t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let r = b.call(
            i32t,
            ValueRef::Func(malloc),
            vec![ValueRef::const_int(i32t, 4)],
        );
        let _ = r;
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let out = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        assert!(out.func_by_name("malloc").is_some());
        assert!(out.func(out.func_by_name("malloc").unwrap()).is_external);
    }

    #[test]
    fn upgrade_direction_works_too() {
        // Pair 10 of Tab. 3: 3.6 -> 12.0.
        let mut m = Module::new("m", IrVersion::V3_6);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.mul(ValueRef::const_int(i32t, 6), ValueRef::const_int(i32t, 9));
        b.ret(Some(v));
        let out = Skeleton::new(IrVersion::V12_0)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        verify_module(&out).unwrap();
        assert_eq!(
            Machine::new(&out).run_main().unwrap().return_int(),
            Some(54)
        );
    }
}
