//! The hand-written reference translator: the ground truth a synthesized
//! translator must behaviourally match.
//!
//! It is a direct instantiation of the "extract and reconstruct" principle:
//! every instruction is rebuilt in the target version by structurally
//! translating its operands, types, and attributes. New instructions go
//! through the same handlers as the synthesized translators (§3.3.2).
//!
//! The evaluation clients (Tab. 4 / Tab. 5 / kernel) use this translator so
//! they do not pay synthesis cost; tests use it as the oracle that synthesis
//! converged.

use siro_api::TranslationCtx;
use siro_ir::{InstId, Opcode, ValueRef};

use crate::error::TranslateResult;
use crate::newinst;
use crate::translator::InstTranslator;

/// The structural reference instruction translator for one target version.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceTranslator;

impl InstTranslator for ReferenceTranslator {
    fn translate_inst(
        &self,
        ctx: &mut TranslationCtx<'_>,
        inst_id: InstId,
    ) -> TranslateResult<ValueRef> {
        let inst = ctx.src_func()?.inst(inst_id).clone();
        if !ctx.tgt.version.supports(inst.opcode) {
            return newinst::lower_new_instruction(ctx, inst_id);
        }
        // `freeze` upgrades cleanly; everything else is rebuilt 1:1.
        let mut ops = siro_ir::OpVec::new();
        for &op in &inst.operands {
            let t = match op {
                ValueRef::Block(b) => ValueRef::Block(ctx.translate_block(b)?),
                other => ctx.translate_value(other)?,
            };
            ops.push(t);
        }
        let mut out = inst.clone();
        out.operands = ops;
        out.ty = ctx.translate_type(inst.ty);
        out.attrs.alloc_ty = inst.attrs.alloc_ty.map(|t| ctx.translate_type(t));
        out.attrs.gep_source_ty = inst.attrs.gep_source_ty.map(|t| ctx.translate_type(t));
        // Explicit callee types only exist where the target builders require
        // them (Fig. 13).
        out.attrs.callee_ty = if ctx.tgt.version.builders_require_explicit_type() {
            inst.attrs.callee_ty.map(|t| ctx.translate_type(t))
        } else {
            None
        };
        let _ = inst.opcode == Opcode::Phi; // phis are rebuilt like the rest
        Ok(ctx.build(out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::Skeleton;
    use siro_ir::{
        interp::Machine, verify::verify_module, FuncBuilder, IntPredicate, IrVersion, Module,
    };

    fn looping_module() -> Module {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at_end(entry);
        b.br(header);
        b.position_at_end(header);
        let i = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), entry)]);
        let c = b.icmp(IntPredicate::Slt, i, ValueRef::const_int(i32t, 7));
        b.cond_br(c, body, exit);
        b.position_at_end(body);
        let n = b.add(i, ValueRef::const_int(i32t, 1));
        b.br(header);
        b.position_at_end(exit);
        b.ret(Some(i));
        if let ValueRef::Inst(pid) = i {
            let fm = m.func_mut(f);
            fm.inst_mut(pid).operands.extend([n, ValueRef::Block(body)]);
        }
        m
    }

    #[test]
    fn reference_translation_preserves_execution() {
        let m = looping_module();
        let before = Machine::new(&m).run_main().unwrap().return_int();
        let skel = Skeleton::new(IrVersion::V3_6);
        let out = skel.translate_module(&m, &ReferenceTranslator).unwrap();
        assert_eq!(out.version, IrVersion::V3_6);
        verify_module(&out).unwrap();
        let after = Machine::new(&out).run_main().unwrap().return_int();
        assert_eq!(before, after);
        assert_eq!(before, Some(7));
    }
}
