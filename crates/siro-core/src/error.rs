//! Errors produced while translating a module.

use std::fmt;

use siro_api::{ApiError, PredConj};
use siro_ir::Opcode;

/// Failure of a module translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// An API component failed while running an instruction translator.
    Api(ApiError),
    /// The source used an instruction the target version lacks and no
    /// new-instruction handler covers it (e.g. the Windows EH family).
    UnsupportedInstruction {
        /// The offending opcode.
        opcode: Opcode,
        /// Human-readable reason.
        detail: String,
    },
    /// A synthesized translator met a sub-kind combination no test case
    /// covered — the paper's "unseen conjunctive predicate" warning, which
    /// asks the user for an additional test case.
    UnseenPredicate {
        /// The instruction kind.
        kind: Opcode,
        /// The runtime predicate conjunction that was not covered.
        conj: PredConj,
    },
    /// No instruction translator exists for a common instruction kind.
    MissingTranslator(Opcode),
    /// Forward references were left unresolved at the end of a function.
    UnresolvedPlaceholders {
        /// Function name.
        func: String,
        /// How many placeholders had no translation.
        count: usize,
    },
    /// The source module has no such function/entity.
    Ir(siro_ir::IrError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Api(e) => write!(f, "API component failed: {e}"),
            TranslateError::UnsupportedInstruction { opcode, detail } => {
                write!(f, "cannot translate `{opcode}`: {detail}")
            }
            TranslateError::UnseenPredicate { kind, conj } => {
                write!(
                    f,
                    "warning trap: `{kind}` met unseen predicate conjunction {{"
                )?;
                for (i, (k, v)) in conj.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}={v}")?;
                }
                f.write_str("}; add a test case covering it")
            }
            TranslateError::MissingTranslator(op) => {
                write!(f, "no instruction translator for `{op}`")
            }
            TranslateError::UnresolvedPlaceholders { func, count } => {
                write!(f, "{count} unresolved placeholder(s) left in `{func}`")
            }
            TranslateError::Ir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<ApiError> for TranslateError {
    fn from(e: ApiError) -> Self {
        TranslateError::Api(e)
    }
}

impl From<siro_ir::IrError> for TranslateError {
    fn from(e: siro_ir::IrError) -> Self {
        TranslateError::Ir(e)
    }
}

/// Result alias for translation.
pub type TranslateResult<T> = Result<T, TranslateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unseen_predicate() {
        let mut conj = PredConj::new();
        conj.insert("is_unconditional".into(), siro_api::PredValue::Bool(false));
        let e = TranslateError::UnseenPredicate {
            kind: Opcode::Br,
            conj,
        };
        let s = e.to_string();
        assert!(s.contains("br"));
        assert!(s.contains("is_unconditional=false"));
        assert!(s.contains("add a test case"));
    }
}
