//! # siro-core — the Siro translation framework
//!
//! The version-agnostic half of an IR translator (§3.2 of the paper):
//!
//! * [`Skeleton`] — the divide-and-conquer translation skeleton of Alg. 1,
//!   written once and reused across version pairs;
//! * [`InstTranslator`] — the pluggable per-instruction interface the
//!   skeleton dispatches to (`TranslateInst`);
//! * [`SynthesizedTranslator`] / [`KindTranslator`] — the executable form of
//!   the `M_k : [Σ_k -> Λ_k]` mappings (Def. 3.1) that `siro-synth`
//!   produces, including the warning path for unseen predicates;
//! * [`ReferenceTranslator`] — a hand-written structural translator used as
//!   ground truth and by the evaluation clients;
//! * [`newinst`] — analysis-preserving lowerings for new instructions
//!   (§3.3.2): `callbr` → call + switch, `freeze` → operand,
//!   `addrspacecast` → `bitcast`, and deliberate rejection of the Windows
//!   EH family.

#![warn(missing_docs)]

pub mod error;
pub mod newinst;
pub mod reference;
pub mod skeleton;
pub mod translator;

pub use error::{TranslateError, TranslateResult};
pub use reference::ReferenceTranslator;
pub use skeleton::Skeleton;
pub use translator::{InstTranslator, KindTranslator, SynthesizedTranslator, TranslatorArm};
