//! # siro-kernel — the similarity-based kernel bug detector (§6.3)
//!
//! The paper's flagship deployment: the Linux kernel can only be compiled
//! with recent compilers, so its IR is obtained at 14.0/15.0, translated
//! down to 3.6 by Siro, and handed to an existing value-flow analyzer. A
//! *similarity-based* detector then mines known security patches for root
//! causes and searches other drivers for the same unfixed pattern,
//! uncovering 80 new bugs (56 fixed and merged).
//!
//! The reproduction:
//!
//! * [`patch_database`] — a database of driver security patches, each
//!   reduced to a root cause: an acquire-style source, a rule
//!   ([`PatchRule`]), and the fix shape;
//! * [`build_kernel`] — two deterministic kernel builds (different kernel
//!   releases needing different compiler versions, as in the paper), with
//!   exactly 80 unfixed pattern instances planted across their drivers
//!   alongside fixed counterparts and benign driver code;
//! * [`detect_similar_bugs`] — value-flow path search for each patch's root
//!   cause over the *translated* IR.

#![warn(missing_docs)]

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_analysis::{Cfg, DomTree, FlowSet};
use siro_core::{InstTranslator, Skeleton};
use siro_ir::{
    FuncBuilder, FuncId, Function, InstId, IntPredicate, IrVersion, Module, Opcode, Param, TypeId,
    ValueRef,
};

/// The root-cause shape a security patch fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchRule {
    /// The acquired pointer is dereferenced without a null check
    /// (fix: add `if (!p) return;`).
    CheckBeforeDeref,
    /// The acquired resource is not released before returning
    /// (fix: add the release call).
    ReleaseBeforeReturn,
}

/// One known security patch, reduced to its root cause.
#[derive(Debug, Clone)]
pub struct SecurityPatch {
    /// Patch identifier (commit-ish).
    pub id: &'static str,
    /// The acquire-style function whose result is mishandled.
    pub acquire_fn: &'static str,
    /// The matching release function (for release rules).
    pub release_fn: &'static str,
    /// The rule.
    pub rule: PatchRule,
}

/// The patch database mined from driver history.
pub fn patch_database() -> Vec<SecurityPatch> {
    vec![
        SecurityPatch {
            id: "a1b2c3d",
            acquire_fn: "kmalloc",
            release_fn: "kfree",
            rule: PatchRule::CheckBeforeDeref,
        },
        SecurityPatch {
            id: "e4f5a6b",
            acquire_fn: "kzalloc",
            release_fn: "kfree",
            rule: PatchRule::CheckBeforeDeref,
        },
        SecurityPatch {
            id: "0c1d2e3",
            acquire_fn: "vmalloc",
            release_fn: "vfree",
            rule: PatchRule::ReleaseBeforeReturn,
        },
        SecurityPatch {
            id: "77aa88b",
            acquire_fn: "fget",
            release_fn: "fput",
            rule: PatchRule::ReleaseBeforeReturn,
        },
        SecurityPatch {
            id: "9f0e1d2",
            acquire_fn: "ioremap",
            release_fn: "iounmap",
            rule: PatchRule::ReleaseBeforeReturn,
        },
    ]
}

/// A detected similar bug.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KernelBug {
    /// The patch whose root cause matched.
    pub patch_id: &'static str,
    /// The driver function containing the bug.
    pub func: String,
    /// The sink label.
    pub sink: String,
    /// Reporting status (deterministic triage: the paper reports 80
    /// confirmed, 56 of them fixed and merged).
    pub status: BugStatus,
}

/// Triage status of a reported kernel bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BugStatus {
    /// Confirmed by maintainers.
    Confirmed,
    /// Confirmed, and the submitted patch was merged.
    FixedAndMerged,
}

/// One kernel build: release name, required compiler (IR) version, and the
/// number of planted unfixed bugs.
#[derive(Debug, Clone)]
pub struct KernelBuild {
    /// Kernel release name.
    pub release: &'static str,
    /// The compiler version this release requires.
    pub compiler: IrVersion,
    /// Planted unfixed bugs.
    pub planted: usize,
    /// Drivers in this build.
    pub drivers: usize,
    /// Seed.
    pub seed: u64,
}

/// The two kernel builds of the deployment (14.0 → 3.6 and 15.0 → 3.6
/// translators in the paper), 80 planted bugs in total.
pub fn kernel_builds() -> [KernelBuild; 2] {
    [
        KernelBuild {
            release: "linux-6.1",
            compiler: IrVersion::V14_0,
            planted: 44,
            drivers: 36,
            seed: 0x6_1000,
        },
        KernelBuild {
            release: "linux-6.4",
            compiler: IrVersion::V15_0,
            planted: 36,
            drivers: 30,
            seed: 0x6_4000,
        },
    ]
}

struct KernelExterns {
    by_name: std::collections::HashMap<&'static str, FuncId>,
}

fn declare_kernel_externs(m: &mut Module) -> KernelExterns {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let void = m.types.void();
    let p = |n: &str, ty: TypeId| Param { name: n.into(), ty };
    let mut by_name = std::collections::HashMap::new();
    for (name, ret, params) in [
        ("kmalloc", p8, vec![p("n", i64t)]),
        ("kzalloc", p8, vec![p("n", i64t)]),
        ("vmalloc", p8, vec![p("n", i64t)]),
        ("kfree", void, vec![p("p", p8)]),
        ("vfree", void, vec![p("p", p8)]),
        ("fget", p8, vec![p("fd", i32t)]),
        ("fput", void, vec![p("f", p8)]),
        ("ioremap", p8, vec![p("addr", i64t)]),
        ("iounmap", void, vec![p("p", p8)]),
        ("printk", i32t, vec![p("x", i32t)]),
    ] {
        by_name.insert(name, m.add_func(Function::external(name, ret, params)));
    }
    KernelExterns { by_name }
}

/// Builds one kernel release's IR at its required compiler version.
///
/// Exactly `build.planted` unfixed pattern instances are planted (cycling
/// through the patch database), together with fixed counterparts and benign
/// driver code.
pub fn build_kernel(build: &KernelBuild) -> Module {
    let mut m = Module::new(build.release.to_string(), build.compiler);
    let ex = declare_kernel_externs(&mut m);
    let patches = patch_database();
    let mut rng = StdRng::seed_from_u64(build.seed);
    // Unfixed (buggy) instances.
    for i in 0..build.planted {
        let patch = &patches[i % patches.len()];
        let driver = i % build.drivers;
        emit_pattern(&mut m, &ex, patch, driver, i, false, &mut rng);
    }
    // Fixed counterparts (never reported).
    for i in 0..build.planted / 2 {
        let patch = &patches[(i + 1) % patches.len()];
        let driver = i % build.drivers;
        emit_pattern(&mut m, &ex, patch, driver, i + 10_000, true, &mut rng);
    }
    // Benign driver code.
    for d in 0..build.drivers {
        for j in 0..4 {
            emit_benign(&mut m, &ex, d, j, &mut rng);
        }
    }
    m
}

fn emit_pattern(
    m: &mut Module,
    ex: &KernelExterns,
    patch: &SecurityPatch,
    driver: usize,
    idx: usize,
    fixed: bool,
    rng: &mut StdRng,
) {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let void = m.types.void();
    let tag = if fixed { "ok" } else { "bug" };
    let fname = format!("drv{driver}_{}_{tag}_{idx}", patch.acquire_fn);
    let f = FuncBuilder::define(m, fname.clone(), i32t, vec![]);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let acq = ex.by_name[patch.acquire_fn];
    let size = rng.gen_range(16..256i64);
    let arg = if patch.acquire_fn == "fget" {
        ValueRef::const_int(i32t, 3)
    } else {
        ValueRef::const_int(i64t, size)
    };
    let p = b.call(p8, ValueRef::Func(acq), vec![arg]);
    if let ValueRef::Inst(id) = p {
        let fid = b.func_id();
        b.module().func_mut(fid).inst_mut(id).name = Some(format!("{fname}_acquire"));
    }
    match patch.rule {
        PatchRule::CheckBeforeDeref => {
            if fixed {
                let ok = b.add_block("ok");
                let bail = b.add_block("bail");
                let c = b.icmp(IntPredicate::Eq, p, ValueRef::Null(p8));
                b.cond_br(c, bail, ok);
                b.position_at_end(bail);
                b.ret(Some(ValueRef::const_int(i32t, -12)));
                b.position_at_end(ok);
            }
            let st = b.store(ValueRef::const_int(i8t, 1), p);
            if let ValueRef::Inst(id) = st {
                let fid = b.func_id();
                b.module().func_mut(fid).inst_mut(id).name = Some(format!("{fname}_deref"));
            }
            let rel = ex.by_name[patch.release_fn];
            b.call(void, ValueRef::Func(rel), vec![p]);
            b.ret(Some(ValueRef::const_int(i32t, 0)));
        }
        PatchRule::ReleaseBeforeReturn => {
            // Use the resource, then return — with or without the release.
            b.store(ValueRef::const_int(i8t, 1), p);
            if fixed {
                let rel = ex.by_name[patch.release_fn];
                b.call(void, ValueRef::Func(rel), vec![p]);
            }
            b.ret(Some(ValueRef::const_int(i32t, 0)));
        }
    }
}

fn emit_benign(m: &mut Module, ex: &KernelExterns, driver: usize, idx: usize, rng: &mut StdRng) {
    let i32t = m.types.i32();
    let fname = format!("drv{driver}_util_{idx}");
    let f = FuncBuilder::define(
        m,
        fname,
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let k = rng.gen_range(1..9i64);
    let v = b.shl(ValueRef::Arg(0), ValueRef::const_int(i32t, k % 4));
    let w = b.or(v, ValueRef::const_int(i32t, k));
    let printk = ex.by_name["printk"];
    b.call(i32t, ValueRef::Func(printk), vec![w]);
    b.ret(Some(w));
}

/// Searches the (translated) kernel IR for unfixed instances of every patch
/// root cause: value-flow path search from the acquire call to the rule's
/// sink condition.
pub fn detect_similar_bugs(module: &Module) -> Vec<KernelBug> {
    let mut bugs = Vec::new();
    for patch in patch_database() {
        for fid in module.func_ids() {
            let func = module.func(fid);
            if func.is_external {
                continue;
            }
            bugs.extend(scan_function(module, func, &patch));
        }
    }
    // Deterministic triage: sort, then the first ~70% (rounded) are
    // fixed-and-merged (56 of 80 in the deployment).
    bugs.sort();
    let merged = (bugs.len() * 7 + 5) / 10;
    for (i, b) in bugs.iter_mut().enumerate() {
        b.status = if i < merged {
            BugStatus::FixedAndMerged
        } else {
            BugStatus::Confirmed
        };
    }
    bugs
}

fn scan_function(module: &Module, func: &Function, patch: &SecurityPatch) -> Vec<KernelBug> {
    let mut out = Vec::new();
    let acquires = siro_analysis::taint::calls_to(module, func, patch.acquire_fn);
    if acquires.is_empty() {
        return out;
    }
    let cfg = Cfg::build(func);
    let dom = DomTree::build(&cfg);
    let position = |target: InstId| -> Option<(siro_ir::BlockId, usize)> {
        func.block_ids().find_map(|b| {
            func.block(b)
                .insts
                .iter()
                .position(|&i| i == target)
                .map(|p| (b, p))
        })
    };
    for (acq_id, _) in acquires {
        let flow = FlowSet::forward(func, [ValueRef::Inst(acq_id)]);
        match patch.rule {
            PatchRule::CheckBeforeDeref => {
                // Null-checks on the flow set.
                let live: Vec<InstId> = func
                    .blocks
                    .iter()
                    .flat_map(|b| b.insts.iter().copied())
                    .collect();
                let checks: Vec<InstId> = live
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let inst = func.inst(i);
                        inst.opcode == Opcode::ICmp
                            && inst.operands.iter().any(|&v| flow.contains(v))
                            && inst.operands.iter().any(|v| matches!(v, ValueRef::Null(_)))
                    })
                    .collect();
                for &sink in &live {
                    let inst = func.inst(sink);
                    let ptr = match inst.opcode {
                        Opcode::Load => inst.operands[0],
                        Opcode::Store => inst.operands[1],
                        _ => continue,
                    };
                    if !flow.contains(ptr) {
                        continue;
                    }
                    let guarded = checks
                        .iter()
                        .any(|&chk| match (position(chk), position(sink)) {
                            (Some((cb, cp)), Some((sb, sp))) => {
                                (cb == sb && cp < sp) || (cb != sb && dom.dominates(cb, sb))
                            }
                            _ => false,
                        });
                    if !guarded {
                        out.push(KernelBug {
                            patch_id: patch.id,
                            func: func.name.clone(),
                            sink: inst
                                .name
                                .clone()
                                .unwrap_or_else(|| format!("inst{}", sink.raw())),
                            status: BugStatus::Confirmed,
                        });
                    }
                }
            }
            PatchRule::ReleaseBeforeReturn => {
                let released = siro_analysis::taint::calls_to(module, func, patch.release_fn)
                    .iter()
                    .any(|(_, c)| c.call_args().iter().any(|&a| flow.contains(a)));
                if !released {
                    out.push(KernelBug {
                        patch_id: patch.id,
                        func: func.name.clone(),
                        sink: func
                            .inst(acq_id)
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("inst{}", acq_id.raw())),
                        status: BugStatus::Confirmed,
                    });
                }
            }
        }
    }
    out
}

/// The deployment summary.
#[derive(Debug, Clone)]
pub struct KernelCampaign {
    /// Per-release bug lists.
    pub per_release: Vec<(&'static str, IrVersion, Vec<KernelBug>)>,
}

impl KernelCampaign {
    /// Total bugs found.
    pub fn total_bugs(&self) -> usize {
        self.per_release.iter().map(|(_, _, b)| b.len()).sum()
    }

    /// Bugs whose patches were merged.
    pub fn merged(&self) -> usize {
        self.per_release
            .iter()
            .flat_map(|(_, _, b)| b)
            .filter(|b| b.status == BugStatus::FixedAndMerged)
            .count()
    }
}

/// A kernel-deployment failure, tagged with the release and the stage
/// that failed.
#[derive(Debug)]
pub struct PipelineError {
    /// The kernel release being processed.
    pub release: &'static str,
    /// The stage that failed (`"build verification"`, `"translation"`,
    /// `"post-translation verification"`).
    pub stage: &'static str,
    /// The underlying error.
    pub source: Box<dyn std::error::Error + Send + Sync>,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} failed: {}",
            self.stage, self.release, self.source
        )
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Runs the full deployment: build each kernel release at its required
/// compiler version, translate down to `analyzer_version` with the
/// translator `translator_for` provides for that source version (the paper
/// uses two translators, 14.0 → 3.6 and 15.0 → 3.6), and run the
/// similarity detector over the translated IR.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the release when a kernel module
/// fails to translate or verify.
pub fn run_campaign(
    translator_for: &dyn Fn(IrVersion) -> Box<dyn InstTranslator>,
    analyzer_version: IrVersion,
) -> Result<KernelCampaign, PipelineError> {
    let skel = Skeleton::new(analyzer_version);
    let per_release = kernel_builds()
        .iter()
        .map(|build| {
            let kernel_ir = build_kernel(build);
            siro_ir::verify::verify_module(&kernel_ir).map_err(|e| PipelineError {
                release: build.release,
                stage: "build verification",
                source: Box::new(e),
            })?;
            let translator = translator_for(build.compiler);
            let translated = skel
                .translate_module(&kernel_ir, translator.as_ref())
                .map_err(|e| PipelineError {
                    release: build.release,
                    stage: "translation",
                    source: Box::new(e),
                })?;
            siro_ir::verify::verify_module(&translated).map_err(|e| PipelineError {
                release: build.release,
                stage: "post-translation verification",
                source: Box::new(e),
            })?;
            let bugs = detect_similar_bugs(&translated);
            Ok((build.release, build.compiler, bugs))
        })
        .collect::<Result<Vec<_>, PipelineError>>()?;
    Ok(KernelCampaign { per_release })
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::ReferenceTranslator;

    #[test]
    fn campaign_finds_eighty_bugs_with_fifty_six_merged() {
        let campaign = run_campaign(&|_| Box::new(ReferenceTranslator), IrVersion::V3_6).unwrap();
        assert_eq!(campaign.total_bugs(), 80);
        assert_eq!(campaign.merged(), 56);
        // Both translators (14.0 -> 3.6, 15.0 -> 3.6) contributed.
        assert_eq!(campaign.per_release.len(), 2);
        assert!(campaign.per_release.iter().all(|(_, _, b)| !b.is_empty()));
    }

    #[test]
    fn fixed_patterns_are_not_reported() {
        let build = &kernel_builds()[0];
        let m = build_kernel(build);
        let bugs = detect_similar_bugs(&m);
        assert!(bugs.iter().all(|b| b.func.contains("_bug_")));
        assert_eq!(bugs.len(), build.planted);
    }

    #[test]
    fn detection_is_stable_across_translation() {
        let build = &kernel_builds()[1];
        let m = build_kernel(build);
        let before = detect_similar_bugs(&m);
        let t = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        let after = detect_similar_bugs(&t);
        assert_eq!(before.len(), after.len());
        let names_before: Vec<&String> = before.iter().map(|b| &b.func).collect();
        let names_after: Vec<&String> = after.iter().map(|b| &b.func).collect();
        assert_eq!(names_before, names_after);
    }
}
