//! A small blocking client for the wire protocol.
//!
//! Used by `siro translate --remote`, the loopback throughput bench, the
//! CI smoke test, and the integration tests. One [`Client`] owns one
//! connection; [`Client::translate_batch`] pipelines many requests before
//! reading any response, which is how a caller gets concurrency out of a
//! single connection.

use std::io::{self};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use siro_ir::IrVersion;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, ProtocolError, Request, Response, StageNanos,
    TranslateMode,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / framing problems.
    Protocol(ProtocolError),
    /// The server answered with a structured error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// Admission control rejected the request; retry after the given
    /// backoff instead of immediately.
    Throttled {
        /// Milliseconds until the per-peer token bucket refills.
        retry_after_ms: u32,
        /// Server-provided detail.
        message: String,
    },
    /// Connecting, or waiting for a response, exceeded the configured
    /// timeout (see [`Client::set_op_timeout`]). Distinct from
    /// [`ClientError::Protocol`] so callers can retry timeouts without
    /// parsing error strings.
    Timeout,
    /// The server answered with the wrong response kind or id.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Throttled {
                retry_after_ms,
                message,
            } => write!(f, "throttled (retry after {retry_after_ms} ms): {message}"),
            ClientError::Timeout => f.write_str("timed out waiting for the server"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            ClientError::Timeout
        } else {
            ClientError::Protocol(ProtocolError::Io(e))
        }
    }
}

/// A successful translation as seen by the client.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The translated module text.
    pub text: String,
    /// Whether the server's translator cache already had the pair.
    pub cache_hit: bool,
    /// Server-side stage timings.
    pub timings: StageNanos,
}

/// One blocking connection to a `siro-serve` daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    op_timeout: Option<Duration>,
}

impl Client {
    /// Connects with the given I/O timeouts. A connect that exceeds
    /// `timeout` fails with [`ClientError::Timeout`].
    ///
    /// The per-operation response deadline starts *disabled* — a cold
    /// synthesis may legitimately take a long time — and is opted into
    /// with [`Client::set_op_timeout`] (the CLI wires `--timeout-ms` /
    /// `SIRO_CLIENT_TIMEOUT_MS` to it).
    ///
    /// # Errors
    ///
    /// Propagates resolution/connection failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Unexpected("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            op_timeout: None,
        })
    }

    /// Caps how long any single receive waits for a response; exceeding
    /// it yields [`ClientError::Timeout`]. `None` (the default) waits
    /// indefinitely.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        self.op_timeout = timeout;
    }

    fn send(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &request.encode(id))?;
        Ok(id)
    }

    fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let deadline = self.op_timeout.map(|t| Instant::now() + t);
        loop {
            match read_frame(&mut self.stream)? {
                FrameRead::Payload(p) => return Ok(Response::decode(&p)?),
                FrameRead::Idle => {
                    // Server still working. Idle reads wake at the socket
                    // read-timeout cadence, so the deadline is checked at
                    // that granularity.
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(ClientError::Timeout);
                    }
                    continue;
                }
                FrameRead::Eof => {
                    return Err(ClientError::Unexpected(
                        "connection closed mid-request".into(),
                    ))
                }
            }
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        let (got_id, response) = self.recv()?;
        if got_id != id && got_id != 0 {
            return Err(ClientError::Unexpected(format!(
                "response id {got_id}, expected {id}"
            )));
        }
        Ok(response)
    }

    /// Translates one module.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] carries the server's [`ErrorCode`]
    /// (including `Busy` under backpressure).
    pub fn translate(
        &mut self,
        source: impl Into<siro_ir::DialectVersion>,
        target: impl Into<siro_ir::DialectVersion>,
        mode: TranslateMode,
        text: impl Into<String>,
    ) -> Result<Translated, ClientError> {
        let response = self.roundtrip(&Request::Translate {
            source: source.into(),
            target: target.into(),
            mode,
            text: text.into(),
        })?;
        match response {
            Response::TranslateOk {
                cache_hit,
                timings,
                text,
            } => Ok(Translated {
                text,
                cache_hit,
                timings,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Throttled {
                retry_after_ms,
                message,
            } => Err(ClientError::Throttled {
                retry_after_ms,
                message,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Pipelines a whole batch of translate requests on this connection
    /// before reading any response; results come back in request order.
    ///
    /// # Errors
    ///
    /// Transport errors abort the batch; per-request server errors are
    /// returned in the corresponding slot.
    #[allow(clippy::type_complexity)]
    pub fn translate_batch(
        &mut self,
        requests: &[(IrVersion, IrVersion, TranslateMode, String)],
    ) -> Result<Vec<Result<Translated, (ErrorCode, String)>>, ClientError> {
        let mut ids = Vec::with_capacity(requests.len());
        for (source, target, mode, text) in requests {
            ids.push(self.send(&Request::Translate {
                source: (*source).into(),
                target: (*target).into(),
                mode: *mode,
                text: text.clone(),
            })?);
        }
        // Responses may finish out of order on the server; collect by id.
        let mut by_id = std::collections::HashMap::new();
        while by_id.len() < ids.len() {
            let (id, response) = self.recv()?;
            by_id.insert(id, response);
        }
        ids.into_iter()
            .map(|id| {
                let response = by_id.remove(&id).ok_or_else(|| {
                    ClientError::Unexpected(format!("no response for request {id}"))
                })?;
                Ok(match response {
                    Response::TranslateOk {
                        cache_hit,
                        timings,
                        text,
                    } => Ok(Translated {
                        text,
                        cache_hit,
                        timings,
                    }),
                    Response::Error { code, message } => Err((code, message)),
                    Response::Throttled {
                        retry_after_ms,
                        message,
                    } => Err((
                        ErrorCode::Throttled,
                        format!("retry after {retry_after_ms} ms: {message}"),
                    )),
                    other => {
                        return Err(ClientError::Unexpected(format!("{other:?}")));
                    }
                })
            })
            .collect()
    }

    /// Fetches the plaintext stats page.
    ///
    /// # Errors
    ///
    /// See [`Client::translate`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsOk { text } => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the Prometheus-style plaintext metrics page. Parse samples
    /// out of it with [`crate::stats::metrics_value`]:
    ///
    /// ```no_run
    /// use std::time::Duration;
    /// use siro_serve::{metrics_value, Client};
    ///
    /// let mut client = Client::connect("127.0.0.1:4799", Duration::from_secs(5))?;
    /// let page = client.metrics()?;
    /// let served = metrics_value(&page, "siro_requests_total").unwrap_or(0);
    /// println!("server has answered {served} requests");
    /// # Ok::<(), siro_serve::ClientError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`Client::translate`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsOk { text } => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends a ping, optionally asking the worker to stall `delay_ms`.
    ///
    /// # Errors
    ///
    /// See [`Client::translate`].
    pub fn ping(&mut self, delay_ms: u32) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping { delay_ms })? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Throttled {
                retry_after_ms,
                message,
            } => Err(ClientError::Throttled {
                retry_after_ms,
                message,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends a ping without waiting for the pong (used to fill the queue
    /// in backpressure tests). Returns the request id.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn ping_nowait(&mut self, delay_ms: u32) -> Result<u64, ClientError> {
        self.send(&Request::Ping { delay_ms })
    }

    /// Reads one pending response (for requests sent with
    /// [`Client::ping_nowait`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn recv_response(&mut self) -> Result<(u64, Response), ClientError> {
        self.recv()
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::translate`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
