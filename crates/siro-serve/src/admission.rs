//! Admission control: per-client fairness via token buckets.
//!
//! The bounded queue's blanket `Busy` protects the server but not the
//! *other clients* — one aggressive peer can keep the queue full and
//! starve everyone. Admission control runs before the queue: each peer
//! (keyed by IP address) gets a token bucket refilled at a configured
//! rate; a request that finds the peer's bucket empty is rejected with a
//! structured [`Throttled`](crate::protocol::Response::Throttled)
//! response carrying *retry-after* — the client knows exactly when the
//! bucket will hold a token again instead of blind exponential backoff.
//!
//! Disabled by default ([`AdmissionConfig::rate_per_sec`] = `None`):
//! existing deployments, tests, and benches see no behavior change until
//! they opt in with `--admission-rps`.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters. `Default` disables admission control.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionConfig {
    /// Sustained per-peer request rate (tokens per second); `None`
    /// disables admission control entirely.
    pub rate_per_sec: Option<f64>,
    /// Bucket capacity (burst size). `None` defaults to one second's
    /// worth of tokens, minimum 1.
    pub burst: Option<f64>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under budget — let it through.
    Admit,
    /// Over budget — reject, and tell the peer when to come back.
    Throttle {
        /// Milliseconds until the peer's bucket holds a whole token.
        retry_after_ms: u32,
    },
}

/// Per-peer token buckets plus the throttle counter.
#[derive(Debug)]
pub struct AdmissionControl {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
    throttled: AtomicU64,
}

impl AdmissionControl {
    /// Builds the control from a config; returns `None` when the config
    /// leaves admission disabled (no rate, or a non-positive one).
    pub fn from_config(config: AdmissionConfig) -> Option<AdmissionControl> {
        let rate = config.rate_per_sec.filter(|r| *r > 0.0)?;
        let burst = config.burst.filter(|b| *b > 0.0).unwrap_or(rate).max(1.0);
        Some(AdmissionControl {
            rate,
            burst,
            buckets: Mutex::new(HashMap::new()),
            throttled: AtomicU64::new(0),
        })
    }

    /// Charges one token to `peer`'s bucket at time `now`.
    ///
    /// Taking `now` as a parameter keeps the arithmetic deterministic in
    /// tests; the server passes `Instant::now()`.
    pub fn admit(&self, peer: IpAddr, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock().expect("admission buckets poisoned");
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Admission::Admit;
        }
        let deficit = 1.0 - bucket.tokens;
        let retry_after_ms = ((deficit / self.rate) * 1000.0).ceil().min(60_000.0) as u32;
        self.throttled.fetch_add(1, Ordering::Relaxed);
        siro_trace::counter("serve.throttled", 1);
        Admission::Throttle {
            retry_after_ms: retry_after_ms.max(1),
        }
    }

    /// Requests rejected so far (the `throttled` counter).
    pub fn throttled_total(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Sustained per-peer rate this control enforces.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn disabled_configs_build_nothing() {
        assert!(AdmissionControl::from_config(AdmissionConfig::default()).is_none());
        assert!(AdmissionControl::from_config(AdmissionConfig {
            rate_per_sec: Some(0.0),
            burst: None,
        })
        .is_none());
    }

    #[test]
    fn burst_admits_then_throttles_with_retry_after() {
        let ctl = AdmissionControl::from_config(AdmissionConfig {
            rate_per_sec: Some(10.0),
            burst: Some(3.0),
        })
        .expect("enabled");
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(ctl.admit(ip(1), t0), Admission::Admit);
        }
        let Admission::Throttle { retry_after_ms } = ctl.admit(ip(1), t0) else {
            panic!("4th request within the burst must throttle");
        };
        // Bucket is empty; one token refills in 1/10 s.
        assert!(
            (1..=100).contains(&retry_after_ms),
            "retry_after_ms = {retry_after_ms}"
        );
        assert_eq!(ctl.throttled_total(), 1);
    }

    #[test]
    fn tokens_refill_over_time() {
        let ctl = AdmissionControl::from_config(AdmissionConfig {
            rate_per_sec: Some(10.0),
            burst: Some(1.0),
        })
        .expect("enabled");
        let t0 = Instant::now();
        assert_eq!(ctl.admit(ip(1), t0), Admission::Admit);
        assert!(matches!(ctl.admit(ip(1), t0), Admission::Throttle { .. }));
        // 100 ms at 10 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(ctl.admit(ip(1), t1), Admission::Admit);
    }

    #[test]
    fn peers_have_independent_buckets() {
        let ctl = AdmissionControl::from_config(AdmissionConfig {
            rate_per_sec: Some(5.0),
            burst: Some(1.0),
        })
        .expect("enabled");
        let t0 = Instant::now();
        assert_eq!(ctl.admit(ip(1), t0), Admission::Admit);
        assert!(matches!(ctl.admit(ip(1), t0), Admission::Throttle { .. }));
        // A different peer is unaffected by peer 1's exhaustion.
        assert_eq!(ctl.admit(ip(2), t0), Admission::Admit);
        assert_eq!(ctl.throttled_total(), 1);
    }
}
