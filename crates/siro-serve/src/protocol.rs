//! The `siro-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +------------+---------------------------------------------+
//! | u32 length | payload (exactly `length` bytes)            |
//! +------------+---------------------------------------------+
//! ```
//!
//! All integers are big-endian. The payload starts with a fixed header:
//!
//! ```text
//! magic  b"SIRO"      4 bytes
//! proto  u8           protocol version, currently 1
//! kind   u8           message kind (see below)
//! id     u64          request id, echoed verbatim in the response
//! ```
//!
//! Requests and responses share the framing; responses set the high bit
//! of the request kind (`0x81` answers `0x01`, …) except for the generic
//! error response `0xEE`. Frames larger than [`MAX_FRAME`] are rejected
//! before allocation, so a malicious length prefix cannot OOM the server.
//!
//! | kind | direction | body |
//! |---|---|---|
//! | `0x01` Translate | → | src `u16.u16`, tgt `u16.u16`, mode `u8`, module text, optional dialect trailer |
//! | `0x02` Stats | → | empty |
//! | `0x03` Ping | → | `u32` artificial delay in ms (diagnostics / tests) |
//! | `0x04` Shutdown | → | empty |
//! | `0x05` Metrics | → | empty |
//! | `0x81` TranslateOk | ← | flags `u8`, 4 × `u64` stage nanos, module text |
//! | `0x82` StatsOk | ← | plaintext stats body |
//! | `0x83` Pong | ← | empty |
//! | `0x84` ShutdownOk | ← | empty |
//! | `0x85` MetricsOk | ← | Prometheus-style plaintext metrics body |
//! | `0xEE` Error | ← | code `u8`, message |
//! | `0xEF` Throttled | ← | `u32` retry-after ms, message |
//!
//! Strings are `u32` length + UTF-8 bytes. `mode` is `0` for the built-in
//! reference translator, `1` for a corpus-synthesized translator (served
//! through the process-wide `TranslatorCache`).
//!
//! ## Dialect trailer
//!
//! `Translate` endpoints are dialect-qualified [`DialectVersion`]s. A
//! request whose endpoints are both Siro encodes exactly as it always has
//! (the `u16.u16` pairs alone), so pre-dialect clients and servers
//! interoperate unchanged. When either endpoint is a WIR version, two
//! trailing bytes follow the module text — the source and target dialect
//! codes (`0` Siro, `1` WIR). Decoders read the trailer only when bytes
//! remain after the text; a pre-dialect server rejects the trailer as
//! trailing bytes, which is correct — it cannot serve the pair anyway.

use std::io::{self, Read, Write};

use siro_ir::{Dialect, DialectVersion, IrVersion};

/// Magic bytes opening every payload.
pub const MAGIC: [u8; 4] = *b"SIRO";
/// Wire protocol version.
pub const PROTO_VERSION: u8 = 1;
/// Upper bound on one frame's payload (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Whether to translate with the reference translator or a synthesized one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateMode {
    /// The hand-written [`siro_core::ReferenceTranslator`].
    Reference,
    /// A corpus-synthesized translator, memoized in the `TranslatorCache`.
    Synthesized,
}

impl TranslateMode {
    fn to_byte(self) -> u8 {
        match self {
            TranslateMode::Reference => 0,
            TranslateMode::Synthesized => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0 => Ok(TranslateMode::Reference),
            1 => Ok(TranslateMode::Synthesized),
            other => Err(ProtocolError::Malformed(format!(
                "unknown translate mode {other}"
            ))),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Translate a textual IR module from `source` to `target`.
    Translate {
        /// Dialect-qualified version the module text is written in
        /// (validated server-side against the module's own header).
        source: DialectVersion,
        /// Dialect-qualified version to translate to.
        target: DialectVersion,
        /// Reference or synthesized translator.
        mode: TranslateMode,
        /// The module in Siro's textual IR format.
        text: String,
    },
    /// Fetch the plaintext stats page.
    Stats,
    /// Liveness probe; `delay_ms` stalls the worker on purpose (used by
    /// the backpressure tests and latency calibration).
    Ping {
        /// Artificial in-worker delay.
        delay_ms: u32,
    },
    /// Ask the server to drain in-flight requests and exit.
    Shutdown,
    /// Fetch the Prometheus-style plaintext metrics page (serving
    /// counters, latency histogram, cache/coalesce totals, and every
    /// `siro-trace` counter).
    Metrics,
}

/// Structured error codes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The bounded request queue is full — retry later.
    Busy = 1,
    /// The request frame did not decode.
    Malformed = 2,
    /// The module text did not parse.
    Parse = 3,
    /// The module (input or output) failed verification.
    Verify = 4,
    /// The requested version pair is not serveable.
    Unsupported = 5,
    /// Translator synthesis failed for the requested pair.
    Synthesis = 6,
    /// The translation itself failed.
    Translate = 7,
    /// The server is draining for shutdown.
    ShuttingDown = 8,
    /// A worker panicked or another internal invariant broke.
    Internal = 9,
    /// Admission control rejected the request: this client exceeded its
    /// per-peer rate budget. Carried by [`Response::Throttled`], which
    /// also names how long to back off.
    Throttled = 10,
}

impl ErrorCode {
    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::Parse,
            4 => ErrorCode::Verify,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::Synthesis,
            7 => ErrorCode::Translate,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Internal,
            10 => ErrorCode::Throttled,
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown error code {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Parse => "parse",
            ErrorCode::Verify => "verify",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Synthesis => "synthesis",
            ErrorCode::Translate => "translate",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Throttled => "throttled",
        };
        f.write_str(s)
    }
}

/// Per-request stage timings reported back to the client, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Parsing + verifying the incoming text.
    pub parse: u64,
    /// Obtaining the translator (≈0 on a cache hit; the synthesis wall
    /// clock on a cold synthesized request; 0 in reference mode).
    pub synth: u64,
    /// Running the translation skeleton.
    pub translate: u64,
    /// End-to-end time inside the worker (parse → rendered response).
    pub total: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful translation.
    TranslateOk {
        /// Whether the translator came out of the `TranslatorCache`
        /// (always `false` in reference mode).
        cache_hit: bool,
        /// Per-stage worker timings.
        timings: StageNanos,
        /// The translated module, printed in the target dialect.
        text: String,
    },
    /// The plaintext stats page.
    StatsOk {
        /// `key value` lines, one metric per line.
        text: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Shutdown acknowledged; the server drains and exits afterwards.
    ShutdownOk,
    /// The Prometheus-style plaintext metrics page.
    MetricsOk {
        /// `# TYPE` comments and `name value` samples, one per line.
        text: String,
    },
    /// Any failure, including backpressure ([`ErrorCode::Busy`]).
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control rejected the request — a structured alternative
    /// to blanket `Busy`: the client knows exactly how long to back off
    /// before the per-peer token bucket refills.
    Throttled {
        /// Milliseconds until the peer's bucket has a token again.
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

/// Decode/IO failures while reading or writing frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket error.
    Io(io::Error),
    /// Structurally invalid payload.
    Malformed(String),
    /// Length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// ---- primitive encoders -------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn dialect_to_byte(d: Dialect) -> u8 {
    match d {
        Dialect::Siro => 0,
        Dialect::Wir => 1,
    }
}

fn dialect_from_byte(b: u8) -> Result<Dialect, ProtocolError> {
    match b {
        0 => Ok(Dialect::Siro),
        1 => Ok(Dialect::Wir),
        other => Err(ProtocolError::Malformed(format!("unknown dialect {other}"))),
    }
}

/// Cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtocolError::Malformed("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not UTF-8".into()))
    }

    fn version(&mut self) -> Result<IrVersion, ProtocolError> {
        Ok(IrVersion::new(self.u16()?, self.u16()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

const KIND_TRANSLATE: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_PING: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_METRICS: u8 = 0x05;
const KIND_TRANSLATE_OK: u8 = 0x81;
const KIND_STATS_OK: u8 = 0x82;
const KIND_PONG: u8 = 0x83;
const KIND_SHUTDOWN_OK: u8 = 0x84;
const KIND_METRICS_OK: u8 = 0x85;
const KIND_ERROR: u8 = 0xEE;
const KIND_THROTTLED: u8 = 0xEF;

fn header(kind: u8, id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(PROTO_VERSION);
    out.push(kind);
    put_u64(&mut out, id);
    out
}

fn parse_header(r: &mut Reader<'_>) -> Result<(u8, u64), ProtocolError> {
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(ProtocolError::Malformed("bad magic".into()));
    }
    let proto = r.u8()?;
    if proto != PROTO_VERSION {
        return Err(ProtocolError::Malformed(format!(
            "protocol version {proto} (this build speaks {PROTO_VERSION})"
        )));
    }
    let kind = r.u8()?;
    let id = r.u64()?;
    Ok((kind, id))
}

impl Request {
    /// Serializes the request (with its echo id) into a payload.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        match self {
            Request::Translate {
                source,
                target,
                mode,
                text,
            } => {
                let mut out = header(KIND_TRANSLATE, id);
                put_u16(&mut out, source.major);
                put_u16(&mut out, source.minor);
                put_u16(&mut out, target.major);
                put_u16(&mut out, target.minor);
                out.push(mode.to_byte());
                put_str(&mut out, text);
                // Pure-Siro requests stay byte-identical to the
                // pre-dialect encoding; anything else gets the trailer.
                if source.dialect != Dialect::Siro || target.dialect != Dialect::Siro {
                    out.push(dialect_to_byte(source.dialect));
                    out.push(dialect_to_byte(target.dialect));
                }
                out
            }
            Request::Stats => header(KIND_STATS, id),
            Request::Ping { delay_ms } => {
                let mut out = header(KIND_PING, id);
                put_u32(&mut out, *delay_ms);
                out
            }
            Request::Shutdown => header(KIND_SHUTDOWN, id),
            Request::Metrics => header(KIND_METRICS, id),
        }
    }

    /// Decodes a request payload, returning it with its id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on any structural problem.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
        let mut r = Reader::new(payload);
        let (kind, id) = parse_header(&mut r)?;
        let req = match kind {
            KIND_TRANSLATE => {
                let source = r.version()?;
                let target = r.version()?;
                let mode = TranslateMode::from_byte(r.u8()?)?;
                let text = r.string()?;
                // Optional dialect trailer; its absence means Siro/Siro
                // (the pre-dialect wire shape).
                let (src_d, tgt_d) = if r.remaining() > 0 {
                    (dialect_from_byte(r.u8()?)?, dialect_from_byte(r.u8()?)?)
                } else {
                    (Dialect::Siro, Dialect::Siro)
                };
                Request::Translate {
                    source: DialectVersion {
                        dialect: src_d,
                        major: source.major(),
                        minor: source.minor(),
                    },
                    target: DialectVersion {
                        dialect: tgt_d,
                        major: target.major(),
                        minor: target.minor(),
                    },
                    mode,
                    text,
                }
            }
            KIND_STATS => Request::Stats,
            KIND_PING => Request::Ping { delay_ms: r.u32()? },
            KIND_SHUTDOWN => Request::Shutdown,
            KIND_METRICS => Request::Metrics,
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown request kind {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok((id, req))
    }
}

impl Response {
    /// Serializes the response (echoing `id`) into a payload.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        match self {
            Response::TranslateOk {
                cache_hit,
                timings,
                text,
            } => {
                let mut out = header(KIND_TRANSLATE_OK, id);
                out.push(u8::from(*cache_hit));
                put_u64(&mut out, timings.parse);
                put_u64(&mut out, timings.synth);
                put_u64(&mut out, timings.translate);
                put_u64(&mut out, timings.total);
                put_str(&mut out, text);
                out
            }
            Response::StatsOk { text } => {
                let mut out = header(KIND_STATS_OK, id);
                put_str(&mut out, text);
                out
            }
            Response::Pong => header(KIND_PONG, id),
            Response::ShutdownOk => header(KIND_SHUTDOWN_OK, id),
            Response::MetricsOk { text } => {
                let mut out = header(KIND_METRICS_OK, id);
                put_str(&mut out, text);
                out
            }
            Response::Error { code, message } => {
                let mut out = header(KIND_ERROR, id);
                out.push(*code as u8);
                put_str(&mut out, message);
                out
            }
            Response::Throttled {
                retry_after_ms,
                message,
            } => {
                let mut out = header(KIND_THROTTLED, id);
                put_u32(&mut out, *retry_after_ms);
                put_str(&mut out, message);
                out
            }
        }
    }

    /// Decodes a response payload, returning it with its echoed id.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on any structural problem.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
        let mut r = Reader::new(payload);
        let (kind, id) = parse_header(&mut r)?;
        let resp = match kind {
            KIND_TRANSLATE_OK => {
                let cache_hit = r.u8()? != 0;
                let timings = StageNanos {
                    parse: r.u64()?,
                    synth: r.u64()?,
                    translate: r.u64()?,
                    total: r.u64()?,
                };
                let text = r.string()?;
                Response::TranslateOk {
                    cache_hit,
                    timings,
                    text,
                }
            }
            KIND_STATS_OK => Response::StatsOk { text: r.string()? },
            KIND_PONG => Response::Pong,
            KIND_SHUTDOWN_OK => Response::ShutdownOk,
            KIND_METRICS_OK => Response::MetricsOk { text: r.string()? },
            KIND_ERROR => Response::Error {
                code: ErrorCode::from_byte(r.u8()?)?,
                message: r.string()?,
            },
            KIND_THROTTLED => Response::Throttled {
                retry_after_ms: r.u32()?,
                message: r.string()?,
            },
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown response kind {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok((id, resp))
    }
}

// ---- framing ------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] when the payload exceeds [`MAX_FRAME`],
/// otherwise the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Outcome of [`read_frame`].
pub enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly (EOF before any byte).
    Eof,
    /// The read timed out before *any* byte of the next frame arrived —
    /// the connection is merely idle, not broken.
    Idle,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one length-prefixed frame.
///
/// A timeout before the first byte of the length prefix maps to
/// [`FrameRead::Idle`]; a timeout (or EOF) in the middle of a frame is a
/// hard error, because the stream is no longer in sync.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for an oversized length prefix,
/// [`ProtocolError::Io`] for mid-frame failures.
pub fn read_frame(r: &mut impl Read) -> Result<FrameRead, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) && got == 0 => return Ok(FrameRead::Idle),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(FrameRead::Payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Translate {
                source: IrVersion::V13_0.into(),
                target: IrVersion::V3_6.into(),
                mode: TranslateMode::Synthesized,
                text: "define i32 @main() {\n}\n".into(),
            },
            Request::Translate {
                source: DialectVersion::wir(1, 0),
                target: DialectVersion::wir(2, 0),
                mode: TranslateMode::Synthesized,
                text: ";; wir 1.0\n".into(),
            },
            Request::Translate {
                source: IrVersion::V13_0.into(),
                target: DialectVersion::wir(2, 0),
                mode: TranslateMode::Synthesized,
                text: "; IR version 13.0\n".into(),
            },
            Request::Stats,
            Request::Ping { delay_ms: 250 },
            Request::Shutdown,
            Request::Metrics,
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let id = 1000 + i as u64;
            let (got_id, got) = Request::decode(&req.encode(id)).expect("decode");
            assert_eq!(got_id, id);
            assert_eq!(got, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::TranslateOk {
                cache_hit: true,
                timings: StageNanos {
                    parse: 1,
                    synth: 2,
                    translate: 3,
                    total: 7,
                },
                text: "; IR version 3.6\n".into(),
            },
            Response::StatsOk {
                text: "requests_total 5\n".into(),
            },
            Response::Pong,
            Response::ShutdownOk,
            Response::MetricsOk {
                text: "# TYPE siro_requests_total counter\nsiro_requests_total 5\n".into(),
            },
            Response::Error {
                code: ErrorCode::Busy,
                message: "queue full".into(),
            },
            Response::Throttled {
                retry_after_ms: 250,
                message: "per-client rate exceeded".into(),
            },
        ];
        for (i, resp) in cases.into_iter().enumerate() {
            let id = 42 + i as u64;
            let (got_id, got) = Response::decode(&resp.encode(id)).expect("decode");
            assert_eq!(got_id, id);
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn siro_translate_frames_keep_the_pre_dialect_byte_shape() {
        // A Siro↔Siro request must encode with no dialect trailer: the
        // exact bytes a pre-dialect client would have produced. A frame
        // truncated to that legacy shape must also decode back to Siro
        // endpoints.
        let req = Request::Translate {
            source: IrVersion::V13_0.into(),
            target: IrVersion::V3_6.into(),
            mode: TranslateMode::Reference,
            text: "x".into(),
        };
        let payload = req.encode(5);
        // header(14) + 2×(u16,u16)(8) + mode(1) + len(4) + text(1)
        assert_eq!(payload.len(), 14 + 8 + 1 + 4 + 1, "unexpected trailer");
        let (_, got) = Request::decode(&payload).expect("legacy decode");
        assert_eq!(got, req);

        // Cross-dialect requests do carry the two-byte trailer.
        let cross = Request::Translate {
            source: DialectVersion::wir(1, 0),
            target: IrVersion::V13_0.into(),
            mode: TranslateMode::Synthesized,
            text: "x".into(),
        };
        let cross_payload = cross.encode(6);
        assert_eq!(cross_payload.len(), payload.len() + 2);
        assert_eq!(&cross_payload[cross_payload.len() - 2..], &[1, 0]);
    }

    #[test]
    fn bad_magic_and_trailing_bytes_are_rejected() {
        let mut payload = Request::Stats.encode(1);
        payload[0] = b'X';
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::Malformed(_))
        ));
        let mut ok = Request::Stats.encode(1);
        ok.push(0);
        assert!(matches!(
            Request::decode(&ok),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0, 0];
        assert!(matches!(
            read_frame(&mut buf),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = Request::Ping { delay_ms: 9 }.encode(77);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let mut cursor: &[u8] = &wire;
        match read_frame(&mut cursor).expect("read") {
            FrameRead::Payload(p) => assert_eq!(p, payload),
            _ => panic!("expected payload"),
        }
        match read_frame(&mut cursor).expect("read eof") {
            FrameRead::Eof => {}
            _ => panic!("expected eof"),
        }
    }
}
