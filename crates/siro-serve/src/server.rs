//! The TCP server: engine dispatch, accept paths, graceful shutdown.
//!
//! Two serving engines share one protocol, worker pool, queue, and
//! metrics surface — [`ServeConfig::engine`] picks at startup:
//!
//! * [`EngineMode::Event`] (default) — the nonblocking reactor
//!   ([`crate::reactor`]): one thread owns every socket via a
//!   level-triggered poller, CPU-bound work runs on the worker pool, and
//!   open connections are decoupled from thread count.
//! * [`EngineMode::Threaded`] — the original thread-per-connection
//!   model: one **acceptor** thread, one **reader** + one **writer**
//!   thread per connection, the same fixed worker pool. Kept as the
//!   baseline the loadtest bench compares against.
//!
//! Both accept loops *back off* on failure (EMFILE/ENFILE and other
//! transient errors) instead of hot-spinning, counting each failure in
//! `accept_errors` / the `serve.accept_errors` trace counter.
//!
//! Shutdown (via [`ServerHandle::request_shutdown`] or a wire `Shutdown`
//! frame) stops accepting, closes the queue for new work, lets workers
//! drain what is already queued, writes every pending response, and joins
//! every thread before [`ServerHandle::wait`] returns — in-flight
//! requests are answered, new ones get `ShuttingDown`.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use siro_synth::{
    corpus_fingerprint, oracle_corpus, set_active_store, StoreConfig, StoreKey, SynthesisConfig,
    TranslatorCache, TranslatorStore, ValidationMode,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionControl};
use crate::engine::Engine;
use crate::pool::{Job, Reply, WorkerPool};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, ProtocolError, Request, Response,
};
use crate::queue::{BoundedQueue, PushError};
use crate::reactor::{Completions, Reactor, ReactorStats};
use crate::stats::{render_metrics, render_stats, Metrics, ServeGauges};

/// Which serving engine runs the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Nonblocking event loop (reactor + worker pool) — the default.
    #[default]
    Event,
    /// Thread-per-connection (reader/writer threads + worker pool) — the
    /// pre-reactor baseline, kept for comparison benches.
    Threaded,
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(EngineMode::Event),
            "threaded" => Ok(EngineMode::Threaded),
            other => Err(format!("unknown engine `{other}` (event|threaded)")),
        }
    }
}

/// Server configuration. `Default` is suitable for tests and local use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4799`; port `0` picks a free one.
    pub addr: String,
    /// Worker threads; `None` defers to `SIRO_THREADS` /
    /// `available_parallelism` via [`siro_synth::resolve_threads`].
    pub threads: Option<usize>,
    /// Bounded queue capacity; pushes beyond it answer `Busy`.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout (threaded engine). Readers wake
    /// at this cadence to notice shutdown, and a peer stalling *mid-frame*
    /// longer than this is disconnected.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (threaded engine); a peer not
    /// draining its responses for longer than this is disconnected.
    pub write_timeout: Duration,
    /// Persistent translator store directory. When set, the store is
    /// attached process-wide, every entry is prefetched into the
    /// [`TranslatorCache`] before the listener accepts traffic
    /// (warm start), and cold syntheses write back.
    pub store_dir: Option<PathBuf>,
    /// Validation applied when loading store entries.
    pub store_validation: ValidationMode,
    /// Size cap for the store; write-backs GC least-recently-used entries
    /// down to it. `None` leaves the store unbounded.
    pub store_max_bytes: Option<u64>,
    /// Which serving engine to run.
    pub engine: EngineMode,
    /// Per-peer admission control; disabled by default.
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: None,
            queue_capacity: 64,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            store_dir: None,
            store_validation: ValidationMode::default(),
            store_max_bytes: None,
            engine: EngineMode::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

pub(crate) struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    workers: usize,
    admission: Option<AdmissionControl>,
    reactor_stats: Arc<ReactorStats>,
    /// Present under the event engine: wakes the reactor on shutdown.
    completions: Option<Arc<Completions>>,
    shutting_down: AtomicBool,
    shutdown_cv: (Mutex<bool>, Condvar),
}

impl Shared {
    pub(crate) fn signal_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        match self.config.engine {
            EngineMode::Event => {
                if let Some(completions) = &self.completions {
                    completions.wake();
                }
            }
            EngineMode::Threaded => {
                // Unblock the acceptor with a throwaway connection; it
                // re-checks the flag after every accept.
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
            }
        }
        let (lock, cv) = &self.shutdown_cv;
        *lock.lock().expect("shutdown cv poisoned") = true;
        cv.notify_all();
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    pub(crate) fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    pub(crate) fn queue(&self) -> &Arc<BoundedQueue<Job>> {
        &self.queue
    }

    pub(crate) fn admission(&self) -> Option<&AdmissionControl> {
        self.admission.as_ref()
    }

    pub(crate) fn reactor_stats(&self) -> &Arc<ReactorStats> {
        &self.reactor_stats
    }

    fn gauges(&self) -> ServeGauges {
        let totals = self.engine.coalescer().totals();
        let r = &self.reactor_stats;
        ServeGauges {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            pairs_synthesized: totals.syntheses,
            coalesced_waiters: totals.coalesced,
            reactor_loops: r.loop_iterations.load(Ordering::Relaxed),
            registered_fds: r.registered_fds.load(Ordering::Relaxed),
            write_queue_hwm_bytes: r.write_queue_hwm_bytes.load(Ordering::Relaxed),
            open_connections: r.open_connections.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn stats_page(&self) -> String {
        render_stats(&self.metrics, &self.gauges())
    }

    pub(crate) fn metrics_page(&self) -> String {
        render_metrics(&self.metrics, &self.gauges())
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] (or send a wire `Shutdown` frame and then
/// [`ServerHandle::wait`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactor: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    connections: Option<Arc<Mutex<Vec<JoinHandle<()>>>>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Worker threads serving requests.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Capacity of the bounded request queue.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Which engine this server runs.
    pub fn engine_mode(&self) -> EngineMode {
        self.shared.config.engine
    }

    /// The live metrics (shared with the workers).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The engine, exposing the per-pair coalescing counters.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Reactor-side counters (all zero under the threaded engine).
    pub fn reactor_stats(&self) -> &Arc<ReactorStats> {
        &self.shared.reactor_stats
    }

    /// The plaintext stats page, rendered in-process (same code path as
    /// the wire `STATS` endpoint).
    pub fn stats_page(&self) -> String {
        self.shared.stats_page()
    }

    /// The Prometheus-style metrics page, rendered in-process (same code
    /// path as the wire `METRICS` endpoint).
    pub fn metrics_page(&self) -> String {
        self.shared.metrics_page()
    }

    /// Signals shutdown without waiting (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.signal_shutdown();
    }

    /// Blocks until shutdown is signalled — by [`Self::request_shutdown`]
    /// or a wire `Shutdown` frame — then drains in-flight work and joins
    /// every thread.
    pub fn wait(mut self) {
        {
            let (lock, cv) = &self.shared.shutdown_cv;
            let mut signalled = lock.lock().expect("shutdown cv poisoned");
            while !*signalled {
                signalled = cv.wait(signalled).expect("shutdown cv poisoned");
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Event engine: the reactor closes the queue itself, waits for
        // in-flight work, writes every pending response, then exits.
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // Threaded engine (and belt-and-braces for event): no new
        // connections now; close the queue so workers exit once the
        // backlog is drained (close still drains queued jobs).
        self.shared.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        if let Some(connections) = self.connections.take() {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *connections.lock().expect("connection list poisoned"));
            for h in handles {
                let _ = h.join();
            }
        }
    }

    /// [`Self::request_shutdown`] + [`Self::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// Binds the listener, spawns the configured engine, and returns.
/// When [`ServeConfig::store_dir`] is set, the persistent store is
/// attached and warm-started *before* traffic is accepted, so the first
/// request already finds every stored pair in the cache.
///
/// # Errors
///
/// Propagates binding and store-opening failures.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config
        .threads
        .filter(|&n| n > 0)
        .unwrap_or_else(siro_synth::resolve_threads);
    let metrics = Arc::new(Metrics::default());
    let engine = Arc::new(Engine::new(Arc::clone(&metrics)));
    if let Some(dir) = &config.store_dir {
        let store = TranslatorStore::open(StoreConfig {
            dir: dir.clone(),
            validation: config.store_validation,
            max_bytes: config.store_max_bytes,
        })?;
        set_active_store(Some(Arc::new(store)));
        warm_start(&engine);
    }
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
    let admission = AdmissionControl::from_config(config.admission);
    let mode = config.engine;
    let completions = match mode {
        EngineMode::Event => Some(Completions::new()?),
        EngineMode::Threaded => None,
    };
    let shared = Arc::new(Shared {
        config,
        addr,
        queue: Arc::clone(&queue),
        engine: Arc::clone(&engine),
        metrics: Arc::clone(&metrics),
        workers,
        admission,
        reactor_stats: Arc::new(ReactorStats::default()),
        completions: completions.as_ref().map(|(c, _)| Arc::clone(c)),
        shutting_down: AtomicBool::new(false),
        shutdown_cv: (Mutex::new(false), Condvar::new()),
    });
    let pool = WorkerPool::spawn(workers, queue, engine, metrics);

    match mode {
        EngineMode::Event => {
            let (completions, wake_rx) = completions.expect("completions built for event mode");
            let reactor = Reactor::new(listener, Arc::clone(&shared), completions, wake_rx)?;
            let reactor = std::thread::Builder::new()
                .name("siro-serve-reactor".into())
                .spawn(move || reactor.run())
                .expect("spawning reactor thread");
            Ok(ServerHandle {
                shared,
                acceptor: None,
                reactor: Some(reactor),
                pool: Some(pool),
                connections: None,
            })
        }
        EngineMode::Threaded => {
            let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
            let acceptor = {
                let shared = Arc::clone(&shared);
                let connections = Arc::clone(&connections);
                std::thread::Builder::new()
                    .name("siro-serve-acceptor".into())
                    .spawn(move || accept_loop(&listener, &shared, &connections))
                    .expect("spawning acceptor thread")
            };
            Ok(ServerHandle {
                shared,
                acceptor: Some(acceptor),
                reactor: None,
                pool: Some(pool),
                connections: Some(connections),
            })
        }
    }
}

/// Warm-starts the translator cache from the active persistent store.
///
/// For every readable entry, the outcome is loaded and seeded into the
/// in-process [`TranslatorCache`] via
/// [`TranslatorCache::warm_from_store`]. Entries whose key matches the
/// default serving configuration are additionally primed through the
/// coalescer so the pair's serving corpus is built up front; that call is
/// a guaranteed cache hit, so warm start never synthesizes. Unreadable or
/// corrupt entries are skipped (counted by the store as corrupt) and the
/// pair falls back to cold synthesis on first request.
///
/// Returns the number of entries successfully seeded.
fn warm_start(engine: &Arc<Engine>) -> u64 {
    let Some(store) = siro_synth::active_store() else {
        return 0;
    };
    let mut loaded = 0u64;
    for entry in store.entries().unwrap_or_default() {
        let Some(key) = entry.key else { continue };
        let tests = oracle_corpus(key.source, key.target);
        let config = key.config();
        if !TranslatorCache::warm_from_store(&config, &tests) {
            continue;
        }
        loaded += 1;
        let default_key = StoreKey::new(
            &SynthesisConfig::new(key.source, key.target),
            corpus_fingerprint(&tests),
        );
        if key == default_key {
            // Pre-build the serving corpus for the pair; the cache slot is
            // already populated, so this cannot trigger synthesis.
            let _ = engine.coalescer().translator_for(key.source, key.target);
        }
    }
    siro_trace::counter("serve.warm_loaded", loaded);
    loaded
}

/// First backoff after an accept failure; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`].
const ACCEPT_BACKOFF_INITIAL: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut backoff = ACCEPT_BACKOFF_INITIAL;
    loop {
        let stream = listener.accept();
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok((stream, _peer)) => {
                backoff = ACCEPT_BACKOFF_INITIAL;
                stream
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_e) => {
                // EMFILE/ENFILE (the process is out of fds) or another
                // transient failure: sleep instead of hot-spinning —
                // retrying instantly cannot succeed and starves the
                // threads that could release descriptors.
                shared.metrics.on_accept_error();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("siro-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            })
            .expect("spawning connection thread");
        connections
            .lock()
            .expect("connection list poisoned")
            .push(handle);
    }
}

/// Reader half of one connection. Spawns the writer, decodes frames,
/// enqueues work, answers control requests inline.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> Result<(), ProtocolError> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    stream.set_nodelay(true)?;
    let peer = stream.peer_addr()?.ip();
    let mut reader = stream.try_clone()?;

    // All responses — worker results and inline control answers — funnel
    // through one channel into the writer thread, which owns the write
    // half. The writer exits when every sender (reader + queued jobs) is
    // gone.
    let (tx, rx) = mpsc::channel::<(u64, Response)>();
    let writer = std::thread::Builder::new()
        .name("siro-serve-conn-writer".into())
        .spawn(move || {
            let mut stream = stream;
            for (id, response) in rx {
                if write_frame(&mut stream, &response.encode(id)).is_err() {
                    // Peer gone or write timeout: stop writing; remaining
                    // responses drain into the disconnected channel.
                    break;
                }
            }
            let _ = stream.flush();
        })
        .expect("spawning connection writer");

    let result = reader_loop(&mut reader, peer, shared, &tx);
    drop(tx);
    let _ = writer.join();
    result
}

fn reader_loop(
    reader: &mut TcpStream,
    peer: std::net::IpAddr,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<(u64, Response)>,
) -> Result<(), ProtocolError> {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame(reader) {
            Ok(FrameRead::Payload(p)) => p,
            Ok(FrameRead::Eof) => return Ok(()),
            Ok(FrameRead::Idle) => continue, // timeout between frames: poll shutdown
            Err(e) => {
                // Tell the peer what went wrong if the socket still works,
                // then drop the connection: after a framing error the
                // stream can no longer be trusted to be in sync.
                let msg = e.to_string();
                let _ = tx.send((
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: msg,
                    },
                ));
                return Err(e);
            }
        };
        shared.metrics.on_request();
        let (id, request) = match Request::decode(&payload) {
            Ok(ok) => ok,
            Err(e) => {
                shared.metrics.on_error();
                let _ = tx.send((
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                ));
                // Decoding failed on a *complete* frame — framing is still
                // intact, so keep the connection.
                continue;
            }
        };
        match request {
            // Control plane: answered inline so they work (and stay fast)
            // even when every worker is busy or the queue is full.
            Request::Stats => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    id,
                    Response::StatsOk {
                        text: shared.stats_page(),
                    },
                ));
            }
            Request::Metrics => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    id,
                    Response::MetricsOk {
                        text: shared.metrics_page(),
                    },
                ));
            }
            Request::Shutdown => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((id, Response::ShutdownOk));
                shared.signal_shutdown();
                return Ok(());
            }
            // Data plane: admission control, then the bounded queue.
            request @ (Request::Translate { .. } | Request::Ping { .. }) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    shared.metrics.on_error();
                    let _ = tx.send((
                        id,
                        Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    ));
                    return Ok(());
                }
                if let Some(admission) = shared.admission() {
                    if let Admission::Throttle { retry_after_ms } =
                        admission.admit(peer, Instant::now())
                    {
                        shared.metrics.on_throttled();
                        let _ = tx.send((
                            id,
                            Response::Throttled {
                                retry_after_ms,
                                message: format!(
                                    "per-client budget of {} req/s exceeded",
                                    admission.rate_per_sec()
                                ),
                            },
                        ));
                        continue;
                    }
                }
                let job = Job {
                    id,
                    request,
                    reply: Reply::channel(tx.clone()),
                    enqueued: Instant::now(),
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        shared.metrics.on_busy();
                        let _ = tx.send((
                            job.id,
                            Response::Error {
                                code: ErrorCode::Busy,
                                message: format!(
                                    "queue full ({} pending)",
                                    shared.queue.capacity()
                                ),
                            },
                        ));
                    }
                    Err(PushError::Closed(job)) => {
                        shared.metrics.on_error();
                        let _ = tx.send((
                            job.id,
                            Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is draining".into(),
                            },
                        ));
                    }
                }
            }
        }
    }
}
