//! The TCP server: accept loop, connection threads, graceful shutdown.
//!
//! Thread model:
//!
//! * one **acceptor** thread owns the `TcpListener`;
//! * one **reader** + one **writer** thread per connection — readers
//!   decode frames and enqueue [`Job`]s (or answer `Busy` when the
//!   bounded queue rejects), writers serialize responses back onto the
//!   socket, so a connection can keep many requests in flight (pipelined
//!   batching) and responses return as soon as a worker finishes them;
//! * a fixed pool of **worker** threads (see [`crate::pool`]) executes
//!   the CPU-bound translation work.
//!
//! Shutdown (via [`ServerHandle::request_shutdown`] or a wire `Shutdown`
//! frame) stops the acceptor, closes the queue for new work, lets workers
//! drain what is already queued, and joins every thread before
//! [`ServerHandle::wait`] returns — in-flight requests are answered, new
//! ones get `ShuttingDown`.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use siro_synth::{
    corpus_fingerprint, oracle_corpus, set_active_store, StoreConfig, StoreKey, SynthesisConfig,
    TranslatorCache, TranslatorStore, ValidationMode,
};

use crate::engine::Engine;
use crate::pool::{Job, WorkerPool};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, ProtocolError, Request, Response,
};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{render_metrics, render_stats, Metrics};

/// Server configuration. `Default` is suitable for tests and local use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4799`; port `0` picks a free one.
    pub addr: String,
    /// Worker threads; `None` defers to `SIRO_THREADS` /
    /// `available_parallelism` via [`siro_synth::resolve_threads`].
    pub threads: Option<usize>,
    /// Bounded queue capacity; pushes beyond it answer `Busy`.
    pub queue_capacity: usize,
    /// Per-connection socket read timeout. Readers wake at this cadence
    /// to notice shutdown, and a peer stalling *mid-frame* longer than
    /// this is disconnected.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout; a peer not draining its
    /// responses for longer than this is disconnected.
    pub write_timeout: Duration,
    /// Persistent translator store directory. When set, the store is
    /// attached process-wide, every entry is prefetched into the
    /// [`TranslatorCache`] before the listener accepts traffic
    /// (warm start), and cold syntheses write back.
    pub store_dir: Option<PathBuf>,
    /// Validation applied when loading store entries.
    pub store_validation: ValidationMode,
    /// Size cap for the store; write-backs GC least-recently-used entries
    /// down to it. `None` leaves the store unbounded.
    pub store_max_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: None,
            queue_capacity: 64,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            store_dir: None,
            store_validation: ValidationMode::default(),
            store_max_bytes: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    queue: Arc<BoundedQueue<Job>>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    workers: usize,
    shutting_down: AtomicBool,
    shutdown_cv: (Mutex<bool>, Condvar),
}

impl Shared {
    fn signal_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection; it re-checks
        // the flag after every accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        let (lock, cv) = &self.shutdown_cv;
        *lock.lock().expect("shutdown cv poisoned") = true;
        cv.notify_all();
    }

    fn stats_page(&self) -> String {
        let totals = self.engine.coalescer().totals();
        render_stats(
            &self.metrics,
            self.queue.len(),
            self.queue.capacity(),
            self.workers,
            totals.syntheses,
            totals.coalesced,
        )
    }

    fn metrics_page(&self) -> String {
        let totals = self.engine.coalescer().totals();
        render_metrics(
            &self.metrics,
            self.queue.len(),
            self.queue.capacity(),
            self.workers,
            totals.syntheses,
            totals.coalesced,
        )
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] (or send a wire `Shutdown` frame and then
/// [`ServerHandle::wait`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Worker threads serving requests.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Capacity of the bounded request queue.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// The live metrics (shared with the workers).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The engine, exposing the per-pair coalescing counters.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The plaintext stats page, rendered in-process (same code path as
    /// the wire `STATS` endpoint).
    pub fn stats_page(&self) -> String {
        self.shared.stats_page()
    }

    /// The Prometheus-style metrics page, rendered in-process (same code
    /// path as the wire `METRICS` endpoint).
    pub fn metrics_page(&self) -> String {
        self.shared.metrics_page()
    }

    /// Signals shutdown without waiting (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.signal_shutdown();
    }

    /// Blocks until shutdown is signalled — by [`Self::request_shutdown`]
    /// or a wire `Shutdown` frame — then drains in-flight work and joins
    /// every thread.
    pub fn wait(mut self) {
        {
            let (lock, cv) = &self.shared.shutdown_cv;
            let mut signalled = lock.lock().expect("shutdown cv poisoned");
            while !*signalled {
                signalled = cv.wait(signalled).expect("shutdown cv poisoned");
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No new connections now. Readers notice the flag within one read
        // timeout and stop enqueuing; close the queue so workers exit once
        // the backlog is drained (close still drains queued jobs).
        self.shared.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// [`Self::request_shutdown`] + [`Self::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// Binds the listener, spawns the pool and the acceptor, and returns.
/// When [`ServeConfig::store_dir`] is set, the persistent store is
/// attached and warm-started *before* the acceptor spawns, so the first
/// accepted request already finds every stored pair in the cache.
///
/// # Errors
///
/// Propagates binding and store-opening failures.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config
        .threads
        .filter(|&n| n > 0)
        .unwrap_or_else(siro_synth::resolve_threads);
    let metrics = Arc::new(Metrics::default());
    let engine = Arc::new(Engine::new(Arc::clone(&metrics)));
    if let Some(dir) = &config.store_dir {
        let store = TranslatorStore::open(StoreConfig {
            dir: dir.clone(),
            validation: config.store_validation,
            max_bytes: config.store_max_bytes,
        })?;
        set_active_store(Some(Arc::new(store)));
        warm_start(&engine);
    }
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
    let shared = Arc::new(Shared {
        config,
        addr,
        queue: Arc::clone(&queue),
        engine: Arc::clone(&engine),
        metrics: Arc::clone(&metrics),
        workers,
        shutting_down: AtomicBool::new(false),
        shutdown_cv: (Mutex::new(false), Condvar::new()),
    });
    let pool = WorkerPool::spawn(workers, queue, engine, metrics);
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let shared = Arc::clone(&shared);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("siro-serve-acceptor".into())
            .spawn(move || accept_loop(&listener, &shared, &connections))
            .expect("spawning acceptor thread")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        pool: Some(pool),
        connections,
    })
}

/// Warm-starts the translator cache from the active persistent store.
///
/// For every readable entry, the outcome is loaded and seeded into the
/// in-process [`TranslatorCache`] via
/// [`TranslatorCache::warm_from_store`]. Entries whose key matches the
/// default serving configuration are additionally primed through the
/// coalescer so the pair's serving corpus is built up front; that call is
/// a guaranteed cache hit, so warm start never synthesizes. Unreadable or
/// corrupt entries are skipped (counted by the store as corrupt) and the
/// pair falls back to cold synthesis on first request.
///
/// Returns the number of entries successfully seeded.
fn warm_start(engine: &Arc<Engine>) -> u64 {
    let Some(store) = siro_synth::active_store() else {
        return 0;
    };
    let mut loaded = 0u64;
    for entry in store.entries().unwrap_or_default() {
        let Some(key) = entry.key else { continue };
        let tests = oracle_corpus(key.source, key.target);
        let config = key.config();
        if !TranslatorCache::warm_from_store(&config, &tests) {
            continue;
        }
        loaded += 1;
        let default_key = StoreKey::new(
            &SynthesisConfig::new(key.source, key.target),
            corpus_fingerprint(&tests),
        );
        if key == default_key {
            // Pre-build the serving corpus for the pair; the cache slot is
            // already populated, so this cannot trigger synthesis.
            let _ = engine.coalescer().translator_for(key.source, key.target);
        }
    }
    siro_trace::counter("serve.warm_loaded", loaded);
    loaded
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("siro-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            })
            .expect("spawning connection thread");
        connections
            .lock()
            .expect("connection list poisoned")
            .push(handle);
    }
}

/// Reader half of one connection. Spawns the writer, decodes frames,
/// enqueues work, answers control requests inline.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> Result<(), ProtocolError> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;

    // All responses — worker results and inline control answers — funnel
    // through one channel into the writer thread, which owns the write
    // half. The writer exits when every sender (reader + queued jobs) is
    // gone.
    let (tx, rx) = mpsc::channel::<(u64, Response)>();
    let writer = std::thread::Builder::new()
        .name("siro-serve-conn-writer".into())
        .spawn(move || {
            let mut stream = stream;
            for (id, response) in rx {
                if write_frame(&mut stream, &response.encode(id)).is_err() {
                    // Peer gone or write timeout: stop writing; remaining
                    // responses drain into the disconnected channel.
                    break;
                }
            }
            let _ = stream.flush();
        })
        .expect("spawning connection writer");

    let result = reader_loop(&mut reader, shared, &tx);
    drop(tx);
    let _ = writer.join();
    result
}

fn reader_loop(
    reader: &mut TcpStream,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<(u64, Response)>,
) -> Result<(), ProtocolError> {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame(reader) {
            Ok(FrameRead::Payload(p)) => p,
            Ok(FrameRead::Eof) => return Ok(()),
            Ok(FrameRead::Idle) => continue, // timeout between frames: poll shutdown
            Err(e) => {
                // Tell the peer what went wrong if the socket still works,
                // then drop the connection: after a framing error the
                // stream can no longer be trusted to be in sync.
                let msg = e.to_string();
                let _ = tx.send((
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: msg,
                    },
                ));
                return Err(e);
            }
        };
        shared.metrics.on_request();
        let (id, request) = match Request::decode(&payload) {
            Ok(ok) => ok,
            Err(e) => {
                shared.metrics.on_error();
                let _ = tx.send((
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                ));
                // Decoding failed on a *complete* frame — framing is still
                // intact, so keep the connection.
                continue;
            }
        };
        match request {
            // Control plane: answered inline so they work (and stay fast)
            // even when every worker is busy or the queue is full.
            Request::Stats => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    id,
                    Response::StatsOk {
                        text: shared.stats_page(),
                    },
                ));
            }
            Request::Metrics => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((
                    id,
                    Response::MetricsOk {
                        text: shared.metrics_page(),
                    },
                ));
            }
            Request::Shutdown => {
                shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send((id, Response::ShutdownOk));
                shared.signal_shutdown();
                return Ok(());
            }
            // Data plane: through the bounded queue.
            request @ (Request::Translate { .. } | Request::Ping { .. }) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    shared.metrics.on_error();
                    let _ = tx.send((
                        id,
                        Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    ));
                    return Ok(());
                }
                let job = Job {
                    id,
                    request,
                    reply: tx.clone(),
                    enqueued: Instant::now(),
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        shared.metrics.on_busy();
                        let _ = tx.send((
                            job.id,
                            Response::Error {
                                code: ErrorCode::Busy,
                                message: format!(
                                    "queue full ({} pending)",
                                    shared.queue.capacity()
                                ),
                            },
                        ));
                    }
                    Err(PushError::Closed(job)) => {
                        shared.metrics.on_error();
                        let _ = tx.send((
                            job.id,
                            Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is draining".into(),
                            },
                        ));
                    }
                }
            }
        }
    }
}
