//! Per-version-pair request coalescing.
//!
//! A burst of N concurrent requests for the same *cold* version pair must
//! trigger exactly one synthesis. The heavy lifting is done by
//! [`TranslatorCache`]'s per-key `OnceLock` — concurrent racers on one
//! key serialize and the losers adopt the winner's outcome. This module
//! adds the serving-side bookkeeping on top:
//!
//! * the oracle corpus for a pair is built once and reused (building it
//!   for every request would re-render 68 modules per call);
//! * per-pair counters (`syntheses`, `coalesced`) make the coalescing
//!   observable — the e2e test asserts `syntheses == 1` after a stampede,
//!   and `STATS` exposes the totals.
//!
//! The pair map is **sharded** [`COALESCE_SHARDS`] ways by pair hash,
//! mirroring the sharded `TranslatorCache`: concurrent requests for
//! different pairs never contend on one lock, and [`PairCoalescer::totals`]
//! takes every shard lock at once so its cross-shard view is from a single
//! epoch.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use siro_ir::IrVersion;
use siro_synth::{OracleTest, SynthError, SynthesisConfig, SynthesisOutcome, TranslatorCache};

/// Observable per-pair counters.
#[derive(Debug, Default)]
struct PairCounters {
    /// Requests for this pair that actually ran a synthesis.
    syntheses: AtomicU64,
    /// Requests for this pair answered by someone else's synthesis (a
    /// cache hit, including waiting out an in-flight one).
    coalesced: AtomicU64,
}

struct PairState {
    corpus: OnceLock<Arc<Vec<OracleTest>>>,
    counters: PairCounters,
}

/// Number of independent pair-map shards (power of two).
pub const COALESCE_SHARDS: usize = 8;

type PairMap = HashMap<(IrVersion, IrVersion), Arc<PairState>>;

/// Coalesces translator acquisition per `(source, target)` pair.
pub struct PairCoalescer {
    shards: [Mutex<PairMap>; COALESCE_SHARDS],
}

impl Default for PairCoalescer {
    fn default() -> Self {
        PairCoalescer {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

/// What [`PairCoalescer::translator_for`] reports alongside the outcome.
#[derive(Debug, Clone)]
pub struct CoalescedLookup {
    /// The shared synthesis outcome.
    pub outcome: Arc<SynthesisOutcome>,
    /// `true` when this request ran the synthesis itself.
    pub fresh: bool,
}

/// Totals across all pairs, for `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceTotals {
    /// Distinct pairs requested so far.
    pub pairs: u64,
    /// Syntheses actually run.
    pub syntheses: u64,
    /// Requests that reused another request's synthesis.
    pub coalesced: u64,
}

impl PairCoalescer {
    /// Creates an empty coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, pair: (IrVersion, IrVersion)) -> &Mutex<PairMap> {
        let mut h = DefaultHasher::new();
        pair.hash(&mut h);
        &self.shards[(h.finish() as usize) & (COALESCE_SHARDS - 1)]
    }

    /// Locks every shard in index order; holding all guards makes the
    /// cross-shard reads in [`PairCoalescer::totals`] atomic.
    fn lock_all(&self) -> Vec<MutexGuard<'_, PairMap>> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("coalescer poisoned"))
            .collect()
    }

    fn state(&self, pair: (IrVersion, IrVersion)) -> Arc<PairState> {
        let mut map = self.shard(pair).lock().expect("coalescer poisoned");
        Arc::clone(map.entry(pair).or_insert_with(|| {
            Arc::new(PairState {
                corpus: OnceLock::new(),
                counters: PairCounters::default(),
            })
        }))
    }

    /// Returns the (memoized) synthesized translator for `source -> target`,
    /// running at most one synthesis per pair regardless of concurrency.
    ///
    /// # Errors
    ///
    /// Propagates the memoized [`SynthError`] when the pair cannot be
    /// synthesized from the corpus.
    pub fn translator_for(
        &self,
        source: IrVersion,
        target: IrVersion,
    ) -> Result<CoalescedLookup, SynthError> {
        let state = self.state((source, target));
        let corpus = state.corpus.get_or_init(|| {
            Arc::new(
                siro_testcases::corpus_for_pair(source, target)
                    .into_iter()
                    .map(|c| OracleTest {
                        name: c.name.to_string(),
                        module: c.build(source),
                        oracle: c.oracle,
                    })
                    .collect(),
            )
        });
        let lookup =
            TranslatorCache::lookup_or_synthesize(SynthesisConfig::new(source, target), corpus)?;
        if lookup.fresh {
            state.counters.syntheses.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("serve.coalesce_fresh", 1);
        } else {
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            siro_trace::counter("serve.coalesce_joined", 1);
        }
        Ok(CoalescedLookup {
            outcome: lookup.outcome,
            fresh: lookup.fresh,
        })
    }

    /// Counters for one pair: `(syntheses, coalesced)`.
    pub fn pair_counters(&self, source: IrVersion, target: IrVersion) -> (u64, u64) {
        let pair = (source, target);
        let map = self.shard(pair).lock().expect("coalescer poisoned");
        map.get(&pair)
            .map(|s| {
                (
                    s.counters.syntheses.load(Ordering::Relaxed),
                    s.counters.coalesced.load(Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0))
    }

    /// Totals across every pair seen so far, read with all shard locks
    /// held so the view is from one epoch.
    pub fn totals(&self) -> CoalesceTotals {
        let guards = self.lock_all();
        let mut t = CoalesceTotals::default();
        for map in &guards {
            t.pairs += map.len() as u64;
            for s in map.values() {
                t.syntheses += s.counters.syntheses.load(Ordering::Relaxed);
                t.coalesced += s.counters.coalesced.load(Ordering::Relaxed);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stampede_on_a_cold_pair_synthesizes_once() {
        // A pair no other test in this binary touches, so the process-wide
        // TranslatorCache is genuinely cold for it.
        let (src, tgt) = (IrVersion::V15_0, IrVersion::V3_6);
        let coalescer = Arc::new(PairCoalescer::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&coalescer);
            handles.push(std::thread::spawn(move || {
                c.translator_for(src, tgt).expect("synthesis")
            }));
        }
        let lookups: Vec<CoalescedLookup> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        let fresh = lookups.iter().filter(|l| l.fresh).count();
        assert_eq!(fresh, 1, "exactly one request may synthesize");
        let first = &lookups[0].outcome;
        for l in &lookups[1..] {
            assert!(Arc::ptr_eq(first, &l.outcome), "all share one outcome");
        }
        let (syntheses, coalesced) = coalescer.pair_counters(src, tgt);
        assert_eq!(syntheses, 1);
        assert_eq!(coalesced, 7);
        let totals = coalescer.totals();
        assert!(totals.pairs >= 1 && totals.syntheses >= 1);
    }

    #[test]
    fn unknown_pair_reports_zero_counters() {
        let c = PairCoalescer::new();
        assert_eq!(c.pair_counters(IrVersion::V3_0, IrVersion::V3_6), (0, 0));
        assert_eq!(c.totals(), CoalesceTotals::default());
    }

    /// A stampede that spans *multiple shards at once* (several distinct
    /// cold pairs, racers on each) must still synthesize exactly once per
    /// pair, and the cross-shard totals must account for every request.
    #[test]
    fn cross_shard_stampede_synthesizes_once_per_pair() {
        // Pairs reserved for this test (no other test in this binary
        // synthesizes them), chosen to land in different shards with high
        // probability; correctness does not depend on the spread.
        let pairs = [
            (IrVersion::V17_0, IrVersion::V3_6),
            (IrVersion::V17_0, IrVersion::V3_0),
            (IrVersion::V10_0, IrVersion::V3_0),
        ];
        const RACERS: usize = 4;
        let coalescer = Arc::new(PairCoalescer::new());
        let mut handles = Vec::new();
        for &(src, tgt) in &pairs {
            for _ in 0..RACERS {
                let c = Arc::clone(&coalescer);
                handles.push(std::thread::spawn(move || {
                    c.translator_for(src, tgt).expect("synthesis")
                }));
            }
        }
        for h in handles {
            h.join().expect("join");
        }
        for &(src, tgt) in &pairs {
            let (syntheses, coalesced) = coalescer.pair_counters(src, tgt);
            assert_eq!(syntheses, 1, "{src}->{tgt} must synthesize exactly once");
            assert_eq!(coalesced, (RACERS - 1) as u64, "{src}->{tgt}");
        }
        let totals = coalescer.totals();
        assert_eq!(totals.pairs, pairs.len() as u64);
        assert_eq!(totals.syntheses, pairs.len() as u64);
        assert_eq!(totals.coalesced, (pairs.len() * (RACERS - 1)) as u64);
    }
}
