//! # siro-serve — the concurrent IR-translation service
//!
//! Siro's end product is a fleet of version-to-version translators;
//! this crate serves them over TCP so many clients can share one
//! process-wide [`siro_synth::TranslatorCache`]: translators are
//! synthesized once and amortized across every subsequent request.
//!
//! * [`protocol`] — the length-prefixed binary wire protocol (documented
//!   in `DESIGN.md` § "The siro-serve wire protocol");
//! * [`queue`] — the bounded request queue whose `try_push` *rejects*
//!   (`Busy`) instead of queuing unboundedly — backpressure by
//!   construction;
//! * [`pool`] — the fixed worker pool, sized by `SIRO_THREADS`;
//! * [`engine`] — per-request execution (parse → verify → translate →
//!   verify → print), panic-isolated per request;
//! * [`coalesce`] — per-version-pair request coalescing: N concurrent
//!   requests for the same cold pair run exactly one synthesis;
//! * [`poller`] — std-only level-triggered readiness (epoll on Linux via
//!   an `extern "C"` shim, `poll(2)` elsewhere — no new dependencies);
//! * [`reactor`] — the nonblocking event-loop engine: one thread owns
//!   every socket, workers handle CPU-bound work, write queues give
//!   per-connection backpressure (see `docs/SERVING.md`);
//! * [`admission`] — per-peer token-bucket fairness; over-budget
//!   requests get a structured `Throttled` with retry-after;
//! * [`stats`] — lock-free metrics, the plaintext `STATS` page, and the
//!   Prometheus-style `METRICS` page (see `docs/OBSERVABILITY.md`);
//! * [`server`] — engine dispatch ([`EngineMode`]), the accept paths
//!   with failure backoff, graceful drain-on-shutdown, and warm start
//!   from the persistent translator store (`docs/PERSISTENCE.md`);
//! * [`client`] — a blocking client (used by `siro translate --remote`,
//!   `siro loadgen`, the loopback bench, and CI).
//!
//! ## Example
//!
//! ```no_run
//! use std::time::Duration;
//! use siro_ir::IrVersion;
//! use siro_serve::{Client, ServeConfig, TranslateMode};
//!
//! let handle = siro_serve::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
//! let out = client
//!     .translate(
//!         IrVersion::V13_0,
//!         IrVersion::V3_6,
//!         TranslateMode::Synthesized,
//!         "; IR version 13.0\n…",
//!     )
//!     .unwrap();
//! println!("{}", out.text);
//! handle.shutdown();
//! ```

#![deny(missing_docs)]

pub mod admission;
pub mod client;
pub mod coalesce;
pub mod engine;
pub mod poller;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod stats;

pub use admission::{Admission, AdmissionConfig, AdmissionControl};
pub use client::{Client, ClientError, Translated};
pub use coalesce::{CoalesceTotals, PairCoalescer};
pub use engine::Engine;
pub use protocol::{ErrorCode, Request, Response, StageNanos, TranslateMode};
pub use queue::{BoundedQueue, PushError};
pub use reactor::ReactorStats;
pub use server::{start, EngineMode, ServeConfig, ServerHandle};
pub use siro_synth::ValidationMode;
pub use stats::{metrics_value, stats_value, Metrics, MetricsSnapshot, ServeGauges};
