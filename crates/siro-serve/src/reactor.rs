//! The nonblocking event-loop engine (the `event` serving mode).
//!
//! One **reactor** thread owns every socket — the listener and all
//! connections — registered with a level-triggered [`Poller`]. It does
//! all the I/O: nonblocking accepts, framed reads, framed writes with
//! per-connection write queues. CPU-bound work (translate / synthesize)
//! never runs on the reactor: decoded data-plane requests go through the
//! same bounded queue and worker pool as the threaded engine, and
//! finished responses come back over the [`Completions`] queue, which
//! wakes the reactor via a self-pipe.
//!
//! Compared to thread-per-connection this decouples *open connections*
//! from *threads*: ten thousand idle connections cost ten thousand fds,
//! not ten thousand stacks, and a stalled peer holds only its own write
//! queue, never a thread.
//!
//! Flow control, in order of application to an incoming frame:
//!
//! 1. **read pause** — a connection whose write queue exceeds
//!    [`WRITE_HIGH_WATER`] bytes loses read interest until the peer
//!    drains below half of it (slow readers cannot balloon memory);
//! 2. **admission control** — when enabled, the per-peer token bucket
//!    rejects over-budget requests with a structured `Throttled`
//!    carrying retry-after (one greedy client cannot starve the rest);
//! 3. **bounded queue** — `Busy` when the global queue is full, exactly
//!    as in the threaded engine.
//!
//! The accept loop backs off on failure (EMFILE/ENFILE and other
//! transient errors): the listener is *deregistered* for an exponentially
//! growing pause instead of hot-spinning on a level-triggered readiness
//! that cannot be serviced, and `serve.accept_errors` counts each one.
//!
//! Shutdown drains: the listener is deregistered, the queue closes (new
//! data-plane requests answer `ShuttingDown`), workers finish what was
//! admitted, the reactor writes every pending response, then exits.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::admission::Admission;
use crate::poller::{Interest, PollEvent, Poller};
use crate::pool::{Job, Reply};
use crate::protocol::{ErrorCode, Request, Response, MAX_FRAME};
use crate::queue::PushError;
use crate::server::Shared;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Pause reads on a connection once this many response bytes are queued.
pub const WRITE_HIGH_WATER: usize = 256 * 1024;
/// Resume reads once the queue drains below this.
const WRITE_LOW_WATER: usize = WRITE_HIGH_WATER / 2;
/// First accept-failure backoff; doubles per consecutive failure.
const ACCEPT_BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Accept backoff ceiling.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);
/// How long a draining reactor waits for workers + peers before exiting
/// with responses still unwritten.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// One finished job on its way back from a worker to the reactor.
struct Completion {
    conn: u64,
    id: u64,
    response: Response,
}

/// The worker → reactor return path: a queue of finished responses plus
/// a self-pipe that interrupts the reactor's poll wait.
pub struct Completions {
    queue: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
    in_flight: AtomicU64,
}

impl Completions {
    pub(crate) fn new() -> io::Result<(Arc<Completions>, UnixStream)> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok((
            Arc::new(Completions {
                queue: Mutex::new(Vec::new()),
                wake_tx,
                in_flight: AtomicU64::new(0),
            }),
            wake_rx,
        ))
    }

    pub(crate) fn push(&self, conn: u64, id: u64, response: Response) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push(Completion { conn, id, response });
        self.wake();
    }

    /// Interrupts the reactor's poll wait. A full pipe is fine — a wake
    /// is already pending.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }

    fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// Reactor-side counters surfaced on the `STATS` / `METRICS` pages.
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Event-loop iterations (each poll wait counts once).
    pub loop_iterations: AtomicU64,
    /// Fds currently registered with the poller (gauge).
    pub registered_fds: AtomicU64,
    /// Largest per-connection write-queue depth seen, in bytes.
    pub write_queue_hwm_bytes: AtomicU64,
    /// Currently open connections (gauge).
    pub open_connections: AtomicU64,
}

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    read_buf: Vec<u8>,
    write_queue: VecDeque<Vec<u8>>,
    write_off: usize,
    queued_bytes: usize,
    in_flight: u64,
    interest: Interest,
    peer_closed: bool,
    kill: bool,
    write_error: bool,
}

impl Conn {
    fn read_paused(&self) -> bool {
        self.queued_bytes >= WRITE_HIGH_WATER
    }
}

pub(crate) struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    rstats: Arc<ReactorStats>,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    listener_registered: bool,
    accept_backoff: Duration,
    accept_paused_until: Option<Instant>,
    draining_since: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        completions: Arc<Completions>,
        wake_rx: UnixStream,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let rstats = Arc::clone(shared.reactor_stats());
        Ok(Reactor {
            poller,
            listener,
            wake_rx,
            shared,
            rstats,
            completions,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            listener_registered: true,
            accept_backoff: ACCEPT_BACKOFF_INITIAL,
            accept_paused_until: None,
            draining_since: None,
        })
    }

    fn stats(&self) -> &ReactorStats {
        &self.rstats
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            self.stats().loop_iterations.fetch_add(1, Ordering::Relaxed);
            let timeout = self.wait_timeout();
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                // A failing poller is unrecoverable for an event loop;
                // surface it via trace and fall into drain.
                siro_trace::counter("serve.reactor_poll_errors", 1);
                let _ = e;
                self.shared.signal_shutdown();
            }
            let now = Instant::now();
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => self.conn_ready(token, ev.readable, ev.writable),
                }
            }
            events = batch;
            self.drain_completions();
            self.maybe_resume_accept(now);
            if self.shared.is_shutting_down() {
                if self.draining_since.is_none() {
                    self.start_drain(now);
                }
                if self.drain_complete() || self.drain_expired(now) {
                    break;
                }
            }
            self.stats()
                .registered_fds
                .store(self.poller.registered() as u64, Ordering::Relaxed);
        }
        // Dropping the reactor closes every connection and the listener.
        self.stats().registered_fds.store(0, Ordering::Relaxed);
        self.stats().open_connections.store(0, Ordering::Relaxed);
    }

    fn wait_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut timeout: Option<Duration> = None;
        if let Some(until) = self.accept_paused_until {
            timeout = Some(until.saturating_duration_since(now));
        }
        if let Some(since) = self.draining_since {
            let remaining = (since + DRAIN_GRACE).saturating_duration_since(now);
            // Poll the drain conditions at a modest cadence too: worker
            // completions wake us, but peer-side drains do not.
            let cap = remaining.min(Duration::from_millis(50));
            timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
        }
        timeout.map(|t| t.max(Duration::from_millis(1)))
    }

    // ---- accept path ----------------------------------------------------

    fn accept_ready(&mut self, now: Instant) {
        if !self.listener_registered || self.shared.is_shutting_down() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_INITIAL;
                    if self.install_conn(stream, peer.ip()).is_err() {
                        // Registration failed (fd pressure): treat like an
                        // accept error and back off.
                        self.pause_accept(now);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_e) => {
                    // EMFILE/ENFILE or another transient accept failure.
                    // Level-triggered readiness would re-report instantly;
                    // deregister the listener for a growing pause instead
                    // of hot-spinning.
                    self.shared.metrics().on_accept_error();
                    self.pause_accept(now);
                    return;
                }
            }
        }
    }

    fn pause_accept(&mut self, now: Instant) {
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
        self.accept_paused_until = Some(now + self.accept_backoff);
        self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
    }

    fn maybe_resume_accept(&mut self, now: Instant) {
        let Some(until) = self.accept_paused_until else {
            return;
        };
        if now < until || self.shared.is_shutting_down() {
            return;
        }
        self.accept_paused_until = None;
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_ok()
        {
            self.listener_registered = true;
        } else {
            // Still out of resources; keep backing off.
            self.pause_accept(now);
        }
    }

    fn install_conn(&mut self, stream: TcpStream, peer: IpAddr) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let token = self.next_token;
        self.next_token += 1;
        self.poller
            .register(stream.as_raw_fd(), token, Interest::READ)?;
        self.conns.insert(
            token,
            Conn {
                stream,
                peer,
                read_buf: Vec::new(),
                write_queue: VecDeque::new(),
                write_off: 0,
                queued_bytes: 0,
                in_flight: 0,
                interest: Interest::READ,
                peer_closed: false,
                kill: false,
                write_error: false,
            },
        );
        self.shared
            .metrics()
            .connections
            .fetch_add(1, Ordering::Relaxed);
        self.stats()
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.stats()
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ---- wake + completions ---------------------------------------------

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_completions(&mut self) {
        let finished = self.completions.drain();
        if finished.is_empty() {
            return;
        }
        let mut touched = Vec::with_capacity(finished.len());
        for Completion { conn, id, response } in finished {
            self.completions.in_flight.fetch_sub(1, Ordering::SeqCst);
            if let Some(c) = self.conns.get_mut(&conn) {
                c.in_flight = c.in_flight.saturating_sub(1);
                Self::enqueue_response(&self.rstats, c, id, &response);
                touched.push(conn);
            }
        }
        for token in touched {
            self.flush_conn(token);
            self.finalize_conn(token);
        }
    }

    // ---- per-connection I/O ---------------------------------------------

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        if writable {
            self.flush_conn(token);
        }
        if readable {
            self.read_conn(token);
        }
        self.finalize_conn(token);
    }

    fn read_conn(&mut self, token: u64) {
        let payloads = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_paused() || conn.kill {
                return;
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() {
                            break;
                        }
                        // Keep one read burst bounded so a firehose peer
                        // cannot monopolize the loop; level-triggered
                        // readiness re-fires for the rest.
                        if conn.read_buf.len() >= MAX_FRAME {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.kill = true;
                        break;
                    }
                }
            }
            Self::extract_frames(conn)
        };
        for payload in payloads {
            self.handle_payload(token, &payload);
        }
        self.flush_conn(token);
    }

    /// Splits complete `u32 length + payload` frames off the front of the
    /// connection's read buffer. An oversized length prefix kills the
    /// connection (mirroring the threaded engine, where the stream can no
    /// longer be trusted to be in sync).
    fn extract_frames(conn: &mut Conn) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while conn.read_buf.len() - off >= 4 {
            let len = u32::from_be_bytes(
                conn.read_buf[off..off + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ) as usize;
            if len > MAX_FRAME {
                conn.kill = true;
                break;
            }
            if conn.read_buf.len() - off - 4 < len {
                break;
            }
            out.push(conn.read_buf[off + 4..off + 4 + len].to_vec());
            off += 4 + len;
        }
        conn.read_buf.drain(..off);
        out
    }

    fn handle_payload(&mut self, token: u64, payload: &[u8]) {
        let metrics = Arc::clone(self.shared.metrics());
        metrics.on_request();
        let (id, request) = match Request::decode(payload) {
            Ok(ok) => ok,
            Err(e) => {
                metrics.on_error();
                // Decoding failed on a complete frame — framing is still
                // intact, so answer and keep the connection.
                self.respond(
                    token,
                    0,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        match request {
            // Control plane: answered inline from the reactor so it works
            // (and stays fast) even when every worker is busy.
            Request::Stats => {
                metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let text = self.shared.stats_page();
                self.respond(token, id, Response::StatsOk { text });
            }
            Request::Metrics => {
                metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                let text = self.shared.metrics_page();
                self.respond(token, id, Response::MetricsOk { text });
            }
            Request::Shutdown => {
                metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
                self.respond(token, id, Response::ShutdownOk);
                self.shared.signal_shutdown();
            }
            request @ (Request::Translate { .. } | Request::Ping { .. }) => {
                if self.shared.is_shutting_down() {
                    metrics.on_error();
                    self.respond(
                        token,
                        id,
                        Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    );
                    return;
                }
                let peer = self
                    .conns
                    .get(&token)
                    .map_or(IpAddr::V4(Ipv4Addr::LOCALHOST), |c| c.peer);
                if let Some(admission) = self.shared.admission() {
                    if let Admission::Throttle { retry_after_ms } =
                        admission.admit(peer, Instant::now())
                    {
                        metrics.on_throttled();
                        self.respond(
                            token,
                            id,
                            Response::Throttled {
                                retry_after_ms,
                                message: format!(
                                    "per-client budget of {} req/s exceeded",
                                    admission.rate_per_sec()
                                ),
                            },
                        );
                        return;
                    }
                }
                self.completions.in_flight.fetch_add(1, Ordering::SeqCst);
                if let Some(c) = self.conns.get_mut(&token) {
                    c.in_flight += 1;
                }
                let job = Job {
                    id,
                    request,
                    reply: Reply::reactor(Arc::clone(&self.completions), token),
                    enqueued: Instant::now(),
                };
                match self.shared.queue().try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        self.job_rejected(token);
                        metrics.on_busy();
                        self.respond(
                            token,
                            job.id,
                            Response::Error {
                                code: ErrorCode::Busy,
                                message: format!(
                                    "queue full ({} pending)",
                                    self.shared.queue().capacity()
                                ),
                            },
                        );
                    }
                    Err(PushError::Closed(job)) => {
                        self.job_rejected(token);
                        metrics.on_error();
                        self.respond(
                            token,
                            job.id,
                            Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is draining".into(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Rolls back the in-flight accounting for a job the queue refused.
    fn job_rejected(&mut self, token: u64) {
        self.completions.in_flight.fetch_sub(1, Ordering::SeqCst);
        if let Some(c) = self.conns.get_mut(&token) {
            c.in_flight = c.in_flight.saturating_sub(1);
        }
    }

    fn respond(&mut self, token: u64, id: u64, response: Response) {
        if let Some(conn) = self.conns.get_mut(&token) {
            Self::enqueue_response(&self.rstats, conn, id, &response);
        }
    }

    fn enqueue_response(stats: &ReactorStats, conn: &mut Conn, id: u64, response: &Response) {
        let payload = response.encode(id);
        if payload.len() > MAX_FRAME {
            // Mirrors the threaded engine: an unencodable response ends
            // the connection rather than desyncing the stream.
            conn.kill = true;
            return;
        }
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        conn.queued_bytes += frame.len();
        conn.write_queue.push_back(frame);
        stats
            .write_queue_hwm_bytes
            .fetch_max(conn.queued_bytes as u64, Ordering::Relaxed);
    }

    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(front) = conn.write_queue.front() {
            match conn.stream.write(&front[conn.write_off..]) {
                Ok(0) => {
                    conn.write_error = true;
                    return;
                }
                Ok(n) => {
                    conn.write_off += n;
                    conn.queued_bytes -= n;
                    if conn.write_off == front.len() {
                        conn.write_queue.pop_front();
                        conn.write_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.write_error = true;
                    return;
                }
            }
        }
    }

    /// Re-derives the connection's poller interest from its state, or
    /// closes it when it has nothing left to do.
    fn finalize_conn(&mut self, token: u64) {
        let (close, want) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let write_pending = !conn.write_queue.is_empty();
            let finished = (conn.peer_closed || conn.kill) && conn.in_flight == 0 && !write_pending;
            if conn.write_error || finished {
                (true, conn.interest)
            } else {
                let resumed = conn.queued_bytes < WRITE_LOW_WATER;
                let paused = conn.queued_bytes >= WRITE_HIGH_WATER;
                // Hysteresis: a paused conn resumes reading only below the
                // low watermark.
                let read_now = !conn.kill
                    && !conn.peer_closed
                    && if conn.interest.readable {
                        !paused
                    } else {
                        resumed
                    };
                (
                    false,
                    Interest {
                        readable: read_now,
                        writable: write_pending,
                    },
                )
            }
        };
        if close {
            self.close_conn(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
            {
                conn.interest = want;
            } else {
                conn.write_error = true;
                self.close_conn(token);
            }
        }
    }

    // ---- shutdown -------------------------------------------------------

    fn start_drain(&mut self, now: Instant) {
        if self.listener_registered {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.listener_registered = false;
        }
        self.accept_paused_until = None;
        // Workers drain what was already admitted, then exit.
        self.shared.queue().close();
        self.draining_since = Some(now);
    }

    fn drain_complete(&self) -> bool {
        self.completions.in_flight() == 0 && self.conns.values().all(|c| c.write_queue.is_empty())
    }

    fn drain_expired(&self, now: Instant) -> bool {
        self.draining_since
            .map(|since| now.saturating_duration_since(since) >= DRAIN_GRACE)
            .unwrap_or(false)
    }
}
