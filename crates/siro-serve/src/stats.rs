//! Server metrics and the plaintext `STATS` page.
//!
//! All counters are lock-free atomics so the hot path never contends on
//! the stats. Latency goes into a power-of-two bucketed histogram
//! (microsecond resolution, 40 buckets ≈ 18 minutes of range); p50/p99
//! are read from the bucket boundaries, which is exact enough for a
//! serving dashboard and needs no allocation or sorting.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use siro_synth::TranslatorCache;

const BUCKETS: usize = 40;

/// Power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        // Bucket i holds [2^i, 2^(i+1)) microseconds; 0 µs lands in bucket 0.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bucket bound (µs) below which `q` of the samples fall;
    /// `None` before the first sample. `q` is clamped to `0.0..=1.0`.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // The last bucket is open-ended (it absorbs everything at or
                // above 2^(BUCKETS-1) µs), so it has no finite upper bound.
                if i == BUCKETS - 1 {
                    return Some(u64::MAX);
                }
                return Some(1u64 << (i + 1));
            }
        }
        Some(u64::MAX)
    }
}

/// Process-lifetime serving counters. One instance per server, shared by
/// every connection and worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests read off the wire (any kind, before queueing).
    pub requests_total: AtomicU64,
    /// Requests answered with a success response.
    pub requests_ok: AtomicU64,
    /// Requests rejected with `Busy` by the bounded queue.
    pub requests_busy: AtomicU64,
    /// Requests answered with any other error.
    pub requests_error: AtomicU64,
    /// Requests rejected by per-peer admission control (`Throttled`).
    pub requests_throttled: AtomicU64,
    /// Translate requests executed by workers.
    pub translations: AtomicU64,
    /// Translate requests with a WIR endpoint (WIR↔WIR or SIRO↔WIR),
    /// served through the dual-catalog router.
    pub cross_dialect: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// `accept(2)` failures (EMFILE/ENFILE and other transient errors);
    /// each one also backs the accept loop off.
    pub accept_errors: AtomicU64,
    /// Worker-side latency of completed requests.
    pub latency: Histogram,
}

impl Metrics {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a request read off the wire.
    pub fn on_request(&self) {
        Self::add(&self.requests_total, 1);
    }

    /// Counts a success and its latency.
    pub fn on_ok(&self, latency: Duration) {
        Self::add(&self.requests_ok, 1);
        self.latency.record(latency);
    }

    /// Counts a backpressure rejection.
    pub fn on_busy(&self) {
        Self::add(&self.requests_busy, 1);
    }

    /// Counts a non-busy error response.
    pub fn on_error(&self) {
        Self::add(&self.requests_error, 1);
    }

    /// Counts an admission-control rejection.
    pub fn on_throttled(&self) {
        Self::add(&self.requests_throttled, 1);
    }

    /// Counts an accept-loop failure (also traced as
    /// `serve.accept_errors`).
    pub fn on_accept_error(&self) {
        Self::add(&self.accept_errors, 1);
        siro_trace::counter("serve.accept_errors", 1);
    }

    /// Immutable copy of the counters, for JSON dumps and assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_busy: self.requests_busy.load(Ordering::Relaxed),
            requests_error: self.requests_error.load(Ordering::Relaxed),
            requests_throttled: self.requests_throttled.load(Ordering::Relaxed),
            translations: self.translations.load(Ordering::Relaxed),
            cross_dialect: self.cross_dialect.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p99_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests_total`].
    pub requests_total: u64,
    /// See [`Metrics::requests_ok`].
    pub requests_ok: u64,
    /// See [`Metrics::requests_busy`].
    pub requests_busy: u64,
    /// See [`Metrics::requests_error`].
    pub requests_error: u64,
    /// See [`Metrics::requests_throttled`].
    pub requests_throttled: u64,
    /// See [`Metrics::translations`].
    pub translations: u64,
    /// See [`Metrics::cross_dialect`].
    pub cross_dialect: u64,
    /// See [`Metrics::connections`].
    pub connections: u64,
    /// See [`Metrics::accept_errors`].
    pub accept_errors: u64,
    /// p50 latency in µs (bucket upper bound), if any sample exists.
    pub latency_p50_us: Option<u64>,
    /// p99 latency in µs (bucket upper bound), if any sample exists.
    pub latency_p99_us: Option<u64>,
}

/// Point-in-time server gauges that accompany [`Metrics`] on the stats
/// pages: queue and pool shape, coalescer totals, and — under the event
/// engine — the reactor funnel. The threaded engine leaves the reactor
/// gauges at zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeGauges {
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Coalescer: syntheses actually run.
    pub pairs_synthesized: u64,
    /// Coalescer: requests that reused another request's synthesis.
    pub coalesced_waiters: u64,
    /// Event-loop iterations so far.
    pub reactor_loops: u64,
    /// Fds registered with the poller right now.
    pub registered_fds: u64,
    /// Largest per-connection write queue seen, in bytes.
    pub write_queue_hwm_bytes: u64,
    /// Connections currently open (event engine).
    pub open_connections: u64,
}

/// Renders the plaintext `STATS` page: one `key value` per line, stable
/// keys, so it is trivially greppable from CI and shell scripts.
pub fn render_stats(metrics: &Metrics, g: &ServeGauges) -> String {
    let m = metrics.snapshot();
    let cache = TranslatorCache::snapshot();
    let mut out = String::with_capacity(1024);
    let mut line = |k: &str, v: u64| {
        let _ = writeln!(out, "{k} {v}");
    };
    line("requests_total", m.requests_total);
    line("requests_ok", m.requests_ok);
    line("requests_busy", m.requests_busy);
    line("requests_error", m.requests_error);
    line("requests_throttled", m.requests_throttled);
    line("translations", m.translations);
    line("cross_dialect_translations", m.cross_dialect);
    line("connections", m.connections);
    line("accept_errors", m.accept_errors);
    line("queue_depth", g.queue_depth as u64);
    line("queue_capacity", g.queue_capacity as u64);
    line("workers", g.workers as u64);
    line("reactor_loops", g.reactor_loops);
    line("reactor_registered_fds", g.registered_fds);
    line("reactor_write_queue_hwm_bytes", g.write_queue_hwm_bytes);
    line("open_connections", g.open_connections);
    line("latency_p50_us", m.latency_p50_us.unwrap_or(0));
    line("latency_p99_us", m.latency_p99_us.unwrap_or(0));
    line("cache_hits", cache.hits);
    line("cache_misses", cache.misses);
    line("cache_entries", cache.entries as u64);
    line("cache_failures", cache.failures as u64);
    for shard in TranslatorCache::shard_snapshots() {
        let _ = writeln!(out, "cache_shard{}_hits {}", shard.index, shard.hits);
        let _ = writeln!(out, "cache_shard{}_misses {}", shard.index, shard.misses);
    }
    let mut line = |k: &str, v: u64| {
        let _ = writeln!(out, "{k} {v}");
    };
    line("pairs_synthesized", g.pairs_synthesized);
    line("coalesced_waiters", g.coalesced_waiters);
    let store = siro_synth::store_stats();
    line("store_attached", u64::from(store.attached));
    line("store_warm_loaded", store.warm_loaded);
    line("store_hits", store.hits);
    line("store_misses", store.misses);
    line("store_corrupt", store.corrupt);
    line("store_writes", store.writes);
    let compile = siro_synth::compile_stats();
    line("compile_enabled", u64::from(siro_synth::compile_enabled()));
    line("compile_lowered", compile.lowered);
    line("compile_lower_failures", compile.lower_failures);
    line(
        "compile_translations_compiled",
        compile.translations_compiled,
    );
    line(
        "compile_translations_interpreted",
        compile.translations_interpreted,
    );
    line("compile_runtime_fallbacks", compile.runtime_fallbacks);
    line("compile_sirx_loaded", compile.sirx_loaded);
    line("compile_sirx_corrupt", compile.sirx_corrupt);
    line("compile_sirx_writes", compile.sirx_writes);
    let router = siro_synth::router_stats();
    line("router_plans", router.plans);
    line("router_direct", router.direct);
    line("router_composed", router.composed);
    line("router_composed_cached", router.composed_cached);
    line("router_fallbacks", router.fallbacks);
    line("router_chains_persisted", router.chains_persisted);
    line("router_max_hops", router.max_hops);
    line("trace_enabled", u64::from(siro_trace::enabled()));
    out
}

/// Renders the Prometheus-style plaintext `METRICS` page: the serving
/// counters, latency quantiles, translator-cache and coalescer totals,
/// plus the `siro_trace_enabled` gauge and every `siro-trace` counter
/// (the trace section is rendered by
/// [`siro_trace::export::render_prometheus_counters`], so the two
/// surfaces can never disagree).
pub fn render_metrics(metrics: &Metrics, g: &ServeGauges) -> String {
    let m = metrics.snapshot();
    let cache = TranslatorCache::snapshot();
    let mut out = String::with_capacity(2048);
    let mut sample = |name: &str, kind: &str, v: u64| {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {v}");
    };
    sample("siro_requests_total", "counter", m.requests_total);
    sample("siro_requests_ok_total", "counter", m.requests_ok);
    sample("siro_requests_busy_total", "counter", m.requests_busy);
    sample("siro_requests_error_total", "counter", m.requests_error);
    sample(
        "siro_requests_throttled_total",
        "counter",
        m.requests_throttled,
    );
    sample("siro_translations_total", "counter", m.translations);
    sample(
        "siro_cross_dialect_translations_total",
        "counter",
        m.cross_dialect,
    );
    sample("siro_connections_total", "counter", m.connections);
    sample("siro_accept_errors_total", "counter", m.accept_errors);
    sample("siro_queue_depth", "gauge", g.queue_depth as u64);
    sample("siro_queue_capacity", "gauge", g.queue_capacity as u64);
    sample("siro_workers", "gauge", g.workers as u64);
    sample("siro_reactor_loops_total", "counter", g.reactor_loops);
    sample("siro_reactor_registered_fds", "gauge", g.registered_fds);
    sample(
        "siro_reactor_write_queue_hwm_bytes",
        "gauge",
        g.write_queue_hwm_bytes,
    );
    sample("siro_open_connections", "gauge", g.open_connections);
    sample(
        "siro_latency_p50_microseconds",
        "gauge",
        m.latency_p50_us.unwrap_or(0),
    );
    sample(
        "siro_latency_p99_microseconds",
        "gauge",
        m.latency_p99_us.unwrap_or(0),
    );
    sample("siro_cache_hits_total", "counter", cache.hits);
    sample("siro_cache_misses_total", "counter", cache.misses);
    sample("siro_cache_entries", "gauge", cache.entries as u64);
    sample("siro_cache_failures", "gauge", cache.failures as u64);
    for shard in TranslatorCache::shard_snapshots() {
        sample(
            &format!("siro_cache_shard{}_hits_total", shard.index),
            "counter",
            shard.hits,
        );
        sample(
            &format!("siro_cache_shard{}_misses_total", shard.index),
            "counter",
            shard.misses,
        );
    }
    sample(
        "siro_pairs_synthesized_total",
        "counter",
        g.pairs_synthesized,
    );
    sample(
        "siro_coalesced_waiters_total",
        "counter",
        g.coalesced_waiters,
    );
    let store = siro_synth::store_stats();
    sample("siro_store_attached", "gauge", u64::from(store.attached));
    sample("siro_store_warm_loaded_total", "counter", store.warm_loaded);
    sample("siro_store_hits_total", "counter", store.hits);
    sample("siro_store_misses_total", "counter", store.misses);
    sample("siro_store_corrupt_total", "counter", store.corrupt);
    sample("siro_store_writes_total", "counter", store.writes);
    let compile = siro_synth::compile_stats();
    sample(
        "siro_compile_enabled",
        "gauge",
        u64::from(siro_synth::compile_enabled()),
    );
    sample("siro_compile_lowered_total", "counter", compile.lowered);
    sample(
        "siro_compile_lower_failures_total",
        "counter",
        compile.lower_failures,
    );
    sample(
        "siro_compile_translations_compiled_total",
        "counter",
        compile.translations_compiled,
    );
    sample(
        "siro_compile_translations_interpreted_total",
        "counter",
        compile.translations_interpreted,
    );
    sample(
        "siro_compile_runtime_fallbacks_total",
        "counter",
        compile.runtime_fallbacks,
    );
    sample(
        "siro_compile_sirx_loaded_total",
        "counter",
        compile.sirx_loaded,
    );
    sample(
        "siro_compile_sirx_corrupt_total",
        "counter",
        compile.sirx_corrupt,
    );
    sample(
        "siro_compile_sirx_writes_total",
        "counter",
        compile.sirx_writes,
    );
    let router = siro_synth::router_stats();
    sample("siro_router_plans_total", "counter", router.plans);
    sample("siro_router_direct_total", "counter", router.direct);
    sample("siro_router_composed_total", "counter", router.composed);
    sample(
        "siro_router_composed_cached_total",
        "counter",
        router.composed_cached,
    );
    sample("siro_router_fallbacks_total", "counter", router.fallbacks);
    sample(
        "siro_router_chains_persisted_total",
        "counter",
        router.chains_persisted,
    );
    sample("siro_router_max_hops", "gauge", router.max_hops);
    out.push_str(&siro_trace::export::render_prometheus_counters(
        &siro_trace::snapshot(),
    ));
    out
}

/// Parses one `key value` line back out of a rendered stats page.
pub fn stats_value(page: &str, key: &str) -> Option<u64> {
    page.lines().find_map(|l| {
        let (k, v) = l.split_once(' ')?;
        (k == key).then(|| v.trim().parse().ok())?
    })
}

/// Reads one sample back out of a rendered Prometheus-style metrics page
/// (`# TYPE` comments are skipped; the first matching sample wins).
pub fn metrics_value(page: &str, name: &str) -> Option<u64> {
    page.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (k, v) = l.split_once(' ')?;
        (k == name).then(|| v.trim().parse().ok())?
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_us(0.50).expect("p50");
        let p99 = h.quantile_us(0.99).expect("p99");
        // 1 ms = 1000 µs lives in [512, 1024); 100 ms in [65536, 131072).
        assert!((1024..=2048).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 131072, "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_saturated_bucket_reports_open_bound() {
        let h = Histogram::default();
        // 2^(BUCKETS-1) µs is the first value that lands in the saturated
        // last bucket; anything in it must report the open bound, not a
        // fabricated 2^BUCKETS µs ceiling.
        h.record(Duration::from_micros(1u64 << (BUCKETS - 1)));
        assert_eq!(h.quantile_us(0.5), Some(u64::MAX));
        assert_eq!(h.quantile_us(1.0), Some(u64::MAX));
        // One bucket below the boundary still reports its finite bound.
        let h = Histogram::default();
        h.record(Duration::from_micros((1u64 << (BUCKETS - 1)) - 1));
        assert_eq!(h.quantile_us(0.5), Some(1u64 << (BUCKETS - 1)));
    }

    fn gauges() -> ServeGauges {
        ServeGauges {
            queue_depth: 3,
            queue_capacity: 64,
            workers: 8,
            pairs_synthesized: 2,
            coalesced_waiters: 5,
            reactor_loops: 11,
            registered_fds: 4,
            write_queue_hwm_bytes: 1024,
            open_connections: 2,
        }
    }

    #[test]
    fn stats_page_is_greppable() {
        let m = Metrics::default();
        m.on_request();
        m.on_ok(Duration::from_micros(300));
        m.on_throttled();
        let page = render_stats(&m, &gauges());
        assert_eq!(stats_value(&page, "requests_total"), Some(1));
        assert_eq!(stats_value(&page, "requests_throttled"), Some(1));
        assert_eq!(stats_value(&page, "queue_depth"), Some(3));
        assert_eq!(stats_value(&page, "queue_capacity"), Some(64));
        assert_eq!(stats_value(&page, "workers"), Some(8));
        assert_eq!(stats_value(&page, "pairs_synthesized"), Some(2));
        assert_eq!(stats_value(&page, "coalesced_waiters"), Some(5));
        assert_eq!(stats_value(&page, "no_such_key"), None);
        // The reactor funnel is always present (zero under the threaded
        // engine).
        assert_eq!(stats_value(&page, "reactor_loops"), Some(11));
        assert_eq!(stats_value(&page, "reactor_registered_fds"), Some(4));
        assert_eq!(
            stats_value(&page, "reactor_write_queue_hwm_bytes"),
            Some(1024)
        );
        assert_eq!(stats_value(&page, "open_connections"), Some(2));
        assert!(stats_value(&page, "accept_errors").is_some());
        // Every cache shard reports its own hit/miss pair.
        for i in 0..siro_synth::CACHE_SHARDS {
            assert!(
                stats_value(&page, &format!("cache_shard{i}_hits")).is_some(),
                "missing shard {i} hits"
            );
            assert!(
                stats_value(&page, &format!("cache_shard{i}_misses")).is_some(),
                "missing shard {i} misses"
            );
        }
        // Operators can tell traced runs apart from the page itself.
        assert!(stats_value(&page, "trace_enabled").is_some());
        // The second-dialect funnel is always present.
        assert_eq!(stats_value(&page, "cross_dialect_translations"), Some(0));
        // The persistent-store funnel is always present, attached or not.
        assert!(stats_value(&page, "store_attached").is_some());
        assert!(stats_value(&page, "store_corrupt").is_some());
        // The version-graph router funnel is always present too.
        assert!(stats_value(&page, "router_plans").is_some());
        assert!(stats_value(&page, "router_composed").is_some());
        assert!(stats_value(&page, "router_fallbacks").is_some());
        // The compiled-tier funnel: which tier served, and the `.sirx`
        // persistence outcomes, are always observable.
        assert!(stats_value(&page, "compile_enabled").is_some());
        assert!(stats_value(&page, "compile_translations_compiled").is_some());
        assert!(stats_value(&page, "compile_translations_interpreted").is_some());
        assert!(stats_value(&page, "compile_runtime_fallbacks").is_some());
        assert!(stats_value(&page, "compile_sirx_corrupt").is_some());
    }

    #[test]
    fn metrics_page_is_prometheus_shaped() {
        let m = Metrics::default();
        m.on_request();
        m.on_ok(Duration::from_micros(300));
        let page = render_metrics(&m, &gauges());
        assert_eq!(metrics_value(&page, "siro_requests_total"), Some(1));
        assert_eq!(metrics_value(&page, "siro_queue_capacity"), Some(64));
        assert_eq!(metrics_value(&page, "siro_reactor_loops_total"), Some(11));
        assert!(metrics_value(&page, "siro_requests_throttled_total").is_some());
        assert!(metrics_value(&page, "siro_accept_errors_total").is_some());
        assert!(metrics_value(&page, "siro_cache_shard0_hits_total").is_some());
        assert!(metrics_value(&page, "siro_trace_enabled").is_some());
        assert!(metrics_value(&page, "siro_compile_enabled").is_some());
        assert!(metrics_value(&page, "siro_compile_translations_compiled_total").is_some());
        assert!(metrics_value(&page, "siro_compile_sirx_corrupt_total").is_some());
        // Every sample line is preceded by a `# TYPE` declaration. Parse
        // fallibly so a format tweak names the offending line instead of
        // panicking inside the iterator chain.
        let mut prev = "";
        for line in page.lines() {
            if !line.starts_with('#') {
                let Some((name, value)) = line.split_once(' ') else {
                    panic!("sample line `{line}` is not `name value` shaped");
                };
                assert!(
                    value.trim().parse::<u64>().is_ok(),
                    "sample `{line}` has a non-numeric value"
                );
                assert!(
                    prev.starts_with(&format!("# TYPE {name} ")),
                    "sample `{line}` lacks a TYPE comment (prev: `{prev}`)"
                );
            }
            prev = line;
        }
    }
}
