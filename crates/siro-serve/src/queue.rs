//! A bounded MPMC work queue with *rejecting* backpressure.
//!
//! The server never blocks a connection thread on a full queue — that
//! would push the backlog into the kernel's socket buffers where it is
//! invisible. Instead [`BoundedQueue::try_push`] fails fast with
//! [`PushError::Full`] and the connection answers `Busy`, keeping the
//! queue depth (and therefore tail latency) bounded by construction.
//!
//! Closing the queue stops new work but lets consumers drain what is
//! already queued — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed for new work; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item to the caller.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work ever" and consumers exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("first");
        q.try_push(2).expect("second");
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).expect("freed slot");
    }

    #[test]
    fn close_drains_queued_items_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push("a").expect("push");
        q.try_push("b").expect("push");
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        // Give the consumer time to park, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("join"), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_item_count() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut producers = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                let mut accepted = 0u64;
                for i in 0..100 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while q.pop().is_some() {
                    seen += 1;
                }
                seen
            })
        };
        let accepted: u64 = producers
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .sum();
        q.close();
        let seen = consumer.join().expect("consumer");
        assert_eq!(accepted, seen);
    }
}
