//! Request execution: the code a worker thread runs for one request.
//!
//! The engine is deliberately free of any socket or queue knowledge so it
//! can be exercised directly by unit tests and reused by the in-process
//! `STATS` path. All IR work — parse, verify, translate, verify again,
//! print — happens here, and every failure maps to a structured
//! [`ErrorCode`] instead of a panic: a malformed served module must never
//! take down a worker.

use std::sync::Arc;
use std::time::Instant;

use siro_core::{ReferenceTranslator, Skeleton};
use siro_ir::{parse, verify, write, DialectVersion};
use siro_synth::{RouteOutcome, Router};
use siro_wir::AnyModule;

use crate::coalesce::PairCoalescer;
use crate::protocol::{ErrorCode, Request, Response, StageNanos, TranslateMode};
use crate::stats::Metrics;

/// Shared, thread-safe request executor.
pub struct Engine {
    coalescer: PairCoalescer,
    router: Router,
    dialect_router: Router,
    metrics: Arc<Metrics>,
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

impl Engine {
    /// Creates an engine publishing into `metrics`.
    pub fn new(metrics: Arc<Metrics>) -> Self {
        Engine {
            coalescer: PairCoalescer::new(),
            router: Router::new(),
            dialect_router: Router::with_wir(),
            metrics,
        }
    }

    /// The coalescer, for stats reporting.
    pub fn coalescer(&self) -> &PairCoalescer {
        &self.coalescer
    }

    /// The version-graph router serving Siro any-pair requests.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The dual-catalog router serving requests with a WIR endpoint.
    /// Separate from [`Engine::router`] on purpose: pure-Siro requests
    /// plan over the Siro-only node set, so adding the second dialect
    /// cannot change how existing traffic routes.
    pub fn dialect_router(&self) -> &Router {
        &self.dialect_router
    }

    /// Executes one already-dequeued request. `Stats` and `Shutdown` are
    /// handled at the connection layer; a worker seeing them answers
    /// `Internal` rather than crashing.
    pub fn execute(&self, request: &Request) -> Response {
        match request {
            Request::Translate {
                source,
                target,
                mode,
                text,
            } => self.translate(*source, *target, *mode, text),
            Request::Ping { delay_ms } => {
                if *delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(u64::from(*delay_ms)));
                }
                Response::Pong
            }
            Request::Stats | Request::Shutdown | Request::Metrics => err(
                ErrorCode::Internal,
                "control request routed to a worker thread",
            ),
        }
    }

    fn translate(
        &self,
        source: DialectVersion,
        target: DialectVersion,
        mode: TranslateMode,
        text: &str,
    ) -> Response {
        match (source.as_siro(), target.as_siro()) {
            (Some(s), Some(t)) => self.translate_siro(s, t, mode, text),
            _ => self.translate_cross(source, target, mode, text),
        }
    }

    /// Any request with a WIR endpoint: WIR→WIR pairs and SIRO↔WIR
    /// cross-dialect pairs, all served as composed chains over the
    /// dual-catalog router (WIR translator hops, bridge hops at the
    /// anchors). Unbridgeable pairs answer `Unsupported` — the router
    /// reports them unreachable rather than planning a bogus chain.
    fn translate_cross(
        &self,
        source: DialectVersion,
        target: DialectVersion,
        mode: TranslateMode,
        text: &str,
    ) -> Response {
        let t_start = Instant::now();
        self.metrics
            .translations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics
            .cross_dialect
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        siro_trace::counter("serve.cross_dialect", 1);
        if mode == TranslateMode::Reference {
            return err(
                ErrorCode::Unsupported,
                "the reference translator only serves Siro-to-Siro pairs",
            );
        }

        let sp = siro_trace::span!("serve.parse");
        let module = match AnyModule::parse(text) {
            Ok(m) => m,
            Err(e) => return err(ErrorCode::Parse, format!("parsing request module: {e}")),
        };
        if module.dialect_version() != source {
            return err(
                ErrorCode::Parse,
                format!(
                    "module text declares version {} but the request says {source}",
                    module.dialect_version()
                ),
            );
        }
        if let Err(e) = module.verify() {
            return err(ErrorCode::Verify, format!("request module: {e}"));
        }
        drop(sp);
        let parse_nanos = t_start.elapsed().as_nanos() as u64;

        let t_synth = Instant::now();
        let sp = siro_trace::span!("serve.acquire_translator", "{source}->{target}");
        let acquired = match self
            .dialect_router
            .acquire_with(source, target, &|s, t, _tests| {
                self.coalescer
                    .translator_for(s, t)
                    .map(|l| (l.outcome, l.fresh))
            }) {
            Ok(a) => a,
            Err(e) => {
                return err(
                    ErrorCode::Unsupported,
                    format!("acquiring {source} -> {target}: {e}"),
                )
            }
        };
        drop(sp);
        let synth_nanos = t_synth.elapsed().as_nanos() as u64;

        let sp = siro_trace::span!("serve.translate", "{source}->{target} synthesized");
        let translated = match &acquired.outcome {
            RouteOutcome::Composed(chain) => chain.translate_any_owned(module),
            // A WIR-endpoint request can never resolve direct (direct
            // routes are Siro pairwise translators).
            RouteOutcome::Direct(_) => {
                return err(
                    ErrorCode::Internal,
                    "cross-dialect request resolved to a direct Siro translator",
                )
            }
        };
        drop(sp);
        let translated = match translated {
            Ok(m) => m,
            Err(e) => {
                return err(
                    ErrorCode::Translate,
                    format!("translating {source} -> {target}: {e}"),
                )
            }
        };
        let translate_nanos = (t_synth.elapsed().as_nanos() as u64).saturating_sub(synth_nanos);
        if translated.dialect_version() != target {
            return err(
                ErrorCode::Internal,
                format!(
                    "chain produced {} instead of {target}",
                    translated.dialect_version()
                ),
            );
        }
        if let Err(e) = translated.verify() {
            return err(ErrorCode::Verify, format!("translated module: {e}"));
        }

        let sp = siro_trace::span!("serve.serialize");
        let text = translated.print();
        drop(sp);
        Response::TranslateOk {
            cache_hit: !acquired.fresh,
            timings: StageNanos {
                parse: parse_nanos,
                synth: synth_nanos,
                translate: translate_nanos,
                total: t_start.elapsed().as_nanos() as u64,
            },
            text,
        }
    }

    fn translate_siro(
        &self,
        source: siro_ir::IrVersion,
        target: siro_ir::IrVersion,
        mode: TranslateMode,
        text: &str,
    ) -> Response {
        let t_start = Instant::now();
        self.metrics
            .translations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        // Parse + verify the incoming module; its `; IR version` header
        // selects the dialect and must agree with the request's source.
        let sp = siro_trace::span!("serve.parse");
        let module = match parse::parse_module(text) {
            Ok(m) => m,
            Err(e) => return err(ErrorCode::Parse, format!("parsing request module: {e}")),
        };
        if module.version != source {
            return err(
                ErrorCode::Parse,
                format!(
                    "module text declares version {} but the request says {}",
                    module.version, source
                ),
            );
        }
        if let Err(e) = verify::verify_module(&module) {
            return err(ErrorCode::Verify, format!("request module: {e}"));
        }
        drop(sp);
        let parse_nanos = t_start.elapsed().as_nanos() as u64;

        // Obtain a translator (possibly synthesizing, coalesced per pair).
        let t_synth = Instant::now();
        let skeleton = Skeleton::new(target);
        let (translated, cache_hit, synth_nanos) = match mode {
            TranslateMode::Reference => {
                let sp = siro_trace::span!("serve.translate", "{source}->{target} reference");
                let r = skeleton.translate_module(&module, &ReferenceTranslator);
                drop(sp);
                (r, false, 0)
            }
            TranslateMode::Synthesized => {
                // Any-pair serving: the router picks the cheapest route
                // (direct or composed); every hop acquisition goes through
                // the coalescer so per-pair serving counters keep working.
                let sp = siro_trace::span!("serve.acquire_translator", "{source}->{target}");
                let acquired = match self.router.acquire_with(source, target, &|s, t, _tests| {
                    self.coalescer
                        .translator_for(s, t)
                        .map(|l| (l.outcome, l.fresh))
                }) {
                    Ok(a) => a,
                    Err(e) => {
                        return err(
                            ErrorCode::Synthesis,
                            format!("synthesizing {source} -> {target}: {e}"),
                        )
                    }
                };
                drop(sp);
                let synth_nanos = t_synth.elapsed().as_nanos() as u64;
                let sp = siro_trace::span!("serve.translate", "{source}->{target} synthesized");
                // The request module is owned by this handler and not
                // needed afterwards: hand it to the tiered owned path, so
                // a compiled translator rewrites it in place (mirror
                // driver) instead of rebuilding it — with transparent
                // fallback to the compiled push driver and then the
                // interpreter.
                let r = match &acquired.outcome {
                    RouteOutcome::Direct(outcome) => {
                        siro_synth::translate_module_owned_tiered(outcome, target, module)
                    }
                    RouteOutcome::Composed(chain) => chain.translate_module_owned(module),
                };
                drop(sp);
                (r, !acquired.fresh, synth_nanos)
            }
        };
        let t_translate = Instant::now();
        let translated = match translated {
            Ok(m) => m,
            Err(e) => {
                return err(
                    ErrorCode::Translate,
                    format!("translating {source} -> {target}: {e}"),
                )
            }
        };
        if let Err(e) = verify::verify_module(&translated) {
            return err(ErrorCode::Verify, format!("translated module: {e}"));
        }
        let translate_nanos = t_translate.duration_since(t_synth).as_nanos() as u64;

        let sp = siro_trace::span!("serve.serialize");
        let text = write::write_module(&translated);
        drop(sp);
        Response::TranslateOk {
            cache_hit,
            timings: StageNanos {
                parse: parse_nanos,
                synth: synth_nanos,
                translate: translate_nanos,
                total: t_start.elapsed().as_nanos() as u64,
            },
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::IrVersion;

    fn engine() -> Engine {
        Engine::new(Arc::new(Metrics::default()))
    }

    fn sample_module(version: IrVersion) -> String {
        let case = &siro_testcases::full_corpus()[0];
        write::write_module(&case.build(version))
    }

    #[test]
    fn reference_translation_matches_in_process() {
        let e = engine();
        let text = sample_module(IrVersion::V13_0);
        let resp = e.execute(&Request::Translate {
            source: IrVersion::V13_0.into(),
            target: IrVersion::V3_6.into(),
            mode: TranslateMode::Reference,
            text: text.clone(),
        });
        let Response::TranslateOk {
            text: served,
            cache_hit,
            timings,
        } = resp
        else {
            panic!("expected TranslateOk, got {resp:?}");
        };
        assert!(!cache_hit);
        assert!(timings.total >= timings.translate);
        let module = parse::parse_module(&text).expect("reparse");
        let expected = Skeleton::new(IrVersion::V3_6)
            .translate_module(&module, &ReferenceTranslator)
            .expect("in-process translation");
        assert_eq!(served, write::write_module(&expected));
    }

    #[test]
    fn malformed_module_is_a_parse_error_not_a_panic() {
        let e = engine();
        let resp = e.execute(&Request::Translate {
            source: IrVersion::V13_0.into(),
            target: IrVersion::V3_6.into(),
            mode: TranslateMode::Reference,
            text: "this is not ir".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::Parse,
                    ..
                }
            ),
            "got {resp:?}"
        );
    }

    #[test]
    fn version_mismatch_is_reported() {
        let e = engine();
        let resp = e.execute(&Request::Translate {
            source: IrVersion::V12_0.into(),
            target: IrVersion::V3_6.into(),
            mode: TranslateMode::Reference,
            text: sample_module(IrVersion::V13_0),
        });
        match resp {
            Response::Error {
                code: ErrorCode::Parse,
                message,
            } => assert!(message.contains("declares version"), "{message}"),
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn composed_route_serves_byte_identical_to_direct() {
        // Warm the two hop edges in the process-global cache so the
        // router's cheapest path for (11.0 -> 3.7) composes through 5.0,
        // then check the served text equals a direct synthesis. The pair
        // triple is unique to this test so no other test perturbs the
        // edge classes.
        let (a, m, b) = (IrVersion::V11_0, IrVersion::V5_0, IrVersion::V3_7);
        for (s, t) in [(a, m), (m, b)] {
            let corpus = siro_synth::oracle_corpus(s, t);
            siro_synth::TranslatorCache::get_or_synthesize(
                siro_synth::SynthesisConfig::new(s, t),
                &corpus,
            )
            .expect("hop synthesis");
        }
        let e = engine();
        let plan = e.router().plan(a, b).expect("plan");
        assert_eq!(
            plan.hop_count(),
            2,
            "hot hops must compose: {}",
            plan.describe()
        );
        let text = sample_module(a);
        let resp = e.execute(&Request::Translate {
            source: a.into(),
            target: b.into(),
            mode: TranslateMode::Synthesized,
            text: text.clone(),
        });
        let Response::TranslateOk { text: served, .. } = resp else {
            panic!("expected TranslateOk, got {resp:?}");
        };
        let module = parse::parse_module(&text).expect("reparse");
        let direct = siro_synth::TranslatorCache::get_or_synthesize(
            siro_synth::SynthesisConfig::new(a, b),
            &siro_synth::oracle_corpus(a, b),
        )
        .expect("direct synthesis");
        let expected = Skeleton::new(b)
            .translate_module(&module, &direct.translator)
            .expect("direct translation");
        assert_eq!(served, write::write_module(&expected));
    }

    #[test]
    fn wir_pair_serves_through_the_dialect_router() {
        let e = engine();
        let m = siro_wir::generate_straightline(11, siro_wir::WirVersion::W1_0);
        let text = siro_wir::write::write_module(&m);
        let resp = e.execute(&Request::Translate {
            source: DialectVersion::wir(1, 0),
            target: DialectVersion::wir(2, 0),
            mode: TranslateMode::Synthesized,
            text,
        });
        let Response::TranslateOk { text: served, .. } = resp else {
            panic!("expected TranslateOk, got {resp:?}");
        };
        let out = siro_wir::parse::parse_module(&served).expect("served text parses");
        assert_eq!(out.version, siro_wir::WirVersion::W2_0);
    }

    #[test]
    fn cross_dialect_pair_serves_through_an_anchor_bridge() {
        let e = engine();
        // 13.0 -> wir2.0 is an anchor pair. Raising a straight-line WIR
        // module gives a Siro module guaranteed to be in the bridge's
        // lowerable subset, so the round trip must serve successfully and
        // preserve behaviour.
        let wir = siro_wir::generate_straightline(23, siro_wir::WirVersion::W2_0);
        let module = siro_synth::raise_module(&wir, IrVersion::V13_0).expect("raise");
        let text = write::write_module(&module);
        let resp = e.execute(&Request::Translate {
            source: IrVersion::V13_0.into(),
            target: DialectVersion::wir(2, 0),
            mode: TranslateMode::Synthesized,
            text,
        });
        let Response::TranslateOk { text: served, .. } = resp else {
            panic!("expected TranslateOk, got {resp:?}");
        };
        let out = siro_wir::parse::parse_module(&served).expect("wir text");
        assert_eq!(out.version, siro_wir::WirVersion::W2_0);
        assert_eq!(
            siro_synth::siro_behaviour(&module),
            siro_synth::wir_behaviour(&out),
            "behaviour bucket must survive the bridge"
        );
    }

    #[test]
    fn unbridged_cross_dialect_pair_answers_unsupported() {
        let e = engine();
        // wir1.0 -> 3.6: the only bridges are at the anchors, and 3.6 is
        // not one, but wir1.0 can hop to an anchored WIR version first —
        // so this *is* reachable. A version off both catalogs is not.
        let m = siro_wir::generate_straightline(3, siro_wir::WirVersion::W1_0);
        let resp = e.execute(&Request::Translate {
            source: DialectVersion::wir(1, 0),
            target: DialectVersion::wir(9, 9),
            mode: TranslateMode::Synthesized,
            text: siro_wir::write::write_module(&m),
        });
        match resp {
            Response::Error {
                code: ErrorCode::Unsupported,
                message,
            } => assert!(message.contains("no route"), "{message}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn control_requests_do_not_reach_workers() {
        let e = engine();
        assert!(matches!(
            e.execute(&Request::Stats),
            Response::Error {
                code: ErrorCode::Internal,
                ..
            }
        ));
    }

    #[test]
    fn ping_pongs() {
        assert_eq!(
            engine().execute(&Request::Ping { delay_ms: 0 }),
            Response::Pong
        );
    }
}
